"""Shared benchmark fixtures: cached networks, indexes and helpers.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  The substrate is a
synthetic road-like network (substitution documented in DESIGN.md);
absolute numbers therefore differ from the paper, but each benchmark
asserts the *shape* the paper reports and prints the measured series
for EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
import os
import time
from pathlib import Path

import numpy as np

from repro import ObjectIndex, SILCIndex, road_like_network
from repro.benchreport import append_build_time
from repro.datasets import random_vertex_objects
from repro.silc import available_workers
from repro.storage import NetworkStorageModel

#: One seed for the whole evaluation, as reproducible as the paper's
#: "50 random input datasets" protocol allows.
BENCH_SEED = 42

#: Size of the main evaluation network.  The paper uses the US eastern
#: seaboard (91,113 vertices); a pure-Python precompute caps us at a
#: few thousand (see DESIGN.md) -- every experiment sweeps parameters
#: so shapes, not absolutes, carry the comparison.
BENCH_N = 3000

#: Worker processes for every benchmark index build.  Defaults to one
#: per available CPU (serial on a single-CPU runner, where pool
#: overhead would only slow things down); override with the
#: ``REPRO_BENCH_WORKERS`` environment variable (0 = all CPUs).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", available_workers()))

RESULTS_DIR = Path(__file__).parent / "results"


@functools.lru_cache(maxsize=8)
def cached_network(n: int, seed: int = BENCH_SEED):
    return road_like_network(n, seed=seed)


#: Sources per shortest-path batch for every benchmark index build.
#: With the shared-memory transport, chunk results no longer pay a
#: per-chunk pickle of their columns, so larger chunks are pure win
#: until worker load-balance suffers.
BENCH_CHUNK_SIZE = 256


@functools.lru_cache(maxsize=4)
def cached_index(n: int, seed: int = BENCH_SEED, workers: int = BENCH_WORKERS):
    t0 = time.perf_counter()
    index = SILCIndex.build(
        cached_network(n, seed), chunk_size=BENCH_CHUNK_SIZE, workers=workers
    )
    record_build_time(
        n, seed, workers, BENCH_CHUNK_SIZE, time.perf_counter() - t0
    )
    return index


def record_build_time(
    n: int, seed: int, workers: int, chunk_size: int, seconds: float,
    shards: int = 1, oracle: str = "silc",
) -> None:
    """Append one build timing to ``results/build_times.txt``.

    The file accumulates across runs (one line per fresh build), so
    the precompute-cost trajectory of the repo can be tracked from PR
    to PR without re-running old revisions.  ``shards`` tags runs of
    the sharded serving benchmarks (1 = unsharded) and ``oracle``
    names the precompute that was timed (``labels`` for the
    pruned-landmark build), so each trends in its own rows of
    ``repro bench-report``.
    """
    append_build_time(
        n, seed, workers, chunk_size, seconds,
        path=RESULTS_DIR / "build_times.txt",
        shards=shards,
        oracle=oracle,
    )


def make_objects(net, index, density, seed=BENCH_SEED):
    objects = random_vertex_objects(net, density=density, seed=seed)
    return ObjectIndex(net, objects, index.embedding)


def fresh_storage(index, net):
    """Cold 5%-LRU simulators for both sides of the I/O model."""
    silc_store = index.make_storage(cache_fraction=0.05)
    net_store = NetworkStorageModel(net, cache_fraction=0.05)
    return silc_store, net_store


class SeriesRecorder:
    """Collects rows of one experiment and writes the results file."""

    def __init__(self, name: str, columns: list[str]) -> None:
        self.name = name
        self.columns = columns
        self.rows: list[list] = []

    def add(self, *values) -> None:
        assert len(values) == len(self.columns)
        self.rows.append(list(values))

    def format(self) -> str:
        widths = [
            max(len(str(c)), max((len(_fmt(r[i])) for r in self.rows), default=0))
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.name} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        return "\n".join(lines)

    def emit(self, capsys) -> None:
        """Print the table past pytest's capture and persist it."""
        text = self.format()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    def column(self, name: str) -> list:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


# ----------------------------------------------------------------------
# Workload runner shared by the algorithm-comparison experiments
# ----------------------------------------------------------------------

from dataclasses import dataclass, field

from repro.query import ier_knn, ine_knn
from repro.query.bestfirst import best_first_knn

SILC_VARIANTS = ("knn", "inn", "knn_i", "knn_m")
ALL_ALGOS = SILC_VARIANTS + ("ine", "ier")


@dataclass
class AlgoMetrics:
    """Per-algorithm aggregates over one workload (means per query)."""

    cpu: float = 0.0
    io: float = 0.0
    refinements: float = 0.0
    max_queue: float = 0.0
    queue_pushes: float = 0.0
    settled: float = 0.0
    kmindist_accepts: float = 0.0
    l_ops: float = 0.0
    l_time: float = 0.0
    d0k: list = field(default_factory=list)
    kmindist_final: list = field(default_factory=list)
    exact_dk: list = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.cpu + self.io


def run_workload(
    index,
    net,
    object_index,
    queries,
    k,
    algos=ALL_ALGOS,
    with_io=True,
):
    """Run every algorithm over the query batch; return mean metrics.

    Each algorithm gets a cold 5% LRU buffer (SILC algorithms over the
    quadtree pages, baselines over the network pages), warmed only by
    its own queries -- the paper's per-run cache protocol.
    """
    out: dict[str, AlgoMetrics] = {}
    nq = len(queries)
    exact_dks = [
        ine_knn(object_index, q, k).stats.dk_final for q in queries
    ]
    for name in algos:
        metrics = AlgoMetrics()
        silc_store = net_store = None
        if with_io:
            if name in SILC_VARIANTS:
                silc_store = index.make_storage(cache_fraction=0.05)
                index.attach_storage(silc_store)
            else:
                net_store = NetworkStorageModel(net, cache_fraction=0.05)
        try:
            for q, exact_dk in zip(queries, exact_dks):
                if name in SILC_VARIANTS:
                    result = best_first_knn(index, object_index, q, k, variant=name)
                elif name == "ine":
                    result = ine_knn(object_index, q, k, storage=net_store)
                else:
                    result = ier_knn(object_index, q, k, storage=net_store)
                s = result.stats
                metrics.cpu += s.elapsed / nq
                metrics.io += s.io_time / nq
                metrics.refinements += s.refinements / nq
                metrics.max_queue += s.max_queue / nq
                metrics.queue_pushes += s.queue_pushes / nq
                metrics.settled += s.settled / nq
                metrics.kmindist_accepts += s.kmindist_accepts / nq
                metrics.l_ops += s.l_ops / nq
                metrics.l_time += s.l_time / nq
                if s.d0k is not None:
                    metrics.d0k.append(s.d0k)
                if s.kmindist_final is not None:
                    metrics.kmindist_final.append(s.kmindist_final)
                if exact_dk is not None:
                    metrics.exact_dk.append(exact_dk)
        finally:
            if silc_store is not None:
                index.detach_storage()
        out[name] = metrics
    return out
