"""Benchmark fixtures (see bench_lib for the shared helpers)."""

import numpy as np
import pytest

from bench_lib import BENCH_N, BENCH_SEED, cached_index, cached_network


@pytest.fixture(scope="session")
def bench_net():
    return cached_network(BENCH_N)


@pytest.fixture(scope="session")
def bench_index(bench_net):
    return cached_index(BENCH_N)


@pytest.fixture(scope="session")
def bench_queries(bench_net):
    rng = np.random.default_rng(BENCH_SEED + 1)
    return [int(v) for v in rng.integers(0, bench_net.num_vertices, 12)]
