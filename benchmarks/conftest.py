"""Benchmark fixtures (see bench_lib for the shared helpers).

Also owns the ``slowbench`` marker: benchmarks that build fresh
multi-thousand-vertex indexes (>5 s of precompute each) are skipped in
the default run so the tier-1 suite stays fast and green.  Run them
explicitly with ``-m slowbench`` (or any ``-m`` expression of your
own, which always takes precedence).
"""

import numpy as np
import pytest

from bench_lib import BENCH_N, BENCH_SEED, cached_index, cached_network


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slowbench: benchmark dominated by >5s index builds; "
        "excluded from the default run (select with -m slowbench)",
    )


def pytest_collection_modifyitems(config, items):
    if config.option.markexpr:
        return  # an explicit -m expression overrides the default skip
    skip = pytest.mark.skip(
        reason="slowbench excluded by default; run with -m slowbench"
    )
    for item in items:
        if "slowbench" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def bench_net():
    return cached_network(BENCH_N)


@pytest.fixture(scope="session")
def bench_index(bench_net):
    return cached_index(BENCH_N)


@pytest.fixture(scope="session")
def bench_queries(bench_net):
    rng = np.random.default_rng(BENCH_SEED + 1)
    return [int(v) for v in rng.integers(0, bench_net.num_vertices, 12)]
