"""Ablation: the LRU buffer size (the paper fixes 5% of pages).

Sweeps the cache fraction and reports the page-fault rate and
simulated I/O time of a fixed kNN workload.  Shows the knee the
paper's 5% choice sits on: tiny caches thrash on quadtree pages,
large ones converge to compulsory misses only.
"""

from bench_lib import SeriesRecorder, make_objects, run_workload
from repro.query.bestfirst import best_first_knn

FRACTIONS = [0.01, 0.02, 0.05, 0.1, 0.25, 1.0]
K = 10
DENSITY = 0.07


def test_cache_fraction_sweep(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "ablation_cache_fraction",
        ["cache_fraction", "accesses", "misses", "hit_rate", "io_ms_per_query"],
    )
    oi = make_objects(bench_net, bench_index, DENSITY)

    def sweep():
        rows = []
        for fraction in FRACTIONS:
            store = bench_index.make_storage(cache_fraction=fraction)
            bench_index.attach_storage(store)
            try:
                for q in bench_queries:
                    best_first_knn(bench_index, oi, q, K, variant="knn")
            finally:
                bench_index.detach_storage()
            s = store.stats
            rows.append(
                (
                    fraction,
                    s.accesses,
                    s.misses,
                    s.hit_rate,
                    s.io_time(store.miss_latency) / len(bench_queries) * 1e3,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        recorder.add(*row)
    recorder.emit(capsys)

    io_by_fraction = {r[0]: r[4] for r in rows}
    # Monotone: more cache never hurts.
    ordered = [io_by_fraction[f] for f in FRACTIONS]
    assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # The paper's 5% already buys a real improvement over 1%.
    assert io_by_fraction[0.05] < io_by_fraction[0.01]
    benchmark.extra_info["io_ms_at_5pct"] = io_by_fraction[0.05]
