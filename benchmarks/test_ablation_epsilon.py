"""Ablation: approximate kNN (the paper's "approximate query
processing on spatial networks" future-work direction, p.42).

Sweeps the epsilon of :func:`repro.query.approximate_knn` and reports
refinements saved against observed distance error.  The point of the
interval machinery is exactly this dial: wide intervals are free,
exactness costs refinements.
"""

import numpy as np

from bench_lib import SeriesRecorder, make_objects
from repro.query import approximate_knn, ine_knn

EPSILONS = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0]
K = 10
DENSITY = 0.05


def test_epsilon_sweep(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "ablation_epsilon",
        ["epsilon", "refinements_per_query", "vs_exact", "max_observed_error"],
    )
    oi = make_objects(bench_net, bench_index, DENSITY)
    queries = bench_queries[:8]

    def sweep():
        # Ground truth: exact distance of *every* object per query, so
        # reported objects outside the true top-k can be scored too.
        truth = {}
        for q in queries:
            exact = ine_knn(oi, q, len(oi.objects))
            by_oid = {n.oid: n.distance for n in exact.neighbors}
            topk = sorted(by_oid.values())[:K]
            truth[q] = (by_oid, topk)
        rows = []
        for eps in EPSILONS:
            refinements = 0
            max_err = 0.0
            for q in queries:
                by_oid, topk = truth[q]
                result = approximate_knn(bench_index, oi, q, K, epsilon=eps)
                refinements += result.stats.refinements
                # Contract: the i-th reported true distance is at most
                # (1 + eps) times the true i-th nearest distance.
                got = sorted(by_oid[n.oid] for n in result.neighbors)
                for got_d, true_d in zip(got, topk):
                    if true_d > 0:
                        max_err = max(max_err, got_d / true_d - 1.0)
            rows.append((eps, refinements / len(queries), max_err))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exact_refinements = rows[0][1]
    for eps, refinements, max_err in rows:
        recorder.add(eps, refinements, refinements / exact_refinements, max_err)
    recorder.emit(capsys)

    by_eps = {r[0]: r for r in rows}
    # Refinements decrease monotonically (weakly) with epsilon...
    refs = [by_eps[e][1] for e in EPSILONS]
    assert all(a >= b - 1e-9 for a, b in zip(refs, refs[1:]))
    # ...with a real saving at epsilon = 1.
    assert by_eps[1.0][1] < 0.9 * exact_refinements
    # And the observed error never exceeds the contract.
    for eps, _, max_err in rows:
        assert max_err <= eps + 1e-6
    benchmark.extra_info["saving_at_eps_1"] = 1 - by_eps[1.0][1] / exact_refinements
