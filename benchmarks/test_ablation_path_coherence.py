"""Ablation: spatial coherence of shortest paths is what SILC compresses.

The paper's contiguity argument (p.12) is explicit about its
precondition: "assuming planar spatial network graphs means that the
coloring results in spatially contiguous colored regions due to path
coherence".  We ablate that precondition directly by adding
*wormholes* -- cheap non-planar shortcut edges between random distant
vertices.  Every wormhole fragments the shortest-path maps of many
sources (destinations near its exit adopt the wormhole's first hop,
creating discontiguous color regions), so Morton-block counts must
climb with wormhole count.  As a control, rescrambling only the
*local* edge weights barely moves storage: with purely local edges the
first-hop partition stays geometric no matter the weights.
"""

import numpy as np

from bench_lib import SeriesRecorder, cached_network
from repro.network import SpatialNetwork
from repro.silc import SILCIndex

N = 800
WORMHOLES = [0, 5, 20, 60]


def with_wormholes(net: SpatialNetwork, count: int, seed: int) -> SpatialNetwork:
    if count == 0:
        return net
    rng = np.random.default_rng(seed)
    extra = []
    for _ in range(count):
        u, v = rng.choice(net.num_vertices, 2, replace=False)
        w = 0.1 * net.euclidean(int(u), int(v)) + 0.01
        extra.append((int(u), int(v), w))
        extra.append((int(v), int(u), w))
    return net.with_edges(extra)


def scrambled_local_weights(net: SpatialNetwork, seed: int) -> SpatialNetwork:
    rng = np.random.default_rng(seed)
    edges = [
        (u, v, net.euclidean(u, v) * rng.uniform(1.0, 8.0))
        for u, v, _ in net.iter_edges()
    ]
    return SpatialNetwork(net.xs, net.ys, edges)


def test_path_coherence_ablation(benchmark, capsys):
    recorder = SeriesRecorder(
        "ablation_path_coherence",
        ["network", "morton_blocks", "blocks_per_vertex", "vs_planar"],
    )
    planar = cached_network(N)

    def sweep():
        rows = {}
        for count in WORMHOLES:
            net = with_wormholes(planar, count, seed=7)
            rows[f"wormholes={count}"] = SILCIndex.build(
                net, chunk_size=256
            ).total_blocks()
        rows["scrambled local weights"] = SILCIndex.build(
            scrambled_local_weights(planar, seed=99), chunk_size=256
        ).total_blocks()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rows["wormholes=0"]
    for label, blocks in rows.items():
        recorder.add(label, blocks, blocks / N, blocks / base)
    recorder.emit(capsys)

    # Storage climbs monotonically with non-planarity...
    series = [rows[f"wormholes={c}"] for c in WORMHOLES]
    assert series == sorted(series)
    assert series[-1] > 2.0 * base, "wormholes failed to fragment the coloring"
    # ...while weight noise alone leaves it in the same regime.
    assert rows["scrambled local weights"] < 1.5 * base
    benchmark.extra_info["wormhole_inflation"] = series[-1] / base
    benchmark.extra_info["scramble_inflation"] = (
        rows["scrambled local weights"] / base
    )
