"""Ablation: the proximal-horizon strategy (paper p.27, LBS).

Sweeps the travel-radius horizon of :class:`ProximalSILCIndex` and
reports storage and coverage against the full index.  The paper's
intuition -- limit the quadtrees to "say, 100 miles around a vertex"
-- pays only once the horizon is a small fraction of the map: the
horizon boundary itself costs blocks, so wide horizons can even exceed
the full index.
"""

import numpy as np

from bench_lib import SeriesRecorder, cached_index, cached_network
from repro.network import distance_matrix
from repro.silc.proximal import ProximalSILCIndex

N = 1000


def test_proximal_radius_sweep(benchmark, capsys):
    recorder = SeriesRecorder(
        "ablation_proximal",
        ["radius_quantile", "radius", "blocks", "vs_full", "pair_coverage"],
    )
    net = cached_network(N)
    full_blocks = cached_index(N).total_blocks()
    D = distance_matrix(net)
    finite = D[np.isfinite(D) & (D > 0)]
    quantiles = [0.02, 0.05, 0.1, 0.3, 0.6]

    def sweep():
        rows = []
        for quantile in quantiles:
            radius = float(np.quantile(finite, quantile))
            prox = ProximalSILCIndex.build(net, radius=radius, chunk_size=256)
            coverage = float(np.mean(finite <= radius))
            rows.append(
                (quantile, radius, prox.total_blocks(), coverage)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for quantile, radius, blocks, coverage in rows:
        recorder.add(quantile, radius, blocks, blocks / full_blocks, coverage)
    recorder.add("full", float("inf"), full_blocks, 1.0, 1.0)
    recorder.emit(capsys)

    blocks_by_q = {r[0]: r[2] for r in rows}
    # Storage grows with the horizon.
    ordered = [blocks_by_q[q] for q in quantiles]
    assert ordered == sorted(ordered)
    # A genuinely local horizon (2% of pair distances) is much smaller
    # than the full index -- the LBS payoff.
    assert blocks_by_q[0.02] < 0.6 * full_blocks
    benchmark.extra_info["local_fraction"] = blocks_by_q[0.02] / full_blocks
