"""Precompute cost: build time vs network size (paper p.27 "Musings").

The paper argues the O(N) single-source computations make the
precompute "mostly a one-time effort" that is embarrassingly parallel
(per-source tasks).  This benchmark measures the build-time curve on
one machine and extrapolates with the paper's arithmetic; it also
sweeps the all-pairs chunk size (our builder's only tuning knob).
"""

import time

import numpy as np
import pytest

from bench_lib import SeriesRecorder, cached_network
from repro.silc import SILCIndex

SIZES = [250, 500, 1000, 2000]
CHUNKS = [16, 64, 256, 1024]


@pytest.mark.slowbench
def test_build_scaling(benchmark, capsys):
    recorder = SeriesRecorder(
        "build_scaling",
        ["sweep", "value", "build_seconds", "us_per_source_pair"],
    )

    def sweep():
        by_size = []
        for n in SIZES:
            net = cached_network(n)
            t0 = time.perf_counter()
            SILCIndex.build(net, chunk_size=256)
            by_size.append((n, time.perf_counter() - t0))
        net = cached_network(1000)
        by_chunk = []
        for chunk in CHUNKS:
            t0 = time.perf_counter()
            SILCIndex.build(net, chunk_size=chunk)
            by_chunk.append((chunk, time.perf_counter() - t0))
        return by_size, by_chunk

    by_size, by_chunk = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for n, seconds in by_size:
        recorder.add("n_vertices", n, seconds, seconds / (n * n) * 1e6)
    for chunk, seconds in by_chunk:
        recorder.add("chunk_size", chunk, seconds, seconds / 1e6 * 1e6)
    recorder.emit(capsys)

    # Build cost grows superlinearly (it is ~N * single-source) but
    # per-pair cost stays flat-ish: the scalability premise.
    times = dict(by_size)
    assert times[2000] > times[250]
    per_pair = [t / (n * n) for n, t in by_size]
    assert max(per_pair) < 10 * min(per_pair), "per-pair cost exploded"

    # The paper's cluster arithmetic, with measured per-source cost.
    n_big = SIZES[-1]
    per_source = times[n_big] / n_big
    us_24m = 24_000_000 * per_source * (24_000_000 / n_big)  # ~quadratic
    benchmark.extra_info["seconds_per_source_at_n2000"] = per_source
    benchmark.extra_info["naive_single_machine_days_24m"] = us_24m / 86_400
