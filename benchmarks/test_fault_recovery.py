"""Chaos benchmark: the sharded tier under deterministic worker kills.

The fault-tolerance acceptance bar, run as a counted benchmark so it
executes on every push:

* **Exactness under faults** -- a 4-shard workload with two injected
  worker kills must return answers *identical* to the unfaulted
  unsharded baseline (the supervisor respawns, backs off, and replays
  the in-flight request; the caller never sees the crash).
* **Self-healing** -- after the workload every shard answers pings
  again, with no operator action.
* **Observability** -- the crashes, respawns and retries appear in the
  unified metrics registry under ``fault_events_total``.
* **Crash-safe storage** -- a truncated index column fails the load
  with :class:`~repro.errors.CorruptIndexError` naming the column,
  before any query can run on garbage.

Latency only gets a generous sanity bound: recovery adds backoff
sleeps by design (availability costs latency, never correctness).
"""

import time

import pytest

from bench_lib import SeriesRecorder, cached_network, make_objects
from repro import QueryEngine, SILCIndex
from repro.errors import CorruptIndexError
from repro.faults import FaultInjector, truncate_file
from repro.obs.registry import MetricsRegistry
from repro.shard import ShardGroup

N = 1200
NUM_SHARDS = 4
K = 5
QUERIES_PER_SHARD = 13  # 4 shards -> 52 queries
KILL_POINTS = (5, 10)  # per-shard request ordinals of the two kills
P95_CEILING_S = 5.0  # generous: includes respawn backoff + replay


@pytest.fixture(scope="module")
def setup():
    net = cached_network(N)
    index = SILCIndex.build(net, chunk_size=128, workers=2)
    object_index = make_objects(net, index, density=0.05)
    engine = QueryEngine(index, object_index)
    return net, index, engine


def ranked(result):
    return [(round(n.distance, 9), n.oid) for n in result.neighbors]


def test_fault_recovery(benchmark, capsys, setup):
    _, _, engine = setup
    injector = FaultInjector()
    group = ShardGroup.from_engine(
        engine, NUM_SHARDS, on_failure="respawn", max_retries=2,
        fault_injector=injector,
    )
    try:
        shards = group.router.shards
        assert len(shards) == NUM_SHARDS
        # Round-robin queries drawn from each shard's own vertices, so
        # every shard is visited a predictable number of times and the
        # scripted kill ordinals are guaranteed to fire.
        queries = []
        for i in range(QUERIES_PER_SHARD):
            for shard in shards:
                queries.append(int(group.shard_map.vertices(shard)[i]))
        victims = (shards[0], shards[1])
        injector.kill_worker_at(victims[0], KILL_POINTS[0])
        injector.kill_worker_at(victims[1], KILL_POINTS[1])

        baseline = [ranked(engine.knn(q, K, exact=True)) for q in queries]

        def chaos_workload():
            answers, latencies = [], []
            for q in queries:
                t0 = time.perf_counter()
                answers.append(ranked(group.knn(q, K)))
                latencies.append(time.perf_counter() - t0)
            return answers, latencies

        answers, latencies = benchmark.pedantic(
            chaos_workload, rounds=1, iterations=1
        )

        # Exactness under faults: every answer identical to the
        # unfaulted baseline, including the two killed-mid-request ones.
        assert answers == baseline
        assert injector.fired("worker_kill") == 2

        # Self-healing, no operator action.
        health = group.health_check()
        assert all(health.values()), f"unhealed shards: {health}"

        stats = group.supervisor.stats
        assert stats.worker_crashes == 2
        assert stats.respawns >= 2
        assert stats.retries >= 2
        assert stats.failovers == 0  # respawn+replay handled everything

        # The whole recovery story lands in the unified registry.
        registry = MetricsRegistry()
        registry.absorb_supervisor(stats)
        for event, floor in (
            ("worker_crash", 2), ("respawn", 2), ("retry", 2)
        ):
            value = registry.counter_value(
                "fault_events_total", stage="shard", event=event
            )
            assert value >= floor, f"{event}: {value} < {floor}"

        ordered = sorted(latencies)
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        assert p95 < P95_CEILING_S

        recorder = SeriesRecorder(
            "fault_recovery",
            ["queries", "kills", "respawns", "retries", "p50_ms", "p95_ms"],
        )
        recorder.add(
            len(queries), stats.worker_crashes, stats.respawns, stats.retries,
            ordered[len(ordered) // 2] * 1e3, p95 * 1e3,
        )
        recorder.emit(capsys)
        benchmark.extra_info["respawns"] = stats.respawns
        benchmark.extra_info["p95_ms"] = p95 * 1e3
    finally:
        group.close()


def test_truncated_index_fails_load_before_any_query(tmp_path, setup):
    net, index, _ = setup
    path = tmp_path / "index.silc"
    index.save(path)
    truncate_file(path / "codes.npy")
    with pytest.raises(CorruptIndexError, match="codes"):
        SILCIndex.load(path, net, mmap=True)
