"""M1 (paper pp.3/7): Dijkstra visits too many vertices.

The paper's motivating measurement: Dijkstra settles 3191 of 4233
vertices (75%) to find one 76-edge path.  We reproduce the experiment
on the benchmark network: for a batch of long point-to-point queries,
compare vertices settled by Dijkstra and A* against the block probes
SILC needs (exactly path length - 1).
"""

import numpy as np

from bench_lib import SeriesRecorder
from repro.network import astar_path, shortest_path


def test_dijkstra_motivation(benchmark, capsys, bench_net, bench_index):
    rng = np.random.default_rng(11)
    n = bench_net.num_vertices
    # long queries: opposite corners of the layout
    xs, ys = bench_net.xs, bench_net.ys
    corner_sw = int(np.argmin(xs + ys))
    corner_ne = int(np.argmax(xs + ys))
    pairs = [(corner_sw, corner_ne)] + [
        tuple(map(int, rng.integers(0, n, 2))) for _ in range(9)
    ]

    recorder = SeriesRecorder(
        "fig_dijkstra_motivation",
        ["pair", "path_edges", "dijkstra_settled", "astar_settled", "silc_probes"],
    )

    def run():
        out = []
        for u, v in pairs:
            path, _, dij = shortest_path(bench_net, u, v)
            _, _, ast = astar_path(bench_net, u, v)
            out.append((u, v, len(path) - 1, dij.settled, ast.settled))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    ratios = []
    for u, v, edges, dij, ast in rows:
        recorder.add(f"{u}->{v}", edges, dij, ast, edges)
        if edges > 0:
            ratios.append(dij / edges)
    recorder.emit(capsys)

    # The flagship pair: Dijkstra touches a large fraction of the
    # network while SILC touches one block per path edge.
    _, _, edges, dij, _ = rows[0]
    assert dij > 0.5 * n, "long query should settle most of the network"
    assert dij > 10 * edges, "Dijkstra work must dwarf SILC's path probes"
    benchmark.extra_info["flagship_settled_fraction"] = dij / n
    benchmark.extra_info["mean_settled_per_path_edge"] = float(np.mean(ratios))
