"""F6 (paper p.37): quality of the D0k and KMINDIST estimates.

Measured against the true k-th neighbor distance Dk:

* D0k (upper-bound estimate from the first k objects) sits slightly
  above Dk -- ~120% in the paper;
* KMINDIST (sound lower bound) sits slightly below -- ~90%.

Their tightness explains, respectively, why Dk-pruning adds little
over D0k and why most kNN-M neighbors can be accepted unrefined.
"""

import numpy as np

from bench_lib import SeriesRecorder, make_objects, run_workload

DENSITIES = [0.2, 0.1, 0.05, 0.01]
KS = [10, 25, 50, 100]


def _ratios(metrics):
    d0k = [
        100.0 * est / true
        for est, true in zip(metrics.d0k, metrics.exact_dk)
        if true and true > 0
    ]
    kmin = [
        100.0 * est / true
        for est, true in zip(metrics.kmindist_final, metrics.exact_dk)
        if true and true > 0
    ]
    return float(np.mean(d0k)), float(np.mean(kmin))


def test_estimate_quality(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_estimate_quality",
        ["sweep", "value", "d0k_pct_of_dk", "kmindist_pct_of_dk"],
    )

    def run():
        by_density = {}
        for density in DENSITIES:
            oi = make_objects(bench_net, bench_index, density)
            by_density[density] = run_workload(
                bench_index, bench_net, oi, bench_queries, 10,
                algos=("knn_m",), with_io=False,
            )["knn_m"]
        oi = make_objects(bench_net, bench_index, 0.07)
        by_k = {
            k: run_workload(
                bench_index, bench_net, oi, bench_queries, k,
                algos=("knn_m",), with_io=False,
            )["knn_m"]
            for k in KS
        }
        return by_density, by_k

    by_density, by_k = benchmark.pedantic(run, rounds=1, iterations=1)

    d0k_all, kmin_all = [], []
    for sweep, table in (("density", by_density), ("k", by_k)):
        for value, m in table.items():
            d0k_pct, kmin_pct = _ratios(m)
            recorder.add(sweep, value, d0k_pct, kmin_pct)
            d0k_all.append(d0k_pct)
            kmin_all.append(kmin_pct)
    recorder.emit(capsys)

    # D0k never undershoots Dk (it is an upper-bound estimator) and
    # stays within a modest factor; KMINDIST never overshoots.
    assert all(p >= 99.0 for p in d0k_all), f"D0k below Dk: {d0k_all}"
    assert all(p <= 101.0 for p in kmin_all), f"KMINDIST above Dk: {kmin_all}"
    assert np.mean(d0k_all) < 200.0, "D0k uselessly loose"
    assert np.mean(kmin_all) > 50.0, "KMINDIST uselessly loose"
    benchmark.extra_info["mean_d0k_pct"] = float(np.mean(d0k_all))
    benchmark.extra_info["mean_kmindist_pct"] = float(np.mean(kmin_all))
