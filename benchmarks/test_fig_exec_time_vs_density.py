"""F2a (paper p.33 left): execution time vs object density, k=10.

The paper's claims for this figure:

* kNN and variants are about an order of magnitude faster than INE
  and IER at small-to-moderate object densities;
* INE and IER close the gap as S densifies (neighbors are nearby);
* IER is always slowest.

Time here is CPU + simulated I/O under the shared 5%-LRU disk model
(the paper measures wall time on a disk-resident system).
"""

import pytest

from bench_lib import ALL_ALGOS, BENCH_N, SeriesRecorder, make_objects, run_workload

DENSITIES = [0.2, 0.05, 0.01, 0.004]
K = 10


def test_exec_time_vs_density(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_exec_time_vs_density",
        ["density", "algo", "cpu_ms", "io_ms", "total_ms"],
    )

    def run():
        results = {}
        for density in DENSITIES:
            oi = make_objects(bench_net, bench_index, density)
            results[density] = run_workload(
                bench_index, bench_net, oi, bench_queries, K
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for density in DENSITIES:
        for name in ALL_ALGOS:
            m = results[density][name]
            recorder.add(density, name, m.cpu * 1e3, m.io * 1e3, m.total * 1e3)
    recorder.emit(capsys)

    # --- shape assertions -------------------------------------------------
    for density in DENSITIES:
        r = results[density]
        # IER is always slowest (p.33: "IER always slowest").
        others = [r[n].total for n in ALL_ALGOS if n != "ier"]
        assert r["ier"].total >= max(others), f"IER not slowest at p={density}"

    # SILC wins big at sparse S; the gap narrows as S densifies.
    sparse, dense = DENSITIES[-1], DENSITIES[0]
    gap_sparse = results[sparse]["ine"].total / results[sparse]["knn"].total
    gap_dense = results[dense]["ine"].total / results[dense]["knn"].total
    assert gap_sparse > 2.0, f"kNN should dominate INE at p={sparse} ({gap_sparse:.2f}x)"
    assert gap_sparse > gap_dense, "INE must close the gap as S densifies"

    benchmark.extra_info["ine_over_knn_sparse"] = gap_sparse
    benchmark.extra_info["ine_over_knn_dense"] = gap_dense
