"""F2b (paper p.33 right): execution time vs k at S = 0.07N.

Paper claims reproduced here:

* the kNN family is far faster than INE/IER at small k;
* as k grows, base kNN degrades (priority-queue L maintenance) while
  the INN / kNN-I variants hold up;
* IER is always slowest.

The paper sweeps k to 300 on 91k vertices (|S| = 6.4k); our 3k-vertex
substrate caps |S| = 210, so the sweep stops at 100 (documented in
EXPERIMENTS.md).
"""

from bench_lib import ALL_ALGOS, SeriesRecorder, make_objects, run_workload

KS = [5, 10, 25, 50, 100]
DENSITY = 0.07


def test_exec_time_vs_k(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_exec_time_vs_k",
        ["k", "algo", "cpu_ms", "io_ms", "total_ms"],
    )
    oi = make_objects(bench_net, bench_index, DENSITY)
    queries = bench_queries[:8]

    def run():
        return {
            k: run_workload(bench_index, bench_net, oi, queries, k) for k in KS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for k in KS:
        for name in ALL_ALGOS:
            m = results[k][name]
            recorder.add(k, name, m.cpu * 1e3, m.io * 1e3, m.total * 1e3)
    recorder.emit(capsys)

    # --- shape assertions -------------------------------------------------
    small_k, big_k = KS[0], KS[-1]
    r = results[small_k]
    assert r["knn"].total < r["ine"].total, "kNN must beat INE at small k"
    assert r["ier"].total >= max(
        r[n].total for n in ALL_ALGOS if n != "ier"
    ), "IER must be slowest at small k"

    # L-maintenance overhead: base kNN pays more CPU than kNN-I at
    # large k (the reason the paper recommends kNN-I/INN for k > 20).
    assert (
        results[big_k]["knn"].l_time > results[big_k]["knn_i"].l_time
    ), "base kNN must pay more L overhead than kNN-I at large k"
    assert (
        results[big_k]["knn"].cpu > results[big_k]["knn_i"].cpu
    ), "base kNN CPU must exceed kNN-I CPU at large k"

    # kNN-M is the cheapest variant at every k (fig p.38's bottom curve).
    for k in KS:
        totals = {n: results[k][n].total for n in ("knn", "inn", "knn_i", "knn_m")}
        assert totals["knn_m"] <= min(totals.values()) * 1.05

    benchmark.extra_info["ine_over_knn_small_k"] = (
        r["ine"].total / r["knn"].total
    )
    benchmark.extra_info["ine_over_knn_big_k"] = (
        results[big_k]["ine"].total / results[big_k]["knn"].total
    )
