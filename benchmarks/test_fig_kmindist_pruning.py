"""F5 (paper p.36): share of neighbors pruned against KMINDIST (kNN-M).

An object whose distance upper bound falls below KMINDIST is added to
the result without any ordering refinement -- the paper measures what
fraction of the k reported neighbors took that fast path (up to
80-90% on their setup), growing with k and with density.
"""

from bench_lib import SeriesRecorder, make_objects, run_workload

DENSITIES = [0.2, 0.1, 0.05, 0.01]
KS = [10, 25, 50, 100, 150]


def test_kmindist_pruning(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_kmindist_pruning",
        ["sweep", "value", "accepts_per_query", "pct_of_k"],
    )

    def run():
        by_density = {}
        for density in DENSITIES:
            oi = make_objects(bench_net, bench_index, density)
            by_density[density] = run_workload(
                bench_index, bench_net, oi, bench_queries, 10,
                algos=("knn_m",), with_io=False,
            )["knn_m"]
        oi = make_objects(bench_net, bench_index, 0.07)
        by_k = {
            k: run_workload(
                bench_index, bench_net, oi, bench_queries, k,
                algos=("knn_m",), with_io=False,
            )["knn_m"]
            for k in KS
        }
        return by_density, by_k

    by_density, by_k = benchmark.pedantic(run, rounds=1, iterations=1)

    for density, m in by_density.items():
        recorder.add("density", density, m.kmindist_accepts,
                     100.0 * m.kmindist_accepts / 10)
    pct_by_k = {}
    for k, m in by_k.items():
        pct = 100.0 * m.kmindist_accepts / k
        pct_by_k[k] = pct
        recorder.add("k", k, m.kmindist_accepts, pct)
    recorder.emit(capsys)

    # The fast path must fire meaningfully and grow with k.
    assert pct_by_k[KS[-1]] > 20.0, "KMINDIST accepts too rare at large k"
    assert pct_by_k[KS[-1]] > pct_by_k[KS[0]], "accept share must grow with k"
    benchmark.extra_info["pct_at_largest_k"] = pct_by_k[KS[-1]]
