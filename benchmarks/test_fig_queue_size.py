"""F3 (paper p.34): maximum priority-queue size relative to INN.

INN cannot prune insertions with Dk, so its queue is the 100%
baseline.  The paper reports the pruned variants at ~35% of INN on
average, with the savings shrinking as k grows (overlapping intervals
blunt Dk).  We reproduce both series: queue ratio vs density (k=10)
and vs k (S=0.07N).
"""

import numpy as np

from bench_lib import SeriesRecorder, SILC_VARIANTS, make_objects, run_workload

DENSITIES = [0.2, 0.1, 0.05, 0.01]
KS = [5, 10, 25, 50, 100]
PRUNED = ("knn", "knn_i", "knn_m")


def test_queue_size_ratios(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_queue_size",
        ["sweep", "value", "algo", "max_queue", "pct_of_inn"],
    )

    def run():
        by_density = {}
        for density in DENSITIES:
            oi = make_objects(bench_net, bench_index, density)
            by_density[density] = run_workload(
                bench_index, bench_net, oi, bench_queries, 10,
                algos=SILC_VARIANTS, with_io=False,
            )
        oi = make_objects(bench_net, bench_index, 0.07)
        by_k = {
            k: run_workload(
                bench_index, bench_net, oi, bench_queries, k,
                algos=SILC_VARIANTS, with_io=False,
            )
            for k in KS
        }
        return by_density, by_k

    by_density, by_k = benchmark.pedantic(run, rounds=1, iterations=1)

    ratios_small_k = []
    for density, r in by_density.items():
        for name in PRUNED:
            pct = 100.0 * r[name].max_queue / r["inn"].max_queue
            recorder.add("density", density, name, r[name].max_queue, pct)
            ratios_small_k.append(pct)
    ratios_by_k = {}
    for k, r in by_k.items():
        for name in PRUNED:
            pct = 100.0 * r[name].max_queue / r["inn"].max_queue
            recorder.add("k", k, name, r[name].max_queue, pct)
            ratios_by_k.setdefault(k, []).append(pct)
    recorder.emit(capsys)

    # Pruned variants never need a larger queue than INN.
    assert max(ratios_small_k) <= 101.0
    # Real savings exist at k=10 across densities.
    assert np.mean(ratios_small_k) < 95.0
    # Savings shrink as k grows (paper: "savings vanish").
    assert np.mean(ratios_by_k[KS[-1]]) > np.mean(ratios_by_k[KS[0]]) - 5.0
    benchmark.extra_info["mean_pct_of_inn_k10"] = float(np.mean(ratios_small_k))
