"""F4 (paper p.35): refinement operations relative to INN.

The paper's reading: the kNN family never refines more than INN, and
kNN-M's KMINDIST fast path eliminates a large share -- "at least 30%
of refinements in kNN are devoted to developing a total ordering".
"""

import numpy as np

from bench_lib import SeriesRecorder, SILC_VARIANTS, make_objects, run_workload

DENSITIES = [0.2, 0.1, 0.05, 0.01]
KS = [5, 10, 25, 50, 100]


def test_refinement_ratios(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_refinements",
        ["sweep", "value", "algo", "refinements", "pct_of_inn"],
    )

    def run():
        by_density = {}
        for density in DENSITIES:
            oi = make_objects(bench_net, bench_index, density)
            by_density[density] = run_workload(
                bench_index, bench_net, oi, bench_queries, 10,
                algos=SILC_VARIANTS, with_io=False,
            )
        oi = make_objects(bench_net, bench_index, 0.07)
        by_k = {
            k: run_workload(
                bench_index, bench_net, oi, bench_queries, k,
                algos=SILC_VARIANTS, with_io=False,
            )
            for k in KS
        }
        return by_density, by_k

    by_density, by_k = benchmark.pedantic(run, rounds=1, iterations=1)

    knn_m_pcts = []
    for sweep, table in (("density", by_density), ("k", by_k)):
        for value, r in table.items():
            base = max(r["inn"].refinements, 1e-9)
            for name in ("knn", "knn_i", "knn_m"):
                pct = 100.0 * r[name].refinements / base
                recorder.add(sweep, value, name, r[name].refinements, pct)
                if name == "knn_m":
                    knn_m_pcts.append(pct)
                # No variant should refine more than INN.
                assert pct <= 102.0, f"{name} refines more than INN at {sweep}={value}"
    recorder.emit(capsys)

    # kNN-M removes a substantial share of refinements somewhere in the
    # sweep (the paper's headline for this figure).
    assert min(knn_m_pcts) < 85.0, f"kNN-M min {min(knn_m_pcts):.1f}% of INN"
    benchmark.extra_info["knn_m_min_pct"] = float(min(knn_m_pcts))
    benchmark.extra_info["knn_m_mean_pct"] = float(np.mean(knn_m_pcts))
