"""F1 (paper p.16): Morton blocks vs vertices -- the O(N^1.5) slope.

The paper plots total Morton blocks against network size on log-log
axes and reads off a slope of ~1.5, validating the per-vertex
O(sqrt(N)) quadtree size.  We rebuild SILC indexes for a sweep of
network sizes and fit the same regression.
"""

import numpy as np
import pytest

from bench_lib import BENCH_SEED, SeriesRecorder, cached_index, cached_network

SIZES = [500, 1000, 2000, 4000]


@pytest.mark.slowbench
def test_storage_slope(benchmark, capsys):
    recorder = SeriesRecorder(
        "fig_storage_slope",
        ["n_vertices", "morton_blocks", "blocks_per_vertex", "bytes_16B_records"],
    )

    def sweep():
        counts = []
        for n in SIZES:
            index = cached_index(n)
            counts.append(index.total_blocks())
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, blocks in zip(SIZES, counts):
        recorder.add(n, blocks, blocks / n, blocks * 16)

    slope = np.polyfit(np.log(SIZES), np.log(counts), 1)[0]
    recorder.add("slope", float(slope), "", "")
    recorder.emit(capsys)
    benchmark.extra_info["loglog_slope"] = float(slope)

    # Paper: slope = 1.5.  Accept the road-like generator's jitter band.
    assert 1.25 <= slope <= 1.85, f"storage slope {slope:.3f} far from 1.5"
    # Sub-quadratic, super-linear: the headline storage claim.
    for n, blocks in zip(SIZES, counts):
        assert n < blocks < n * n
