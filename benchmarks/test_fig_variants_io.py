"""F7 (paper p.38): total vs I/O time for the kNN variants + kNN-PQ.

The paper's findings reproduced here:

* I/O time dominates total execution time for the SILC family (each
  refinement may fault a quadtree page);
* the cost of maintaining L and Dk (the "kNN-PQ" series) is
  substantial for base kNN and grows with k;
* execution time falls as S densifies (neighbors closer, fewer
  refinements).
"""

import numpy as np

from bench_lib import SeriesRecorder, SILC_VARIANTS, make_objects, run_workload

KS = [5, 10, 25, 50, 100]
DENSITIES = [0.2, 0.05, 0.01]


def test_variants_io(benchmark, capsys, bench_net, bench_index, bench_queries):
    recorder = SeriesRecorder(
        "fig_variants_io",
        ["sweep", "value", "algo", "cpu_ms", "io_ms", "total_ms", "knn_pq_ms"],
    )

    def run():
        oi = make_objects(bench_net, bench_index, 0.07)
        by_k = {
            k: run_workload(
                bench_index, bench_net, oi, bench_queries, k,
                algos=SILC_VARIANTS,
            )
            for k in KS
        }
        by_density = {}
        for density in DENSITIES:
            oi = make_objects(bench_net, bench_index, density)
            by_density[density] = run_workload(
                bench_index, bench_net, oi, bench_queries, 10,
                algos=SILC_VARIANTS,
            )
        return by_k, by_density

    by_k, by_density = benchmark.pedantic(run, rounds=1, iterations=1)

    for sweep, table in (("k", by_k), ("density", by_density)):
        for value, r in table.items():
            for name in SILC_VARIANTS:
                m = r[name]
                recorder.add(
                    sweep, value, name,
                    m.cpu * 1e3, m.io * 1e3, m.total * 1e3, m.l_time * 1e3,
                )
    recorder.emit(capsys)

    # I/O dominates the total for the base algorithm at moderate k.
    m = by_k[10]["knn"]
    assert m.io > m.cpu, "I/O time should dominate CPU (paper p.38)"

    # kNN-PQ overhead grows with k and is specific to base kNN.
    assert by_k[KS[-1]]["knn"].l_time > by_k[KS[0]]["knn"].l_time
    assert by_k[KS[-1]]["knn"].l_time > by_k[KS[-1]]["inn"].l_time

    # Denser S means closer neighbors and cheaper queries.
    assert by_density[0.2]["knn"].total < by_density[0.01]["knn"].total

    benchmark.extra_info["knn_pq_ms_at_k100"] = by_k[KS[-1]]["knn"].l_time * 1e3
