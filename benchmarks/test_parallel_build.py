"""Parallel precompute: build-time speedup and bit-identity.

The paper's p.27 "Musings" argue the SILC precompute is embarrassingly
parallel across sources; ``repro.silc.parallel`` implements that claim
with a process pool.  This benchmark builds the same 1000-vertex
road-like network serially and with ``workers=4`` and checks:

* the two indexes are **byte-identical** (same embedding, same vertex
  codes, same block-table columns, bit for bit) -- parallelism must
  never change the answer;
* on hardware with enough CPUs, the wall-clock speedup is real
  (>= 2x with 4 workers on >= 4 CPUs).  On smaller runners the
  speedup is recorded but not asserted: a 1-CPU container cannot
  physically exceed 1x, and asserting otherwise would only make the
  suite flaky in the other direction.
"""

import time

import numpy as np
import pytest

from bench_lib import SeriesRecorder, cached_network
from repro.silc import SILCIndex, available_workers

N = 1000
WORKERS = 4
TABLE_COLUMNS = ("codes", "levels", "colors", "lam_min", "lam_max")


def _identical(a: SILCIndex, b: SILCIndex) -> bool:
    if a.embedding.order != b.embedding.order or a.embedding.bounds != b.embedding.bounds:
        return False
    if not np.array_equal(a.vertex_codes, b.vertex_codes):
        return False
    for ta, tb in zip(a.tables, b.tables):
        for col in TABLE_COLUMNS:
            ca, cb = getattr(ta, col), getattr(tb, col)
            if ca.dtype != cb.dtype or not np.array_equal(ca, cb):
                return False
    return True


@pytest.mark.slowbench
def test_parallel_build_speedup(benchmark, capsys):
    recorder = SeriesRecorder(
        "parallel_build",
        ["mode", "workers", "build_seconds", "speedup", "cpus"],
    )
    net = cached_network(N)
    cpus = available_workers()

    def build_both():
        t0 = time.perf_counter()
        serial = SILCIndex.build(net, chunk_size=64)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = SILCIndex.build(net, chunk_size=64, workers=WORKERS)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    speedup = t_serial / t_parallel
    recorder.add("serial", 1, t_serial, 1.0, cpus)
    recorder.add("parallel", WORKERS, t_parallel, speedup, cpus)
    recorder.emit(capsys)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpus"] = cpus

    # Bit-identity is the non-negotiable invariant, on any hardware.
    assert _identical(serial, parallel), (
        "parallel build produced a different index than the serial build"
    )

    # Wall-clock speedup only where the hardware can deliver it.
    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {WORKERS} workers on {cpus} "
            f"CPUs, measured {speedup:.2f}x"
        )
    elif cpus >= 2:
        assert speedup >= 1.2, (
            f"expected some speedup with {cpus} CPUs, measured {speedup:.2f}x"
        )
