"""Parallel precompute: build-time speedup and bit-identity.

The paper's p.27 "Musings" argue the SILC precompute is embarrassingly
parallel across sources; ``repro.silc.parallel`` implements that claim
with a process pool.  This benchmark builds the same 1000-vertex
road-like network serially and with ``workers=4`` and checks:

* the two indexes are **byte-identical** (same embedding, same vertex
  codes, same block-table columns, bit for bit) -- parallelism must
  never change the answer;
* on hardware with enough CPUs, the wall-clock speedup is real
  (>= 2x with 4 workers on >= 4 CPUs).  On smaller runners the
  speedup is recorded but not asserted: a 1-CPU container cannot
  physically exceed 1x, and asserting otherwise would only make the
  suite flaky in the other direction.
"""

import time

import numpy as np
import pytest

from bench_lib import (
    BENCH_CHUNK_SIZE,
    BENCH_N,
    BENCH_SEED,
    SeriesRecorder,
    cached_network,
    record_build_time,
)
from repro.silc import SILCIndex, available_workers, shared_memory_available
from repro.silc import parallel as parallel_mod

N = 1000
WORKERS = 4
CHUNK_SIZE = 64
TABLE_COLUMNS = ("codes", "levels", "colors", "lam_min", "lam_max")


def _identical(a: SILCIndex, b: SILCIndex) -> bool:
    if a.embedding.order != b.embedding.order or a.embedding.bounds != b.embedding.bounds:
        return False
    if not np.array_equal(a.vertex_codes, b.vertex_codes):
        return False
    for ta, tb in zip(a.tables, b.tables):
        for col in TABLE_COLUMNS:
            ca, cb = getattr(ta, col), getattr(tb, col)
            if ca.dtype != cb.dtype or not np.array_equal(ca, cb):
                return False
    return True


@pytest.mark.slowbench
def test_parallel_build_speedup(benchmark, capsys):
    recorder = SeriesRecorder(
        "parallel_build",
        ["mode", "workers", "build_seconds", "speedup", "cpus"],
    )
    net = cached_network(N)
    cpus = available_workers()

    def build_both():
        t0 = time.perf_counter()
        serial = SILCIndex.build(net, chunk_size=CHUNK_SIZE)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = SILCIndex.build(net, chunk_size=CHUNK_SIZE, workers=WORKERS)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    speedup = t_serial / t_parallel
    recorder.add("serial", 1, t_serial, 1.0, cpus)
    recorder.add("parallel", WORKERS, t_parallel, speedup, cpus)
    recorder.emit(capsys)
    # Feed both timings into the bench-report trajectory so the
    # history finally accumulates workers>1 rows alongside the serial
    # builds of cached_index.
    record_build_time(N, BENCH_SEED, 1, CHUNK_SIZE, t_serial)
    record_build_time(N, BENCH_SEED, WORKERS, CHUNK_SIZE, t_parallel)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpus"] = cpus

    # Bit-identity is the non-negotiable invariant, on any hardware.
    assert _identical(serial, parallel), (
        "parallel build produced a different index than the serial build"
    )

    # Wall-clock speedup only where the hardware can deliver it.
    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {WORKERS} workers on {cpus} "
            f"CPUs, measured {speedup:.2f}x"
        )
    elif cpus >= 2:
        assert speedup >= 1.2, (
            f"expected some speedup with {cpus} CPUs, measured {speedup:.2f}x"
        )


@pytest.mark.slowbench
@pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this system"
)
def test_shm_transport_n3000(capsys):
    """Shared-memory transport at evaluation scale (n = 3000).

    Byte-identity with the serial build plus the counted-bytes claim:
    the per-chunk payload shipped through the pool's result pickle
    stays at name-and-sizes scale (~hundreds of bytes per chunk) while
    the actual block columns -- hundreds of KB -- travel exclusively
    through shared memory.
    """
    net = cached_network(BENCH_N)
    serial = SILCIndex.build(net, chunk_size=BENCH_CHUNK_SIZE)
    parallel = SILCIndex.build(
        net, chunk_size=BENCH_CHUNK_SIZE, workers=2, transport="shm"
    )
    stats = parallel_mod.last_build_stats
    assert stats is not None and stats.transport == "shm"

    recorder = SeriesRecorder(
        "parallel_build_transport",
        ["n", "workers", "chunks", "pickle_bytes", "shared_bytes"],
    )
    recorder.add(
        BENCH_N, 2, stats.chunks, stats.result_pickle_bytes, stats.shared_bytes
    )
    recorder.emit(capsys)

    assert _identical(serial, parallel), (
        "shm-transport build produced a different index than serial"
    )
    assert stats.result_pickle_bytes < 2048 * stats.chunks, (
        f"per-chunk pickle payload too large: {stats.result_pickle_bytes} B "
        f"over {stats.chunks} chunks"
    )
    assert stats.shared_bytes > 100 * stats.result_pickle_bytes, (
        "column data must travel through shared memory, not pickle"
    )
