"""Parallel query execution: AsyncEngine scaling past one worker.

PR 3's serving layer ran every query under one global lock because the
shared :class:`StorageSimulator` was not safe to interleave -- so
``AsyncEngine(max_workers=2)`` bought event-loop liveness but zero
execution overlap.  The flat-store stack replaces that lock with
per-thread storage shards (``ShardedStorageSimulator``), and this
benchmark measures what that unlocks, in the paper's I/O-bound regime
(p.38: "I/O time dominates... each refinement may lead to a disk
access"):

* the simulator charges each page fault a *real* (GIL-releasing)
  latency, so queries spend most of their time where the paper says a
  disk-resident index spends it;
* a mixed kNN workload is gathered through ``AsyncEngine`` with one
  and with two workers over the same index and object set;
* assertions: identical neighbor sets, identical *counted* storage
  accesses (parallelism must never change the work, only overlap it),
  and wall-clock speedup > 1.3x with two workers.

The speedup bound is deliberately below the ~1.8-1.9x this measures
in practice: fault latencies overlap even on one CPU (the sleeps
release the GIL), so the assertion is robust to slow runners.
"""

import asyncio
import time

import pytest

from bench_lib import SeriesRecorder, cached_network, make_objects
from repro import QueryEngine, SILCIndex
from repro.serve import AsyncEngine
from repro.storage import ShardedStorageSimulator

N = 800
K_VALUES = (1, 5, 10)
VARIANTS = ("knn", "knn_m")
NUM_QUERIES = 32
SLEEP_PER_MISS = 8e-4  # real (GIL-releasing) seconds per page fault
SPEEDUP_FLOOR = 1.3


@pytest.fixture(scope="module")
def setup():
    net = cached_network(N)
    index = SILCIndex.build(net, chunk_size=128, workers=2)
    object_index = make_objects(net, index, density=0.05)
    step = max(1, net.num_vertices // NUM_QUERIES)
    workload = [
        (v, K_VALUES[i % len(K_VALUES)], VARIANTS[i % len(VARIANTS)])
        for i, v in enumerate(range(0, net.num_vertices, step))
    ]
    return net, index, object_index, workload


def run_workload(index, object_index, workload, workers):
    """Gather the whole workload through AsyncEngine; return metrics."""
    storage = ShardedStorageSimulator.for_table_sizes(
        index.store.sizes.tolist(),
        cache_fraction=0.05,
        sleep_per_miss=SLEEP_PER_MISS,
    )
    engine = QueryEngine(index, object_index, storage=storage)

    async def go():
        async with AsyncEngine(engine, max_workers=workers) as async_engine:
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(async_engine.knn(q, k, variant=v) for q, k, v in workload)
            )
            return time.perf_counter() - t0, results

    wall, results = asyncio.run(go())
    return wall, results, storage


def test_parallel_query_speedup(setup, capsys):
    net, index, object_index, workload = setup
    recorder = SeriesRecorder(
        "parallel_query",
        ["workers", "wall_seconds", "speedup", "accesses", "misses", "shards"],
    )

    t1, res1, store1 = run_workload(index, object_index, workload, workers=1)
    t2, res2, store2 = run_workload(index, object_index, workload, workers=2)
    speedup = t1 / t2

    recorder.add(1, t1, 1.0, store1.stats.accesses, store1.stats.misses,
                 store1.num_shards)
    recorder.add(2, t2, speedup, store2.stats.accesses, store2.stats.misses,
                 store2.num_shards)
    recorder.emit(capsys)

    # Counted operations: parallelism redistributes the work across
    # shards but must not change it.
    ids1 = [sorted(r.ids()) for r in res1]
    ids2 = [sorted(r.ids()) for r in res2]
    assert ids1 == ids2, "parallel workers changed query answers"
    assert store1.stats.accesses == store2.stats.accesses, (
        "parallel workers changed the number of storage accesses"
    )
    assert store2.num_shards == 2, (
        f"expected 2 storage shards, saw {store2.num_shards}"
    )

    # Wall clock: fault latencies of different workers must overlap.
    assert speedup > SPEEDUP_FLOOR, (
        f"expected > {SPEEDUP_FLOOR}x speedup with 2 workers, "
        f"measured {speedup:.2f}x"
    )


def test_per_query_io_accounting_is_thread_local(setup):
    """Concurrent queries must not pollute each other's io stats.

    Every per-query miss count, summed, must equal the storage
    totals -- which can only hold if each query's delta was taken
    against its own thread's counters.
    """
    net, index, object_index, workload = setup
    _, results, storage = run_workload(index, object_index, workload, workers=2)
    assert sum(r.stats.io_accesses for r in results) == storage.stats.accesses
    assert sum(r.stats.io_misses for r in results) == storage.stats.misses
