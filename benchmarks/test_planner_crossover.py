"""Backend crossover: SILC browsing vs 2-hop labelling vs INE.

Not a figure from the paper -- this experiment maps the regime
boundary the :class:`~repro.oracle.QueryPlanner` has to navigate.
Each backend's work is measured in its own counted unit (SILC:
refinements; labels: label-entry scans; INE: settled vertices) and
converted to comparable seconds through the planner's *own*
calibrated per-op constants, alongside raw wall clock.  The
assertions pin the planner contract:

* the planner's per-query choice matches the measured
  cheapest backend (in calibrated counted-op cost) on >= 80% of the
  swept (density, k, query) workload -- where "matches" tolerates
  near-ties (picked cost within ``TIE_FACTOR`` of the winner's):
  the labels/INE boundary sits at tiny absolute costs whose measured
  winner flips with calibration noise, and picking the 1.2x-costlier
  side of a tie is not a planning mistake;
* on the small-k repeated-pair workload -- the labelling family's
  home turf (Akiba et al., SIGMOD 2013) -- labels beat SILC browsing
  on counted-op cost.

Results persist to ``results/planner_crossover.txt``.
"""

from __future__ import annotations

import time

from bench_lib import (
    BENCH_N,
    BENCH_SEED,
    SeriesRecorder,
    make_objects,
    record_build_time,
)
import pytest

from repro.engine import QueryEngine
from repro.oracle import PLANNABLE, PrunedLabellingOracle, counted_ops

KS = [1, 5, 20]
DENSITIES = [0.02, 0.07]
AGREEMENT_FLOOR = 0.8
TIE_FACTOR = 2.0


@pytest.fixture(scope="module")
def bench_labelling(bench_net):
    t0 = time.perf_counter()
    labelling = PrunedLabellingOracle.build(bench_net)
    record_build_time(
        BENCH_N, BENCH_SEED, 1, 0, time.perf_counter() - t0, oracle="labels"
    )
    return labelling


def _measure(engine, queries, k):
    """Per-backend (ops, seconds) per query, exact answers everywhere."""
    per_backend = {}
    for backend in PLANNABLE:
        rows = []
        for q in queries:
            result = engine.knn(q, k, exact=True, oracle=backend)
            rows.append(
                (
                    counted_ops(backend, result.stats),
                    result.stats.elapsed + result.stats.io_time,
                )
            )
        per_backend[backend] = rows
    return per_backend


def test_planner_crossover(capsys, bench_net, bench_index, bench_queries,
                           bench_labelling):
    recorder = SeriesRecorder(
        "planner_crossover",
        ["density", "k", "backend", "mean_ops", "op_us",
         "cost_ms", "wall_ms", "measured_wins", "planner_pick"],
    )
    queries = bench_queries[:8]
    agree = 0
    total = 0
    engines = {}
    for density in DENSITIES:
        oi = make_objects(bench_net, bench_index, density)
        engine = QueryEngine(
            bench_index, oi, labelling=bench_labelling, oracle="auto"
        )
        engines[density] = engine
        planner = engine.ensure_planner()
        op_seconds = planner.constants.op_seconds
        for k in KS:
            measured = _measure(engine, queries, k)
            # calibrated counted-op cost per query per backend
            costs = {
                b: [ops * op_seconds[b] for ops, _ in rows]
                for b, rows in measured.items()
            }
            wins = {b: 0 for b in PLANNABLE}
            for i, q in enumerate(queries):
                winner = min(PLANNABLE, key=lambda b: costs[b][i])
                wins[winner] += 1
                choice = planner.choose(q, k)
                total += 1
                if costs[choice][i] <= TIE_FACTOR * costs[winner][i]:
                    agree += 1
            pick = max(
                planner.stats.decisions, key=planner.stats.decisions.get
            )
            nq = len(queries)
            for b in PLANNABLE:
                mean_ops = sum(ops for ops, _ in measured[b]) / nq
                recorder.add(
                    density, k, b,
                    mean_ops,
                    op_seconds[b] * 1e6,
                    sum(costs[b]) / nq * 1e3,
                    sum(sec for _, sec in measured[b]) / nq * 1e3,
                    wins[b],
                    pick if b == "silc" else "",
                )
    # Repeated-pair small-k workload: the same few query points asked
    # for their single nearest object over and over -- the labelling
    # family's home turf (point lookups, no browsing).  Run it on the
    # denser object set, where IER's Euclidean cutoff bites early and
    # each repetition costs a handful of label merges; labels must
    # beat SILC browsing on calibrated counted-op cost *and* on wall
    # clock.
    repeat_density = DENSITIES[-1]
    engine = engines[repeat_density]
    op_seconds = engine.ensure_planner().constants.op_seconds
    repeated = [q for q in bench_queries[:3] for _ in range(4)]
    rep = _measure(engine, repeated, k=1)
    rep_cost = {
        b: sum(ops for ops, _ in rows) * op_seconds[b] / len(repeated)
        for b, rows in rep.items()
    }
    rep_wall = {
        b: sum(sec for _, sec in rows) / len(repeated)
        for b, rows in rep.items()
    }
    recorder.add(repeat_density, "1(rep)", "labels",
                 sum(ops for ops, _ in rep["labels"]) / len(repeated),
                 op_seconds["labels"] * 1e6, rep_cost["labels"] * 1e3,
                 rep_wall["labels"] * 1e3, "", "")
    recorder.add(repeat_density, "1(rep)", "silc",
                 sum(ops for ops, _ in rep["silc"]) / len(repeated),
                 op_seconds["silc"] * 1e6, rep_cost["silc"] * 1e3,
                 rep_wall["silc"] * 1e3, "", "")

    agreement = agree / total
    recorder.emit(capsys)
    assert rep_cost["labels"] < rep_cost["silc"], (
        f"labels must win the repeated-pair k=1 workload on counted-op "
        f"cost: labels {rep_cost['labels']:.2e}s vs "
        f"silc {rep_cost['silc']:.2e}s per query"
    )
    assert rep_wall["labels"] < rep_wall["silc"], (
        f"labels must win the repeated-pair k=1 workload on wall clock: "
        f"labels {rep_wall['labels']:.2e}s vs "
        f"silc {rep_wall['silc']:.2e}s per query"
    )
    with capsys.disabled():
        print(f"planner/measured agreement: {agree}/{total} "
              f"({agreement:.0%}, floor {AGREEMENT_FLOOR:.0%})")
    assert agreement >= AGREEMENT_FLOOR, (
        f"planner agreed with the measured winner on only "
        f"{agree}/{total} queries"
    )
