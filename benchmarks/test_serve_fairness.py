"""Serving-layer load generator: fairness and admission under bulk load.

The scenario the ISSUE (and the ROADMAP's millions-of-users story)
cares about: one client streams thousands of batched kNN queries
while another keeps issuing interactive single-kNN requests.  Without
per-client lanes the interactive client queues behind the whole bulk
backlog (head-of-line blocking); with the
:class:`~repro.serve.FairScheduler` its requests overtake at chunk
granularity.

Fairness is asserted on *counted operations* -- the scheduler's
dispatch serial, i.e. how many engine queries ran between a request's
submit and its first dispatch -- never on wall-clock (the PR-2
flakiness lesson).  Wall-clock latencies are reported in the results
table for context only.
"""

import asyncio

from bench_lib import BENCH_SEED, SeriesRecorder, make_objects

from repro import QueryEngine, road_like_network, SILCIndex
from repro.serve import (
    AdmissionController,
    AsyncEngine,
    FairScheduler,
    Request,
    SILCServer,
)

#: Substrate: small enough that ~10k cheap queries run in seconds.
SERVE_N = 400
CHUNK = 32
BULK_BATCHES = 20
BULK_BATCH_SIZE = 256  # 20 x 256 = 5120 >= the 5k the ISSUE asks for
INTERACTIVE_PROBES = 40
K = 3


def _make_engine():
    net = road_like_network(SERVE_N, seed=BENCH_SEED)
    index = SILCIndex.build(net)
    object_index = make_objects(net, index, density=0.1)
    return QueryEngine(index, object_index)


def _interactive_requests(num_vertices):
    return [
        Request(id=f"web-{i}", client="web", kind="knn",
                queries=((i * 37) % num_vertices,), k=K, exact=False)
        for i in range(INTERACTIVE_PROBES)
    ]


def _bulk_requests(num_vertices):
    return [
        Request(
            id=f"bulk-{b}",
            client="bulk",
            kind="knn_batch",
            queries=tuple((b * 13 + i) % num_vertices for i in range(BULK_BATCH_SIZE)),
            k=K,
            exact=False,
        )
        for b in range(BULK_BATCHES)
    ]


async def _solo_run(engine):
    """Interactive client alone: the baseline scheduling delays."""
    async with AsyncEngine(engine) as ae:
        server = SILCServer(ae, scheduler=FairScheduler(chunk_size=CHUNK))
        async with server:
            delays, latencies = [], []
            for request in _interactive_requests(engine.index.network.num_vertices):
                response = await server.submit(request)
                assert response.status == "ok"
                delays.append(response.sched_delay)
                latencies.append(response.latency)
        return delays, latencies, server.snapshot()


async def _contended_run(engine):
    """Interactive probes racing a >=5k-query bulk backlog."""
    n = engine.index.network.num_vertices
    async with AsyncEngine(engine) as ae:
        # Uncapped admission: this scenario isolates the scheduler, so
        # the whole 5k backlog must be allowed to queue.
        server = SILCServer(
            ae,
            scheduler=FairScheduler(chunk_size=CHUNK),
            admission=AdmissionController(max_in_flight=None),
        )
        async with server:
            bulk_tasks = [
                asyncio.create_task(server.submit(r)) for r in _bulk_requests(n)
            ]
            await asyncio.sleep(0)  # let the backlog enqueue
            delays, latencies, fifo_delays, correctness = [], [], [], []
            for request in _interactive_requests(n):
                # what a single FIFO queue would cost this request:
                # every bulk query still pending ahead of it
                fifo_delays.append(server.scheduler.pending())
                response = await server.submit(request)
                assert response.status == "ok"
                delays.append(response.sched_delay)
                latencies.append(response.latency)
                correctness.append((request.queries[0], response.result["ids"]))
            bulk_responses = await asyncio.gather(*bulk_tasks)
        assert all(r.status == "ok" for r in bulk_responses)
        return delays, latencies, fifo_delays, correctness, server.snapshot()


async def _admission_run(engine):
    """Flood past the in-flight cap: load is shed, not queued."""
    n = engine.index.network.num_vertices
    cap = 256
    async with AsyncEngine(engine) as ae:
        server = SILCServer(
            ae,
            scheduler=FairScheduler(chunk_size=CHUNK),
            admission=AdmissionController(max_in_flight=cap),
        )
        async with server:
            flood = [
                Request(id=f"flood-{i}", client=f"c{i % 4}", kind="knn_batch",
                        queries=tuple(range(i, i + 64)), k=K, exact=False)
                for i in range(20)  # 1280 queries >> cap
            ]
            responses = list(await asyncio.gather(*(server.submit(r) for r in flood)))
            assert server.admission.in_flight <= cap
            # a well-behaved client retries after the advertised backoff
            # (sequentially here, so each retry fits under the cap)
            retried = 0
            for request, response in zip(flood, responses):
                if response.status == "rejected":
                    assert response.retry_after > 0
                    retry = await server.submit(request)
                    assert retry.status == "ok"
                    retried += 1
        return responses, retried, cap, server.snapshot()


def percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1))))]


def test_serve_fairness_and_admission(benchmark, capsys):
    engine = _make_engine()

    def run():
        solo_delays, solo_lat, solo_snap = asyncio.run(_solo_run(engine))
        delays, lat, fifo_delays, correctness, cont_snap = asyncio.run(
            _contended_run(engine)
        )
        shed_responses, retried, cap, shed_snap = asyncio.run(_admission_run(engine))
        return (
            solo_delays, solo_lat, solo_snap, delays, lat, fifo_delays,
            correctness, cont_snap, shed_responses, retried, cap, shed_snap,
        )

    (
        solo_delays, solo_lat, solo_snap, delays, lat, fifo_delays,
        correctness, cont_snap, shed_responses, retried, cap, shed_snap,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    solo_p95 = percentile(solo_delays, 95)
    contended_p95 = percentile(delays, 95)
    fifo_p95 = percentile(fifo_delays, 95)
    shed = sum(1 for r in shed_responses if r.status == "rejected")

    recorder = SeriesRecorder(
        "table_serve_fairness",
        ["scenario", "client", "requests", "delay_p50", "delay_p95",
         "latency_p95_ms"],
    )
    recorder.add("solo", "web", len(solo_delays),
                 percentile(solo_delays, 50), solo_p95,
                 percentile(solo_lat, 95) * 1e3)
    recorder.add("vs_bulk_fair", "web", len(delays),
                 percentile(delays, 50), contended_p95,
                 percentile(lat, 95) * 1e3)
    recorder.add("vs_bulk_fifo(model)", "web", len(fifo_delays),
                 percentile(fifo_delays, 50), fifo_p95, float("nan"))
    recorder.add("admission_flood", "all", len(shed_responses),
                 0, 0, shed_snap.p95 * 1e3)
    recorder.emit(capsys)

    # --- fairness: counted-operation invariants ---------------------------
    # The bulk client streamed >= 5k engine queries through the contended run.
    assert BULK_BATCHES * BULK_BATCH_SIZE >= 5000
    assert cont_snap.stats.refinements > 0
    # An interactive request waits at most a couple of scheduler chunks,
    # no matter how deep the bulk backlog is: p95 within an additive
    # 2-chunk constant of the solo baseline.
    assert contended_p95 <= solo_p95 + 2 * CHUNK
    # ...whereas a single FIFO queue would have cost the full backlog
    # (orders of magnitude worse than what the fair scheduler delivered).
    assert fifo_p95 >= 1000
    assert fifo_p95 > 10 * max(contended_p95, 1)
    # Interactive answers are exact despite the contention.
    for query, got in correctness[:5]:
        assert got == engine.knn(query, K).ids()

    # --- admission control: shed, don't queue -----------------------------
    assert shed > 0, "the flood must exceed the in-flight cap"
    assert shed == retried  # every shed request succeeded on retry
    assert shed_snap.shed == shed
    assert shed_snap.in_flight == 0
    for r in shed_responses:
        if r.status == "rejected":
            assert r.reason == "in_flight_cap"

    benchmark.extra_info["interactive_p95_solo"] = solo_p95
    benchmark.extra_info["interactive_p95_contended"] = contended_p95
    benchmark.extra_info["fifo_model_p95"] = fifo_p95
    benchmark.extra_info["shed"] = shed
