"""Sharded serving tier: pruning effectiveness and process speedup.

The spatially-sharded tier must earn its complexity three ways, in the
paper's disk-resident regime (p.38: "I/O time dominates... each
refinement may lead to a disk access"):

* **Exactness** -- scatter-gathered answers identical to the
  unsharded exact engine over a mixed workload (counted, not timed).
* **Pruning** -- on a spatially clustered workload, the partition
  router must skip at least half the shard workers per query using
  only its distance bounds (a counted rate, deterministic).
* **Speedup** -- with four worker processes, a concurrent query mix
  must finish faster than the sequential unsharded engine under the
  same simulated fault latency.  Each worker owns a private storage
  simulator whose per-miss sleep releases the GIL, so worker processes
  overlap their I/O stalls even on a single CPU; the floor (1.15x) is
  deliberately far below what multi-core runners measure.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from bench_lib import (
    BENCH_SEED,
    SeriesRecorder,
    cached_network,
    make_objects,
    record_build_time,
)
from repro import QueryEngine, SILCIndex
from repro.shard import ShardGroup
from repro.storage import ShardedStorageSimulator

N = 1200
NUM_SHARDS = 4
K = 5
NUM_QUERIES = 32
SLEEP_PER_MISS = 2e-3  # real (GIL-releasing) seconds per page fault
CACHE_FRACTION = 0.05
PRUNE_FLOOR = 0.5
SPEEDUP_FLOOR = 1.15


@pytest.fixture(scope="module")
def setup():
    net = cached_network(N)
    index = SILCIndex.build(net, chunk_size=128, workers=2)
    object_index = make_objects(net, index, density=0.05)
    engine = QueryEngine(index, object_index)

    t0 = time.perf_counter()
    group = ShardGroup.from_engine(
        engine,
        NUM_SHARDS,
        worker_storage={
            "cache_fraction": CACHE_FRACTION,
            "sleep_per_miss": SLEEP_PER_MISS,
        },
    )
    record_build_time(
        N, BENCH_SEED, 2, 128, time.perf_counter() - t0, shards=NUM_SHARDS
    )
    yield net, index, object_index, engine, group
    group.close()


def mixed_workload(net):
    """Queries spread uniformly over the network (hits every shard),
    shuffled so consecutive queries land on different shard workers --
    sequential vertex ids are spatially correlated, and an unshuffled
    stream would serialize on one worker's pipe at a time."""
    step = max(1, net.num_vertices // NUM_QUERIES)
    queries = list(range(0, net.num_vertices, step))[:NUM_QUERIES]
    import random

    random.Random(BENCH_SEED).shuffle(queries)
    return queries


def clustered_workload(group):
    """Queries drawn from one shard's vertices (the commuter pattern:
    most traffic concentrated in one region)."""
    home = max(group.workers, key=lambda s: group.shard_map.vertices(s).size)
    vertices = group.shard_map.vertices(home)
    step = max(1, vertices.size // NUM_QUERIES)
    return [int(v) for v in vertices[::step][:NUM_QUERIES]]


def snapshot(stats):
    return (stats.shards_considered, stats.shards_pruned, stats.shards_visited)


def test_sharded_results_identical(setup):
    """Counted: the sharded tier must be indistinguishable from the
    unsharded exact engine, query by query."""
    net, _, _, engine, group = setup
    for q in mixed_workload(net):
        expected = [
            (round(n.distance, 9), n.oid)
            for n in engine.knn(q, K, exact=True).neighbors
        ]
        got = [
            (round(n.distance, 9), n.oid)
            for n in group.knn(q, K).neighbors
        ]
        assert got == expected, f"sharded answer diverged at query {q}"


def test_prune_rate_on_clustered_workload(setup, capsys):
    """Counted: distance bounds must prune >= half the shards when the
    workload clusters in one region."""
    _, _, _, _, group = setup
    queries = clustered_workload(group)
    before = snapshot(group.stats)
    for q in queries:
        group.knn(q, K)
    considered, pruned, visited = (
        after - b for after, b in zip(snapshot(group.stats), before)
    )
    assert considered == len(queries) * len(group.workers)
    assert visited + pruned == considered
    rate = pruned / considered

    recorder = SeriesRecorder(
        "sharded_prune", ["queries", "shards", "considered", "pruned", "rate"]
    )
    recorder.add(len(queries), NUM_SHARDS, considered, pruned, rate)
    recorder.emit(capsys)

    assert rate >= PRUNE_FLOOR, (
        f"expected >= {PRUNE_FLOOR:.0%} of shards pruned on the clustered "
        f"workload, measured {rate:.0%}"
    )


def test_sharded_process_speedup(setup, capsys):
    """Timed: four shard processes under simulated fault latency must
    beat the sequential unsharded engine under the same latency."""
    net, index, object_index, _, group = setup
    queries = mixed_workload(net)

    # Untimed warmup: fault in the workers' mmap pages (the real
    # cold-start cost OPERATIONS.md describes) so the timed comparison
    # measures steady-state serving, not first-touch page-ins.  The
    # 5% LRU storage sims thrash on this working set either way, so
    # the simulated fault latency is not warmed away.
    for q in queries[:: max(1, len(queries) // 8)]:
        group.knn(q, K)

    # Baseline: one process, one thread, a cold sleeping storage sim.
    storage = ShardedStorageSimulator.for_table_sizes(
        index.store.sizes.tolist(),
        cache_fraction=CACHE_FRACTION,
        sleep_per_miss=SLEEP_PER_MISS,
    )
    baseline = QueryEngine(index, object_index, storage=storage)
    t0 = time.perf_counter()
    expected = [baseline.knn(q, K, exact=True) for q in queries]
    t_seq = time.perf_counter() - t0

    # Sharded: the same queries in flight across NUM_SHARDS dispatch
    # threads; each worker process sleeps through its own faults, and
    # those sleeps overlap across processes.
    with ThreadPoolExecutor(max_workers=NUM_SHARDS) as pool:
        t0 = time.perf_counter()
        results = list(pool.map(lambda q: group.knn(q, K), queries))
        t_par = time.perf_counter() - t0
    speedup = t_seq / t_par

    recorder = SeriesRecorder(
        "sharded_query",
        ["mode", "shards", "wall_seconds", "speedup"],
    )
    recorder.add("sequential", 1, t_seq, 1.0)
    recorder.add("sharded", NUM_SHARDS, t_par, speedup)
    recorder.emit(capsys)

    for q, ref, got in zip(queries, expected, results):
        assert [n.oid for n in got.neighbors] == [
            n.oid for n in ref.neighbors
        ], f"speedup run changed the answer at query {q}"
    assert speedup > SPEEDUP_FLOOR, (
        f"expected > {SPEEDUP_FLOOR}x speedup with {NUM_SHARDS} shard "
        f"processes, measured {speedup:.2f}x"
    )
