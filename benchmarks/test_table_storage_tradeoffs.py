"""T1 (paper p.11): the space / query-time trade-off table.

Measures, on one moderate network, every storage scheme the paper
tabulates (plus the PCP oracle of the "beyond SILC" section):

==================  =========  ==============  ================
scheme              space      path retrieval  distance query
==================  =========  ==============  ================
explicit paths      O(N^3)     O(1)            O(1)
next-hop matrix     O(N^2)     O(k)            O(1)
Dijkstra            O(M + N)   O(M + N log N)  O(M + N log N)
SILC                O(N^1.5)   O(k log N)      approx/refined
PCP distance oracle O(eps^-2 N)  --            eps-approx O(log N)
==================  =========  ==============  ================
"""

import time

import numpy as np

from bench_lib import SeriesRecorder, cached_network
from repro.baselines import ExplicitPathStorage, NextHopMatrix
from repro.network import shortest_path
from repro.silc import SILCIndex
from repro.silc.pcp import PCPOracle

N = 400
QUERY_PAIRS = 40

#: Timing repetitions.  Wall-clock orderings are asserted on the
#: best-of-R pass: a single pass is at the mercy of whatever else the
#: machine is doing (the full benchmark suite, for one), while the
#: minimum over several passes approaches the true cost of the code
#: path and is stable under load.
TIMING_REPEATS = 5


def test_storage_tradeoffs(benchmark, capsys):
    recorder = SeriesRecorder(
        "table_storage_tradeoffs",
        ["scheme", "storage_bytes", "path_us", "distance_us", "notes"],
    )
    net = cached_network(N)
    rng = np.random.default_rng(7)
    pairs = [tuple(map(int, rng.integers(0, N, 2))) for _ in range(QUERY_PAIRS)]

    def build_all():
        return (
            SILCIndex.build(net),
            NextHopMatrix.build(net),
            ExplicitPathStorage.build(net),
            PCPOracle.build(net, epsilon=0.25),
        )

    silc, nexthop, explicit, pcp = benchmark.pedantic(
        build_all, rounds=1, iterations=1
    )

    def timed(fn):
        best = float("inf")
        for _ in range(TIMING_REPEATS):
            t0 = time.perf_counter()
            for u, v in pairs:
                fn(u, v)
            best = min(best, time.perf_counter() - t0)
        return best / QUERY_PAIRS * 1e6

    rows = {
        "explicit": (
            explicit.storage_bytes(),
            timed(explicit.path),
            timed(explicit.distance),
            "O(N^3) space",
        ),
        "next_hop": (
            nexthop.storage_bytes(),
            timed(nexthop.path),
            timed(nexthop.distance),
            "O(N^2) space",
        ),
        "dijkstra": (
            0,
            timed(lambda u, v: shortest_path(net, u, v)),
            timed(lambda u, v: shortest_path(net, u, v)),
            "no precompute",
        ),
        "silc": (
            silc.storage_bytes(16),
            timed(silc.path),
            timed(silc.distance),
            "O(N^1.5) space",
        ),
        "pcp_oracle": (
            pcp.storage_bytes(32),
            float("nan"),
            timed(pcp.distance),
            f"eps={pcp.epsilon} approx",
        ),
    }
    for scheme, (bytes_, path_us, dist_us, notes) in rows.items():
        recorder.add(scheme, bytes_, path_us, dist_us, notes)
    recorder.emit(capsys)

    # --- deterministic invariants (independent of machine load) -----------
    # Storage byte orderings: the table's space column.
    assert rows["explicit"][0] > rows["next_hop"][0] > rows["silc"][0]
    # Counted operations: SILC retrieves a path in size-of-path block
    # probes, while Dijkstra must settle every vertex closer than the
    # target -- the asymptotic gap the timing columns only estimate.
    silc_probes = sum(len(silc.path(u, v)) - 1 for u, v in pairs)
    dijkstra_settled = sum(
        shortest_path(net, u, v)[2].settled for u, v in pairs
    )
    assert silc_probes < dijkstra_settled, (
        f"SILC path probes ({silc_probes}) must undercut Dijkstra "
        f"settled vertices ({dijkstra_settled})"
    )

    # --- the paper's orderings (best-of-R wall clock) ---------------------
    # Path retrieval from any precomputed scheme crushes Dijkstra.
    assert rows["silc"][1] < rows["dijkstra"][1]
    assert rows["next_hop"][1] < rows["dijkstra"][1]
    # The PCP oracle's approximate distance beats running Dijkstra.
    assert rows["pcp_oracle"][2] < rows["dijkstra"][2]
    benchmark.extra_info["silc_bytes"] = rows["silc"][0]
    benchmark.extra_info["next_hop_bytes"] = rows["next_hop"][0]
    benchmark.extra_info["pcp_distance_us"] = rows["pcp_oracle"][2]
    benchmark.extra_info["silc_distance_us"] = rows["silc"][2]
