"""Beyond kNN: the other spatial-network queries SILC supports.

The paper's closing claim is that SILC is "a general framework for
query processing in spatial networks -- not restricted to nearest
neighbor queries" (p.40).  This example runs the whole extended query
surface over one city and one index:

* incremental distance browsing (the title operation),
* network-distance range queries,
* epsilon-approximate kNN (refinements vs accuracy dial),
* aggregate nearest neighbors (best meeting point for a group),
* distance joins (closest pairs across two object sets),
* localized index maintenance after a road closure.

Run:  python examples/city_queries.py
"""

import itertools

from repro import (
    ObjectIndex,
    SILCIndex,
    aggregate_nn,
    approximate_knn,
    browse,
    distance_join,
    range_query,
    road_like_network,
    update_index,
)
from repro.datasets import random_vertex_objects


def main() -> None:
    city = road_like_network(900, seed=19)
    index = SILCIndex.build(city)
    cafes = random_vertex_objects(city, count=35, seed=4)
    cafe_index = ObjectIndex(city, cafes, index.embedding)
    home = 17

    # --- incremental browsing: take neighbors until satisfied --------
    print("browsing cafes outward from home until one is 'open':")
    open_ids = {oid for oid in cafes.ids if oid % 3 == 0}  # fake opening hours
    for n in browse(index, cafe_index, home):
        status = "open" if n.oid in open_ids else "closed"
        print(f"  cafe {n.oid:2d}  distance in [{n.interval.lo:6.2f}, "
              f"{n.interval.hi:6.2f}]  {status}")
        if n.oid in open_ids:
            break

    # --- range query: everything within a 12-unit ride ---------------
    nearby = range_query(index, cafe_index, home, radius=12.0)
    print(f"\ncafes within 12 units of home: {sorted(nearby.ids())} "
          f"({nearby.stats.refinements} refinements)")

    # --- the accuracy dial --------------------------------------------
    exact = approximate_knn(index, cafe_index, home, 8, epsilon=0.0)
    rough = approximate_knn(index, cafe_index, home, 8, epsilon=0.5)
    print(
        f"\nexact top-8 cost {exact.stats.refinements} refinements; "
        f"50%-approximate top-8 cost {rough.stats.refinements} "
        f"(same neighborhood, certified within 1.5x)"
    )

    # --- meeting point for three friends ------------------------------
    friends = [home, 433, 788]
    meet = aggregate_nn(index, cafe_index, friends, k=3, agg="sum")
    print("\nbest meeting cafes for friends at "
          f"{friends} (total travel):")
    for n in meet.neighbors:
        print(f"  cafe {n.oid:2d}  total distance {n.distance:.2f}")
    fair = aggregate_nn(index, cafe_index, friends, k=1, agg="max")
    print(f"fairest cafe (minimax travel): {fair.neighbors[0].oid} "
          f"(worst member rides {fair.neighbors[0].distance:.2f})")

    # --- closest warehouse-store pairs --------------------------------
    warehouses = random_vertex_objects(city, count=6, seed=8)
    wh_index = ObjectIndex(city, warehouses, index.embedding)
    pairs = distance_join(index, wh_index, cafe_index, k=4)
    print("\nclosest (warehouse, cafe) pairs:")
    for w, c, d in pairs:
        print(f"  warehouse {w} -> cafe {c}: {d:.2f}")

    # --- a road closes; patch the index locally -----------------------
    route = index.path(home, 700)
    a, b = route[len(route) // 2], route[len(route) // 2 + 1]
    closed = city.without_edges([(a, b), (b, a)])
    if closed.num_strongly_connected_components() == 1:
        patched, rebuilt = update_index(index, closed)
        print(
            f"\nroad {a}<->{b} closed: rebuilt {len(rebuilt)} of "
            f"{city.num_vertices} shortest-path quadtrees "
            f"({100 * len(rebuilt) / city.num_vertices:.1f}% of the index)"
        )
        new_cafe_index = ObjectIndex(closed, cafes, patched.embedding)
        before = next(browse(index, cafe_index, home))
        after = next(browse(patched, new_cafe_index, home))
        print(f"nearest cafe before: {before.oid}, after: {after.oid}")


if __name__ == "__main__":
    main()
