"""The "closest Kinko's" scenario (paper pp.6-8).

The paper's motivating example: ranking service locations by straight-
line ("as the crow flies") distance -- what 2008-era map services did
-- can disagree badly with the true drive-distance ranking.  This
example recreates the experiment: place service locations on a road
network, rank them by geodesic and by network distance, and report the
ordering disagreement and the extra distance a user would drive by
trusting the geodesic answer.

Run:  python examples/closest_services.py
"""

from repro import ObjectIndex, SILCIndex, knn, road_like_network
from repro.datasets import random_vertex_objects


def kendall_disagreements(a: list[int], b: list[int]) -> int:
    """Number of pairwise order inversions between two rankings."""
    pos = {oid: i for i, oid in enumerate(b)}
    inversions = 0
    for i in range(len(a)):
        for j in range(i + 1, len(a)):
            if pos[a[i]] > pos[a[j]]:
                inversions += 1
    return inversions


def main() -> None:
    # Slow local streets vs fast arterials: the regime where driving
    # distance diverges hardest from straight-line distance (the
    # paper's Pittsburgh example: +26 miles for trusting geodesics).
    net = road_like_network(
        1200, seed=3, arterial_fraction=0.08, local_penalty=3.0
    )
    index = SILCIndex.build(net)

    # Five service locations (the paper's five Kinko's branches).
    services = random_vertex_objects(net, count=5, seed=23)
    object_index = ObjectIndex(net, services, index.embedding)
    labels = {o.oid: chr(ord("A") + o.oid) for o in services}

    worst_extra = 0.0
    total_queries = 0
    mismatched_queries = 0
    example_shown = False

    for query in range(0, net.num_vertices, 97):
        q_point = net.vertex_point(query)

        geodesic = sorted(
            services, key=lambda o: q_point.distance_to(o.point)
        )
        geodesic_ids = [o.oid for o in geodesic]

        result = knn(index, object_index, query, k=5, exact=True)
        network_ids = result.ids()
        network_dist = {n.oid: n.distance for n in result.neighbors}

        total_queries += 1
        if geodesic_ids != network_ids:
            mismatched_queries += 1
            # Extra distance for trusting the geodesic #1.
            extra = network_dist[geodesic_ids[0]] - network_dist[network_ids[0]]
            worst_extra = max(worst_extra, extra)
            if not example_shown and extra > 0:
                example_shown = True
                print(f"query at vertex {query}:")
                print(
                    "  geodesic ordering: "
                    + " ".join(labels[i] for i in geodesic_ids)
                )
                print(
                    "  network  ordering: "
                    + " ".join(labels[i] for i in network_ids)
                )
                print(
                    f"  driving to the geodesic pick costs "
                    f"{network_dist[geodesic_ids[0]]:.2f} vs "
                    f"{network_dist[network_ids[0]]:.2f} "
                    f"(error: +{extra:.2f} network units)"
                )
                inv = kendall_disagreements(geodesic_ids, network_ids)
                print(f"  pairwise rank inversions: {inv} of 10\n")

    print(
        f"geodesic ranking disagreed with network ranking on "
        f"{mismatched_queries}/{total_queries} query points"
    )
    print(f"worst extra travel from trusting the geodesic answer: "
          f"+{worst_extra:.2f} network units")
    print("\nThe paper's point: 'instant answers as well as accurate "
          "answers' requires true network distance -- which is what "
          "the SILC index provides at geodesic-like query cost.")


if __name__ == "__main__":
    main()
