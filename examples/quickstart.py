"""Quickstart: build a SILC index and browse network distances.

Walks through the full pipeline of the paper on a synthetic road
network: precompute shortest-path quadtrees, place an object set,
answer a k-nearest-neighbor query by network distance, retrieve a
shortest path, and watch progressive refinement tighten a distance
interval one link at a time.

Run:  python examples/quickstart.py
"""

from repro import ObjectIndex, QueryEngine, SILCIndex, knn, road_like_network
from repro.datasets import random_vertex_objects


def main() -> None:
    # 1. A synthetic road network: ~800 intersections, road-like
    #    degree, arterial/local weight tiers.
    net = road_like_network(800, seed=7)
    print(f"network: {net.num_vertices} vertices, {net.num_edges} edges")

    # 2. The SILC precompute: one shortest-path quadtree per vertex.
    #    workers=0 fans the per-source builds across every available
    #    CPU (it resolves to the serial path on a single-CPU machine);
    #    the output is identical to a serial build either way.
    index = SILCIndex.build(net, workers=0)
    blocks = index.total_blocks()
    print(
        f"SILC index: {blocks} Morton blocks "
        f"({blocks / net.num_vertices:.1f} per vertex, "
        f"{index.storage_bytes() / 1024:.0f} KiB at 16 B/block)"
    )

    # 3. A decoupled object set: 40 restaurants on random corners.
    restaurants = random_vertex_objects(net, count=40, seed=11)
    object_index = ObjectIndex(net, restaurants, index.embedding)

    # 4. The 5 nearest restaurants by *network* distance from vertex 0.
    result = knn(index, object_index, query=0, k=5, exact=True)
    print("\n5 nearest restaurants from vertex 0:")
    for rank, neighbor in enumerate(result.neighbors, start=1):
        obj = restaurants[neighbor.oid]
        print(
            f"  #{rank}: object {neighbor.oid} at vertex "
            f"{obj.position.vertex}, network distance {neighbor.distance:.3f}"
        )
    print(
        f"query work: {result.stats.refinements} refinements, "
        f"peak queue {result.stats.max_queue}"
    )

    # 5. Shortest-path retrieval in size-of-path steps (p.17).
    target = restaurants[result.neighbors[0].oid].position.vertex
    path = index.path(0, target)
    print(f"\nshortest path to the winner ({len(path)} vertices):")
    print("  " + " -> ".join(map(str, path[:12])) + (" ..." if len(path) > 12 else ""))

    # 6. Progressive refinement: the interval tightens link by link.
    far = net.num_vertices - 1
    refinable = index.refinable(0, far)
    print(f"\nprogressive refinement of distance 0 -> {far}:")
    step = 0
    while True:
        iv = refinable.interval
        print(f"  step {step:2d}: [{iv.lo:9.3f}, {iv.hi:9.3f}] width {iv.width:.3f}")
        if not refinable.refine() or step >= 6:
            break
        step += 1
    exact = refinable.refine_fully()
    print(f"  ...fully refined: {exact:.3f} (exact)")

    # 7. Serving many queries: one QueryEngine shares resolved
    #    locations and a warm page cache across the whole batch and
    #    aggregates the per-query stats.
    engine = QueryEngine(index, object_index, cache_fraction=0.05)
    batch = engine.knn_batch(range(0, 100, 5), k=3, variant="knn_m")
    print(
        f"\nbatch of {len(batch)} queries: "
        f"{batch.stats.refinements} refinements, "
        f"{batch.stats.io_misses} page faults, "
        f"{batch.elapsed * 1e3:.1f} ms total"
    )

    # 8. To run this engine as a *service* -- asyncio front end,
    #    per-client fair scheduling, admission control -- see
    #    examples/serve_demo.py and the `python -m repro serve`
    #    JSON-lines CLI.


if __name__ == "__main__":
    main()
