"""Distance browsing and dynamic re-routing (paper pp.18, 27).

Two scenarios from the paper:

1. **Comparison queries by progressive refinement** -- "Is Munich
   closer to Mainz than Bremen?" answered without computing either
   exact distance: refine the two intervals only until they separate.

2. **Road closure** -- the open "updates" challenge (p.27): close the
   first edge of the current best route, rebuild the (localized)
   index, and watch the route and distances change.

Run:  python examples/route_browsing.py
"""

from repro import SILCIndex, road_like_network
from repro.silc.refinement import RefinableDistance


def compare_by_refinement(
    index: SILCIndex, origin: int, a: int, b: int
) -> tuple[int, int]:
    """Decide which of ``a``/``b`` is closer to ``origin``.

    Returns ``(winner, refinements_used)``.  Refines only until the
    intervals stop colliding -- the paper's progressive-refinement
    primitive (p.18).
    """
    da = index.refinable(origin, a)
    db = index.refinable(origin, b)
    steps = 0
    while da.interval.intersects(db.interval):
        # Refine the wider interval first: it is the blocker.
        target = da if da.interval.width >= db.interval.width else db
        if not target.refine():
            other = db if target is da else da
            if not other.refine():
                break  # both exact: tie
        steps += 1
    winner = a if da.interval.lo <= db.interval.lo else b
    return winner, steps


def main() -> None:
    net = road_like_network(1000, seed=15)
    index = SILCIndex.build(net)

    # --- scenario 1: is A closer than B? -------------------------------
    origin, munich, bremen = 10, 880, 870
    winner, steps = compare_by_refinement(index, origin, munich, bremen)
    exact_m = index.distance(origin, munich)
    exact_b = index.distance(origin, bremen)
    full_links = len(index.path(origin, munich)) + len(index.path(origin, bremen)) - 2
    print("comparison query: which of "
          f"{munich} ({exact_m:.2f}) / {bremen} ({exact_b:.2f}) is closer "
          f"to {origin}?")
    print(f"  progressive refinement decided: vertex {winner}")
    print(f"  refinements used: {steps} (exact answers would need "
          f"{full_links} link traversals)\n")
    assert (winner == munich) == (exact_m <= exact_b)

    # --- scenario 2: road closure --------------------------------------
    src, dst = 0, net.num_vertices - 1
    route = index.path(src, dst)
    dist = index.distance(src, dst)
    print(f"route {src} -> {dst}: {len(route)} vertices, distance {dist:.2f}")

    a, b = route[1], route[2]
    print(f"closing road segment {a} -> {b} (and its reverse) ...")
    closed = net.without_edges([(a, b), (b, a)])
    if closed.num_strongly_connected_components() != 1:
        print("  closure would disconnect the network; nothing to do")
        return

    # The paper leaves incremental updates open; the localized strategy
    # it sketches is to recompute only affected sources.  Rebuilding is
    # embarrassingly parallel and, here, fast enough to do whole.
    index2 = SILCIndex.build(closed)
    route2 = index2.path(src, dst)
    dist2 = index2.distance(src, dst)
    print(f"after closure: {len(route2)} vertices, distance {dist2:.2f} "
          f"(+{dist2 - dist:.2f})")
    assert (a, b) not in set(zip(route2, route2[1:]))

    shared = len(set(route) & set(route2))
    print(f"routes share {shared} of {len(set(route) | set(route2))} vertices; "
          "the detour is local, everything else is reused")


if __name__ == "__main__":
    main()
