"""Serving demo: fair scheduling and admission control in action.

Stands a :class:`repro.serve.SILCServer` on one built SILC index and
races two clients against it: a bulk client streaming a thousand
batched kNN queries and an interactive client issuing single queries.
The fair scheduler keeps the interactive client's waiting time at
chunk granularity -- it never queues behind the whole backlog -- and
the admission controller sheds work past the in-flight cap with an
explicit retry-after instead of letting the queue grow without bound.

The same server is scriptable from a shell via the JSON-lines CLI::

    python -m repro generate --size 500 net.txt
    python -m repro build net.txt index.npz
    echo '{"id": 1, "kind": "knn", "query": 0, "k": 5}' \
        | python -m repro serve net.txt index.npz --objects 40

Run:  python examples/serve_demo.py
"""

import asyncio

from repro import ObjectIndex, QueryEngine, SILCIndex, road_like_network
from repro.datasets import random_vertex_objects
from repro.serve import (
    AdmissionController,
    AsyncEngine,
    FairScheduler,
    Request,
    SILCServer,
)


async def submit_with_retry(server, request, *, max_attempts=5, cap=2.0):
    """Submit honouring the server's retry contract (see
    :mod:`repro.serve.protocol`).

    A shed response carries ``retry_after`` -- the server's own estimate
    of when capacity frees up.  The client waits at least that long,
    scaled by capped exponential backoff (``retry_after * 2**(attempt-1)``,
    never more than ``cap`` seconds) so a herd of retrying clients
    spreads out instead of stampeding the admission controller.  A
    ``retry_after`` of 0 means the request itself is the problem
    (request_too_large): resubmitting verbatim can never succeed, so
    the shed response is returned as-is for the caller to split.
    """
    response = await server.submit(request)
    for attempt in range(1, max_attempts):
        if response.status != "shed" or not response.retry_after:
            return response
        wait = min(cap, response.retry_after * 2 ** (attempt - 1))
        await asyncio.sleep(wait)
        response = await server.submit(request)
    return response


async def main() -> None:
    # 1. One built index + engine, exactly as in examples/quickstart.py.
    net = road_like_network(400, seed=7)
    index = SILCIndex.build(net)
    objects = random_vertex_objects(net, count=60, seed=11)
    engine = QueryEngine(
        index, ObjectIndex(net, objects, index.embedding), cache_fraction=0.05
    )
    print(f"serving a {net.num_vertices}-vertex network, {len(objects)} objects")

    # 2. The serving stack: awaitable engine facade, chunked fair
    #    scheduler, token-bucket + in-flight admission control.
    async with AsyncEngine(engine) as async_engine:
        server = SILCServer(
            async_engine,
            scheduler=FairScheduler(chunk_size=32),
            admission=AdmissionController(max_in_flight=4096),
        )
        async with server:
            # 3. A bulk client dumps 1000 queries in four batches...
            bulk = [
                Request(id=f"bulk-{b}", client="bulk", kind="knn_batch",
                        queries=tuple((b + 4 * i) % net.num_vertices
                                      for i in range(250)),
                        k=3, exact=False)
                for b in range(4)
            ]
            bulk_tasks = [asyncio.create_task(server.submit(r)) for r in bulk]
            await asyncio.sleep(0)  # let the backlog enqueue

            # 4. ...while an interactive client keeps asking single kNNs.
            #    sched_delay counts how many queries ran while it waited.
            print("\ninteractive queries racing the bulk backlog:")
            for i, query in enumerate([3, 77, 191, 289]):
                response = await server.submit(
                    Request(id=f"web-{i}", client="web", kind="knn",
                            queries=(query,), k=3)
                )
                print(
                    f"  knn({query}): neighbors {response.result['ids']}, "
                    f"waited behind {response.sched_delay} queries "
                    f"({response.latency * 1e3:.1f} ms)"
                )
            for task in bulk_tasks:
                await task

            # 5. Admission control: load past the in-flight cap is
            #    shed explicitly instead of queueing without bound.  A
            #    batch that could never fit is refused outright
            #    (request_too_large, retry_after 0: split it); an
            #    over-capacity moment gets a finite retry-after.
            #    submit_with_retry honours that contract: it backs off
            #    by retry_after (doubling, capped) before resubmitting,
            #    and gives up immediately on retry_after 0.
            flood = Request(id="flood", client="bulk", kind="knn_batch",
                            queries=tuple(range(5000)), k=3, exact=False)
            response = await submit_with_retry(server, flood)
            print(
                f"\nflood of {flood.cost} queries: {response.status} "
                f"({response.reason}, retry_after {response.retry_after:.2f}s)"
            )

        print("\nfinal server metrics:")
        print(server.snapshot().format())


if __name__ == "__main__":
    asyncio.run(main())
