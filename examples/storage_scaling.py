"""Storage scaling and the continental-US extrapolation (pp.16, 27).

Measures the O(N^1.5) Morton-block growth on live builds, then runs
the paper's back-of-the-envelope "Musings on How Realistic is the
Approach" calculation for the 24-million-vertex US road network:
storage in terabytes and precompute wall-time on machine fleets of
various sizes.

Run:  python examples/storage_scaling.py
"""

import math
import time

import numpy as np

from repro import SILCIndex, road_like_network

SIZES = [400, 800, 1600, 3200]
US_VERTICES = 24_000_000
BYTES_PER_BLOCK = 8  # the paper's figure (code-only records)


def measured_sweep() -> float:
    """Build indexes across sizes; return the fitted log-log slope."""
    print(f"{'vertices':>9} {'blocks':>10} {'blocks/N':>9} "
          f"{'c = blocks/N^1.5':>17} {'build_s':>8}")
    counts = []
    for n in SIZES:
        net = road_like_network(n, seed=31)
        t0 = time.perf_counter()
        index = SILCIndex.build(net, chunk_size=256)
        dt = time.perf_counter() - t0
        blocks = index.total_blocks()
        counts.append(blocks)
        print(f"{n:9d} {blocks:10d} {blocks / n:9.1f} "
              f"{blocks / n**1.5:17.2f} {dt:8.2f}")
    slope = float(np.polyfit(np.log(SIZES), np.log(counts), 1)[0])
    print(f"\nlog-log slope: {slope:.3f}  (paper: 1.5)")
    return slope


def musings(c: float = 2.0, seconds_per_source: float = 10.0) -> None:
    """The paper's p.27 extrapolation, parameterized by measurements."""
    blocks = c * US_VERTICES * math.sqrt(US_VERTICES)
    tb = blocks * BYTES_PER_BLOCK / 1e12
    print(f"\ncontinental US at N = {US_VERTICES:,} vertices, c = {c}:")
    print(f"  storage: {blocks:.3g} Morton blocks = {tb:.1f} TB "
          f"at {BYTES_PER_BLOCK} B/block (paper: 1.8 TB)")
    total = US_VERTICES * seconds_per_source
    for machines, label in (
        (1, "single machine"),
        (2_000, "modest cluster of 2,000"),
        (500_000, "Google-scale fleet of 500,000"),
    ):
        seconds = total / machines
        if seconds >= 86400:
            human = f"{seconds / 86400:.1f} days"
        elif seconds >= 3600:
            human = f"{seconds / 3600:.1f} hours"
        else:
            human = f"{seconds:.0f} seconds"
        print(f"  precompute on {label}: {human}")
    print("  (the build is data-parallel: one source per task, no "
          "coordination -- the paper's 'mostly a one-time effort')")


def main() -> None:
    slope = measured_sweep()
    musings()
    if not (1.2 <= slope <= 1.9):
        raise SystemExit(f"unexpected storage slope {slope:.2f}")


if __name__ == "__main__":
    main()
