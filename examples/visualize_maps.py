"""Render shortest-path maps (the paper's figures, pp.12-13).

Writes PPM images of shortest-path maps -- one colored region per
first hop of a source vertex -- plus a terminal ASCII preview.  The
spatial contiguity you see in these pictures *is* the paper: it is the
property that lets a quadtree compress each map into O(sqrt N) blocks.

Run:  python examples/visualize_maps.py [output_dir]
"""

import sys
from pathlib import Path

from repro import SILCIndex, road_like_network
from repro.viz import (
    region_summary,
    render_ascii,
    render_ppm,
    shortest_path_map_grid,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("map_renders")
    out_dir.mkdir(exist_ok=True)

    net = road_like_network(900, seed=12)
    index = SILCIndex.build(net)

    # a central source and a corner source show different map shapes
    cx = (net.xs.min() + net.xs.max()) / 2
    cy = (net.ys.min() + net.ys.max()) / 2
    from repro.geometry import Point

    central = net.nearest_vertex(Point(cx, cy))
    corner = net.nearest_vertex(Point(net.xs.min(), net.ys.min()))

    for label, source in (("central", central), ("corner", corner)):
        grid = shortest_path_map_grid(index, source, resolution=160)
        path = render_ppm(grid, out_dir / f"map_{label}_{source}.ppm")
        counts = region_summary(index, source)
        print(f"{label} source {source}: out-degree {net.out_degree(source)}, "
              f"{len(counts)} colors, {len(index.tables[source])} blocks "
              f"-> {path}")

    print("\nASCII preview of the central source's map (48x48):")
    print(render_ascii(shortest_path_map_grid(index, central, resolution=48)))
    print(
        "\nEach letter is one first-hop region; large contiguous runs "
        "are what the shortest-path quadtree stores as single Morton "
        "blocks."
    )


if __name__ == "__main__":
    main()
