"""repro: Scalable Network Distance Browsing in Spatial Databases.

A faithful, self-contained reproduction of the SILC framework and kNN
algorithms of Samet, Sankaranarayanan & Alborzi (SIGMOD 2008, best
paper).  The package builds shortest-path quadtrees over a spatial
network, answers k-nearest-neighbor queries by network distance with
progressive refinement, and ships the baselines (INE, IER) and the
storage/I-O model needed to regenerate every figure of the paper's
evaluation.

Quick start::

    from repro import (
        road_like_network, SILCIndex, ObjectIndex, QueryEngine, knn,
    )
    from repro.datasets import random_vertex_objects

    net = road_like_network(1000, seed=7)
    # workers=0 fans the per-source precompute across every available
    # CPU (workers=N for an explicit pool size); the parallel build is
    # byte-identical to the serial one.
    index = SILCIndex.build(net, workers=0)
    objects = random_vertex_objects(net, density=0.05, seed=7)
    object_index = ObjectIndex(net, objects, index.embedding)

    # One-off query:
    result = knn(index, object_index, query=0, k=5, exact=True)
    for neighbor in result.neighbors:
        print(neighbor.oid, neighbor.distance)

    # Serving many queries: QueryEngine caches resolved locations,
    # keeps one (warm) storage simulator attached, and aggregates the
    # per-query stats into one batch-level QueryStats.
    engine = QueryEngine(index, object_index, cache_fraction=0.05)
    batch = engine.knn_batch(range(100), k=5, variant="knn_m")
    print(len(batch), "queries,", batch.stats.refinements, "refinements")
"""

from repro.engine import BatchResult, QueryEngine
from repro.errors import (
    CorruptIndexError,
    DeadlineExceeded,
    ShardUnavailable,
    WorkerDied,
)
from repro.faults import FaultInjector
from repro.geometry import GridEmbedding, Point, Rect
from repro.network import (
    SpatialNetwork,
    astar_path,
    grid_network,
    network_distance,
    random_planar_network,
    road_like_network,
    shortest_path,
    shortest_path_tree,
)
from repro.objects import (
    EdgePosition,
    ObjectIndex,
    ObjectSet,
    SpatialObject,
    VertexPosition,
)
from repro.query import (
    KNNResult,
    Neighbor,
    QueryStats,
    aggregate_nn,
    approximate_knn,
    browse,
    distance_join,
    ier_knn,
    ine_knn,
    inn,
    knn,
    knn_i,
    knn_m,
    range_query,
)
from repro.silc import (
    BeyondHorizonError,
    DistanceInterval,
    ProximalSILCIndex,
    RefinableDistance,
    SILCIndex,
    shortest_path_map,
    update_index,
)
from repro.storage import LRUCache, PageLayout, StorageSimulator

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rect",
    "GridEmbedding",
    "SpatialNetwork",
    "grid_network",
    "random_planar_network",
    "road_like_network",
    "shortest_path",
    "shortest_path_tree",
    "astar_path",
    "network_distance",
    "SILCIndex",
    "DistanceInterval",
    "RefinableDistance",
    "shortest_path_map",
    "ObjectSet",
    "ObjectIndex",
    "SpatialObject",
    "VertexPosition",
    "EdgePosition",
    "knn",
    "inn",
    "knn_i",
    "knn_m",
    "ine_knn",
    "ier_knn",
    "browse",
    "range_query",
    "approximate_knn",
    "aggregate_nn",
    "distance_join",
    "ProximalSILCIndex",
    "BeyondHorizonError",
    "update_index",
    "KNNResult",
    "Neighbor",
    "QueryEngine",
    "BatchResult",
    "QueryStats",
    "StorageSimulator",
    "LRUCache",
    "PageLayout",
    "CorruptIndexError",
    "DeadlineExceeded",
    "WorkerDied",
    "ShardUnavailable",
    "FaultInjector",
    "__version__",
]
