"""Project-specific static analysis: the ``repro check`` rule engine.

The architecture invariants this package enforces live in prose in
ARCHITECTURE.md ("Enforced invariants") and in the minds of whoever
wrote the serving tier.  Prose does not fail CI; these rules do.  Each
rule is a small :class:`~repro.analysis.core.Rule` subclass walking
Python ASTs and emitting :class:`~repro.analysis.core.Finding` records
with a stable ``RPRxxx`` identifier:

========  ==========================================================
RPR001    lock discipline: attributes guarded by ``with self._lock``
          somewhere must never be mutated without it elsewhere
RPR002    protocol exhaustiveness: every message tag sent across the
          shard pipe / serve protocol has a matching handler arm
RPR003    atomic writes: index/label/shard persistence goes through
          ``repro.integrity`` staging, never bare ``open``/``np.save``
RPR004    counted-op purity: no wall clock inside counted kernels
          except the sanctioned ``repro.query.stats`` hooks
RPR005    exception discipline: no bare/silent broad excepts; pipe
          errors are types from ``repro.errors``
RPR006    tracing no-op safety: every trace/span call site works with
          ``NULL_TRACE``/``NULL_SPAN``; no ``repro.obs`` import in
          inner-loop modules
RPR007    deadline propagation: deadline-accepting functions forward
          the budget to deadline-accepting callees
========  ==========================================================

A finding is silenced inline with ``# repro: ignore[RPRxxx] reason``
on the offending line (or the line above); the justification text is
mandatory -- an ignore without one does not suppress.  Repository-wide
configuration lives in ``analysis.toml``; the CLI surface is
``repro check [--json] [--rule ID] [paths]``.
"""

from repro.analysis.core import (
    AnalysisConfig,
    Analyzer,
    Finding,
    Module,
    Rule,
)
from repro.analysis.rules import ALL_RULES, make_rules
from repro.analysis.runner import run_check

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "Analyzer",
    "Finding",
    "Module",
    "Rule",
    "make_rules",
    "run_check",
]
