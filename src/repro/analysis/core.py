"""The rule engine behind ``repro check``.

Three pieces:

* :class:`Finding` -- one diagnostic, addressed ``path:line`` with a
  stable rule id, JSON-serializable for the ``--json`` surface;
* :class:`Rule` -- the plugin base class: per-module AST checks via
  :meth:`Rule.check_module` plus a cross-module :meth:`Rule.finalize`
  pass for rules that relate *files to each other* (protocol
  exhaustiveness, deadline propagation);
* :class:`Analyzer` -- parses every file once, runs the rules, then
  applies inline suppressions.

Suppressions are ``# repro: ignore[RPRxxx] justification`` comments on
the finding's line or the line directly above.  The justification text
is **required**: an ignore with an empty tail keeps the finding alive
(annotated, so the author knows why).  This mirrors how production
lint gates stay honest -- every silenced diagnostic documents the
reason it is safe.

The engine is stdlib-only (``ast`` + ``tomllib``) so it runs in any
environment the package itself runs in, including CI images without
third-party lint tooling.
"""

from __future__ import annotations

import ast
import re
import tomllib
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

#: Inline suppression syntax; group 1 = comma-separated rule ids,
#: group 2 = the (mandatory) justification text.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*?)\s*$"
)

#: Rule-id shape; ``repro check --rule`` validates against this.
RULE_ID_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule id, location, message, suppression state."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> Finding:
        return cls(
            rule=str(obj["rule"]),
            path=str(obj["path"]),
            line=int(obj["line"]),
            message=str(obj["message"]),
            suppressed=bool(obj.get("suppressed", False)),
            justification=str(obj.get("justification", "")),
        )


@dataclass
class Module:
    """One parsed source file, shared by every rule."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: Path) -> Module:
        source = path.read_text(encoding="utf-8")
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(
            path=path,
            rel=rel,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            lines=source.splitlines(),
        )


def path_matches(rel: str, patterns: Iterable[str]) -> bool:
    """True when ``rel`` is one of ``patterns`` or inside one of them.

    Patterns are repository-relative POSIX paths; a pattern names
    either a file (exact match) or a directory prefix.
    """
    for pattern in patterns:
        pattern = pattern.rstrip("/")
        if rel == pattern or rel.startswith(pattern + "/"):
            return True
    return False


def scope_nodes(
    module: Module, qualprefix: str | None
) -> list[ast.AST]:
    """AST nodes of one ``path::qualname`` selector.

    ``qualprefix`` of ``None`` (or ``""``) selects the whole module;
    otherwise every function/class whose dotted qualname equals the
    prefix or starts with ``prefix.`` is returned (so ``ShardWorker``
    selects the class and everything inside it).
    """
    if not qualprefix:
        return [module.tree]
    selected: list[ast.AST] = []

    def visit(node: ast.AST, qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                childqual = f"{qual}.{child.name}" if qual else child.name
                if childqual == qualprefix:
                    selected.append(child)
                else:
                    visit(child, childqual)
            else:
                visit(child, qual)

    visit(module.tree, "")
    return selected


class Rule:
    """Base class every ``RPRxxx`` rule subclasses.

    Subclasses set :attr:`rule_id`/:attr:`title`, may declare
    :attr:`default_config` (overridden by the matching
    ``[rules.RPRxxx]`` table of ``analysis.toml``), and implement
    :meth:`check_module` (per file) and/or :meth:`finalize` (once,
    after every file has been offered -- the hook for cross-file
    rules).
    """

    rule_id = "RPR000"
    title = "unnamed rule"
    default_config: dict = {}

    def __init__(self, config: dict | None = None) -> None:
        merged = dict(self.default_config)
        merged.update(config or {})
        self.config = merged

    def applies(self, module: Module) -> bool:
        """Module filter; default honours a ``modules`` config list."""
        patterns = self.config.get("modules") or []
        return not patterns or path_matches(module.rel, patterns)

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finalize(self, modules: Sequence[Module]) -> Iterable[Finding]:
        return ()

    # Convenience for subclasses -------------------------------------
    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            rule=self.rule_id, path=module.rel, line=line, message=message
        )


@dataclass
class AnalysisConfig:
    """Parsed ``analysis.toml`` plus the root all paths resolve against."""

    root: Path
    raw: dict = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> AnalysisConfig:
        path = Path(path)
        with open(path, "rb") as handle:
            raw = tomllib.load(handle)
        return cls(root=path.resolve().parent, raw=raw)

    @classmethod
    def discover(cls, start: str | Path = ".") -> AnalysisConfig:
        """Find ``analysis.toml`` in ``start`` or any parent directory."""
        directory = Path(start).resolve()
        for candidate in (directory, *directory.parents):
            config = candidate / "analysis.toml"
            if config.is_file():
                return cls.load(config)
        return cls(root=directory)

    @property
    def default_paths(self) -> list[str]:
        return list(
            self.raw.get("analysis", {}).get("paths", ["src/repro"])
        )

    @property
    def exclude(self) -> list[str]:
        return list(self.raw.get("analysis", {}).get("exclude", []))

    def rule_config(self, rule_id: str) -> dict:
        return dict(self.raw.get("rules", {}).get(rule_id, {}))


def _suppression_on(line: str) -> tuple[set[str], str] | None:
    match = SUPPRESSION_RE.search(line)
    if match is None:
        return None
    ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
    return ids, match.group(2).strip()


class Analyzer:
    """Drive a rule set over a file set and apply suppressions."""

    def __init__(
        self, config: AnalysisConfig, rules: Sequence[Rule]
    ) -> None:
        self.config = config
        self.rules = list(rules)

    # -- discovery ----------------------------------------------------
    def discover_files(self, paths: Sequence[str | Path]) -> list[Path]:
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if not path.is_absolute():
                path = self.config.root / path
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        unique: dict[Path, None] = {}
        for path in files:
            unique.setdefault(path.resolve())
        return list(unique)

    def load_modules(
        self, paths: Sequence[str | Path]
    ) -> tuple[list[Module], list[Finding]]:
        """Parse the file set; unparseable files become findings."""
        modules: list[Module] = []
        errors: list[Finding] = []
        for path in self.discover_files(paths):
            try:
                module = Module.parse(path, self.config.root)
            except SyntaxError as exc:
                rel = path.as_posix()
                errors.append(
                    Finding(
                        rule="RPR000",
                        path=rel,
                        line=exc.lineno or 1,
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            if path_matches(module.rel, self.config.exclude):
                continue
            modules.append(module)
        return modules, errors

    # -- running ------------------------------------------------------
    def run(
        self,
        paths: Sequence[str | Path] | None = None,
        rule_ids: Sequence[str] | None = None,
    ) -> list[Finding]:
        modules, findings = self.load_modules(
            paths or self.config.default_paths
        )
        wanted = set(rule_ids) if rule_ids else None
        for rule in self.rules:
            if wanted is not None and rule.rule_id not in wanted:
                continue
            applicable = [m for m in modules if rule.applies(m)]
            for module in applicable:
                findings.extend(rule.check_module(module))
            findings.extend(rule.finalize(applicable))
        findings = [self._apply_suppression(f, modules) for f in findings]
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings

    def _apply_suppression(
        self, finding: Finding, modules: Sequence[Module]
    ) -> Finding:
        module = next(
            (m for m in modules if m.rel == finding.path), None
        )
        if module is None or not (1 <= finding.line <= len(module.lines)):
            return finding
        candidates = [module.lines[finding.line - 1]]
        if finding.line >= 2:
            above = module.lines[finding.line - 2].strip()
            if above.startswith("#"):
                candidates.append(above)
        for text in candidates:
            parsed = _suppression_on(text)
            if parsed is None:
                continue
            ids, justification = parsed
            if finding.rule not in ids:
                continue
            if not justification:
                return replace(
                    finding,
                    message=finding.message
                    + " (ignore comment present but a justification is"
                    " required)",
                )
            return replace(
                finding, suppressed=True, justification=justification
            )
        return finding


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def arg_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    ]


def terminal_name(func: ast.expr) -> str | None:
    """The rightmost name of a call target (``a.b.c(...)`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
