"""Rule registry: every shipped ``RPRxxx`` rule, in id order."""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.core import AnalysisConfig, Rule
from repro.analysis.rules.atomicwrite import AtomicWriteRule
from repro.analysis.rules.deadline import DeadlinePropagationRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.protocol import ProtocolExhaustivenessRule
from repro.analysis.rules.purity import CountedOpPurityRule
from repro.analysis.rules.tracing import TracingNoOpRule

ALL_RULES: tuple[type[Rule], ...] = (
    LockDisciplineRule,
    ProtocolExhaustivenessRule,
    AtomicWriteRule,
    CountedOpPurityRule,
    ExceptionDisciplineRule,
    TracingNoOpRule,
    DeadlinePropagationRule,
)


def make_rules(
    config: AnalysisConfig,
    rule_classes: Sequence[type[Rule]] = ALL_RULES,
) -> list[Rule]:
    """Instantiate the rule set with each rule's config table."""
    return [cls(config.rule_config(cls.rule_id)) for cls in rule_classes]


__all__ = [
    "ALL_RULES",
    "AtomicWriteRule",
    "CountedOpPurityRule",
    "DeadlinePropagationRule",
    "ExceptionDisciplineRule",
    "LockDisciplineRule",
    "ProtocolExhaustivenessRule",
    "TracingNoOpRule",
    "make_rules",
]
