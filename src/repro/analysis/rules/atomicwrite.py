"""RPR003: persistence must go through the integrity staging helpers.

Invariant 5 (ARCHITECTURE.md): an interrupted save never leaves a
silently-corrupt index.  That only holds if every byte of index /
label / shard / trajectory persistence flows through
``repro.integrity`` -- either inside a ``with atomic_directory(...)
as tmp:`` staging block, or via one of its atomic single-file
helpers.  A bare ``open(..., "w")``, ``np.save`` or ``json.dump``
against a real destination path re-introduces the torn-write window
the helpers exist to close.

Within the configured persistence modules this rule flags any write
primitive (``open`` with a writing mode, ``Path.open`` with a writing
mode, ``write_text``/``write_bytes``, ``np.save*``, ``json.dump``,
``pickle.dump``) whose destination does not mention a staging name --
a variable bound by ``with atomic_directory(...) as tmp:``.  The
integrity module itself is exempt: it is where the unsafe primitives
are allowed to live, wrapped in the publish-by-rename dance.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.core import Finding, Module, Rule, path_matches

WRITE_MODES = ("w", "a", "x", "+")

NUMPY_WRITERS = {"save", "savez", "savez_compressed"}

DUMPERS = {"json", "pickle"}


def _writing_mode(call: ast.Call, mode_index: int) -> bool:
    mode: ast.expr | None = None
    if len(call.args) > mode_index:
        mode = call.args[mode_index]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in WRITE_MODES)
    )


class AtomicWriteRule(Rule):
    rule_id = "RPR003"
    title = "atomic-write enforcement"
    default_config: dict = {
        "modules": [],
        "allow": ["src/repro/integrity.py"],
        "staging_calls": ["atomic_directory"],
    }

    def applies(self, module: Module) -> bool:
        if path_matches(module.rel, self.config.get("allow", [])):
            return False
        return super().applies(module)

    def check_module(self, module: Module) -> Iterable[Finding]:
        return list(self._walk_body(module, module.tree.body, set()))

    # ------------------------------------------------------------------
    def _walk_body(
        self, module: Module, stmts: list[ast.stmt], staging: set[str]
    ) -> Iterator[Finding]:
        for stmt in stmts:
            inner = set(staging)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and self._is_staging_call(item.context_expr)
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        inner.add(item.optional_vars.id)
                    else:
                        yield from self._check_expr(
                            module, item.context_expr, staging
                        )
                yield from self._walk_body(module, stmt.body, inner)
                continue
            for field_name, value in ast.iter_fields(stmt):
                if field_name in ("body", "orelse", "finalbody", "handlers"):
                    continue
                yield from self._check_field(module, value, staging)
            for block_name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, block_name, None)
                if block:
                    yield from self._walk_body(module, block, staging)
            for handler in getattr(stmt, "handlers", ()) or ():
                yield from self._walk_body(module, handler.body, staging)

    def _check_field(
        self, module: Module, value: object, staging: set[str]
    ) -> Iterator[Finding]:
        if isinstance(value, ast.expr):
            yield from self._check_expr(module, value, staging)
        elif isinstance(value, list):
            for element in value:
                if isinstance(element, ast.expr):
                    yield from self._check_expr(module, element, staging)

    def _check_expr(
        self, module: Module, expr: ast.expr, staging: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            description = self._write_primitive(node)
            if description is None:
                continue
            target = self._target_expr(node)
            if target is not None and self._mentions(target, staging):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{description} outside the integrity staging helpers; "
                "stage through atomic_directory()/atomic helpers in "
                "repro.integrity so an interrupted write cannot publish",
            )

    # ------------------------------------------------------------------
    def _is_staging_call(self, call: ast.Call) -> bool:
        names = set(self.config.get("staging_calls", []))
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in names
        if isinstance(func, ast.Attribute):
            return func.attr in names
        return False

    @staticmethod
    def _write_primitive(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _writing_mode(call, mode_index=1):
                return "bare open() in a writing mode"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "open" and _writing_mode(call, mode_index=0):
            return "Path.open() in a writing mode"
        if func.attr in ("write_text", "write_bytes"):
            return f"Path.{func.attr}()"
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("np", "numpy") and func.attr in NUMPY_WRITERS:
                return f"np.{func.attr}()"
            if base.id in DUMPERS and func.attr == "dump":
                return f"{base.id}.dump()"
        return None

    @staticmethod
    def _target_expr(call: ast.Call) -> ast.expr | None:
        func = call.func
        if isinstance(func, ast.Name):  # open(path, ...)
            return call.args[0] if call.args else None
        if isinstance(func, ast.Attribute):
            if func.attr in ("open", "write_text", "write_bytes"):
                return func.value
            # np.save(path, arr) / json.dump(obj, fp)
            if func.attr in NUMPY_WRITERS:
                return call.args[0] if call.args else None
            if func.attr == "dump":
                return call.args[1] if len(call.args) > 1 else None
        return None

    @staticmethod
    def _mentions(expr: ast.expr, names: set[str]) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id in names
            for node in ast.walk(expr)
        )
