"""RPR007: deadline propagation.

End-to-end deadlines only work if every hop forwards the remaining
budget: ``Request.deadline`` -> server budget -> ``time_cap`` ->
``time_budget`` down through engine, shard group, router, supervisor,
worker and kernel.  One hop that calls a deadline-aware callee
*without* the budget silently converts a bounded query into an
unbounded one -- the tail latency bug that fault-tolerant serving
exists to prevent.

The rule runs in two passes over the whole file set:

1. collect the names of functions/methods that declare a deadline
   parameter (``time_cap``, ``time_budget`` or ``deadline``);
2. inside every such function, flag calls to callees *of those names*
   that do not pass any deadline keyword.

Matching is by terminal callee name (``self.router.knn(...)`` matches
a deadline-aware ``knn``), which is deliberately conservative: a
dynamic-dispatch call that might reach a deadline-aware implementation
must forward the budget.  Sites where dropping the budget is the
design (e.g. bounded O(1) backends probed up front) carry a
``# repro: ignore[RPR007]`` with the reason.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    arg_names,
    iter_functions,
    terminal_name,
)

DEADLINE_PARAMS = ("time_cap", "time_budget", "deadline")


class DeadlinePropagationRule(Rule):
    rule_id = "RPR007"
    title = "deadline propagation"
    default_config: dict = {"modules": [], "params": list(DEADLINE_PARAMS)}

    def finalize(self, modules: Sequence[Module]) -> Iterable[Finding]:
        params = tuple(self.config.get("params", DEADLINE_PARAMS))
        aware: set[str] = set()
        for module in modules:
            for function in iter_functions(module.tree):
                if any(p in arg_names(function) for p in params):
                    aware.add(function.name)
        findings: list[Finding] = []
        for module in modules:
            for function in iter_functions(module.tree):
                declared = [p for p in params if p in arg_names(function)]
                if not declared:
                    continue
                findings.extend(
                    self._check_function(
                        module, function, aware, params, declared[0]
                    )
                )
        return findings

    def _check_function(
        self,
        module: Module,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        aware: set[str],
        params: tuple[str, ...],
        declared: str,
    ) -> Iterable[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            callee = terminal_name(node.func)
            if callee is None or callee not in aware:
                continue
            if any(k.arg in params for k in node.keywords):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{function.name}() accepts {declared!r} but calls "
                f"deadline-aware {callee}() without forwarding a "
                "deadline keyword; the budget dies at this hop",
            )
