"""RPR005: exception discipline.

Three checks:

* **no bare ``except:``** anywhere -- it swallows ``KeyboardInterrupt``
  and ``SystemExit`` along with the bug;
* **no silent broad catches**: a handler for ``Exception`` /
  ``BaseException`` must either re-raise or *observe* the exception
  (bind it with ``as exc`` and actually use it).  ``except Exception:
  pass`` turns crashes into wrong answers; a broad catch that records
  what it caught is a deliberate fault boundary and passes;
* **pipe errors are protocol types**: inside the configured pipe
  modules, every ``raise SomeError(...)`` must name a class defined in
  ``repro/errors.py`` (or an explicitly allowed builtin) -- the worker
  protocol maps those to wire tags; anything else arrives at the
  parent as an opaque string.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.core import Finding, Module, Rule, path_matches

BROAD = {"Exception", "BaseException"}


def _handler_types(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    names: set[str] = set()
    if node is None:
        return names
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            names.add(candidate.id)
        elif isinstance(candidate, ast.Attribute):
            names.add(candidate.attr)
    return names


class ExceptionDisciplineRule(Rule):
    rule_id = "RPR005"
    title = "exception discipline"
    default_config: dict = {
        "modules": [],
        "pipe_modules": [],
        "errors_module": "src/repro/errors.py",
        "allowed_raises": ["RuntimeError", "ValueError"],
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        "bare except: catches SystemExit and "
                        "KeyboardInterrupt; name the exception types",
                    )
                )
                continue
            broad = _handler_types(node) & BROAD
            if broad and self._is_silent(node):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"except {sorted(broad)[0]} swallows the error "
                        "without re-raising or observing it; narrow the "
                        "types or record what was caught",
                    )
                )
        return findings

    @staticmethod
    def _is_silent(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return False
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return False
        return True

    # ------------------------------------------------------------------
    def finalize(self, modules: Sequence[Module]) -> Iterable[Finding]:
        pipe_modules = self.config.get("pipe_modules", [])
        if not pipe_modules:
            return ()
        allowed = set(self.config.get("allowed_raises", []))
        errors_rel = self.config.get("errors_module", "")
        for module in modules:
            if module.rel == errors_rel:
                allowed.update(
                    node.name
                    for node in module.tree.body
                    if isinstance(node, ast.ClassDef)
                )
        findings: list[Finding] = []
        for module in modules:
            if not path_matches(module.rel, pipe_modules):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) and isinstance(
                    exc.func, ast.Name
                ):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name is not None and name not in allowed and (
                    name[:1].isupper()
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"raise {name} crosses the shard pipe "
                            "boundary; use a type from repro/errors.py "
                            "so the worker protocol can map it",
                        )
                    )
        return findings
