"""RPR001: lock discipline -- a lightweight static race detector.

For every class that owns a lock (an attribute assigned
``threading.Lock()``/``RLock()``, or any attribute named ``*_lock`` /
``*_locks``), the rule computes the set of *guarded* attributes:
attributes mutated at least once inside a ``with self._lock:`` block
(outside ``__init__``).  Any mutation of a guarded attribute that is
**not** under the lock is a finding -- the classic
"incremented under the lock here, incremented bare over there" race
that unit tests only catch probabilistically.

The dataflow is deliberately shallow but matches the codebase's
idioms:

* ``with self._lock:`` and ``with self._stats_lock:`` directly;
* lock handles bound first (``lock = self._respawn_locks.setdefault(
  shard, threading.Lock())`` ... ``with lock:``);
* attribute aliases (``s = self.stats`` ... ``s.queries += 1`` counts
  as a mutation of ``stats``);
* mutating method calls (``append``/``add``/``pop``/``update``/...),
  subscript stores, ``setattr(self.x, ...)`` and plain/augmented
  assignment.

Mutations inside ``__init__`` are construction, not contention, and
are exempt.  Nested function bodies are skipped: their execution
point (inside or outside the lock) is unknowable statically.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.core import Finding, Module, Rule

#: Call names that construct a lock.
LOCK_FACTORIES = {"Lock", "RLock"}

#: Method names that mutate their receiver in place.
MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "remove", "setdefault",
    "update",
}

#: Attribute names treated as locks by naming convention.
LOCK_NAME_SUFFIXES = ("_lock", "_locks")


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


def _self_attr(expr: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an expression to the ``self`` attribute it roots in.

    ``self.stats.queries`` -> ``stats``; ``self.workers[k]`` ->
    ``workers``; an alias name bound from ``self.X`` -> ``X``.
    """
    node = expr
    last_attr: str | None = None
    while True:
        if isinstance(node, ast.Attribute):
            last_attr = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            if node.id == "self":
                return last_attr
            alias = aliases.get(node.id)
            if alias is not None:
                return alias
            return None
        else:
            return None


class LockDisciplineRule(Rule):
    rule_id = "RPR001"
    title = "lock discipline"
    default_config: dict = {"modules": []}

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_class(
        self, module: Module, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attrs(methods)
        if not lock_attrs:
            return
        # (attr, node, locked, method) for every mutation in the class.
        mutations: list[tuple[str, ast.AST, bool, str]] = []
        for method in methods:
            aliases: dict[str, str] = {}
            lock_names: set[str] = set()
            for attr, node, locked in self._walk(
                method.body, False, lock_attrs, aliases, lock_names
            ):
                mutations.append((attr, node, locked, method.name))
        guarded = {
            attr
            for attr, _node, locked, method in mutations
            if locked and method != "__init__"
        }
        for attr, node, locked, method in mutations:
            if locked or method == "__init__" or attr not in guarded:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{cls.name}.{attr} is mutated under a lock elsewhere "
                f"but written here ({method}) without one",
            )

    def _lock_attrs(
        self, methods: list[ast.FunctionDef | ast.AsyncFunctionDef]
    ) -> set[str]:
        locks: set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and _is_self(target.value)
                    ):
                        continue
                    if target.attr.endswith(LOCK_NAME_SUFFIXES):
                        locks.add(target.attr)
                    elif any(
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, (ast.Name, ast.Attribute))
                        and (
                            sub.func.id
                            if isinstance(sub.func, ast.Name)
                            else sub.func.attr
                        )
                        in LOCK_FACTORIES
                        for sub in ast.walk(node.value)
                    ):
                        locks.add(target.attr)
        return locks

    # ------------------------------------------------------------------
    def _walk(
        self,
        stmts: list[ast.stmt],
        locked: bool,
        lock_attrs: set[str],
        aliases: dict[str, str],
        lock_names: set[str],
    ) -> Iterator[tuple[str, ast.AST, bool]]:
        """Yield ``(attr, node, locked)`` mutations, tracking locks."""
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    self._mentions_lock(
                        item.context_expr, lock_attrs, lock_names
                    )
                    for item in stmt.items
                )
                yield from self._walk(
                    stmt.body,
                    locked or takes_lock,
                    lock_attrs,
                    aliases,
                    lock_names,
                )
            elif isinstance(stmt, (ast.If, ast.While)):
                yield from self._walk(
                    stmt.body, locked, lock_attrs, aliases, lock_names
                )
                yield from self._walk(
                    stmt.orelse, locked, lock_attrs, aliases, lock_names
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._walk(
                    stmt.body, locked, lock_attrs, aliases, lock_names
                )
                yield from self._walk(
                    stmt.orelse, locked, lock_attrs, aliases, lock_names
                )
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    yield from self._walk(
                        block, locked, lock_attrs, aliases, lock_names
                    )
                for handler in stmt.handlers:
                    yield from self._walk(
                        handler.body, locked, lock_attrs, aliases, lock_names
                    )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # execution point unknowable; skip nested scopes
            else:
                self._record_bindings(
                    stmt, lock_attrs, aliases, lock_names
                )
                for attr, node in self._mutations_in(stmt, aliases):
                    yield attr, node, locked

    def _record_bindings(
        self,
        stmt: ast.stmt,
        lock_attrs: set[str],
        aliases: dict[str, str],
        lock_names: set[str],
    ) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = stmt.value
        # name = self.X  -> attribute alias
        if isinstance(value, ast.Attribute) and _is_self(value.value):
            aliases[target.id] = value.attr
        # name = <expr touching a lock attribute> -> lock handle
        if self._mentions_lock(value, lock_attrs, set()):
            lock_names.add(target.id)

    def _mentions_lock(
        self,
        expr: ast.expr,
        lock_attrs: set[str],
        lock_names: set[str],
    ) -> bool:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and _is_self(node.value)
                and node.attr in lock_attrs
            ):
                return True
            if isinstance(node, ast.Name) and node.id in lock_names:
                return True
        return False

    def _mutations_in(
        self, stmt: ast.stmt, aliases: dict[str, str]
    ) -> Iterator[tuple[str, ast.AST]]:
        if isinstance(stmt, ast.Assign):
            targets: list[ast.expr] = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            targets = []
        for target in targets:
            attr = self._mutated_attr(target, aliases)
            if attr is not None:
                yield attr, target
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATORS
            ):
                attr = _self_attr(func.value, aliases)
                if attr is not None:
                    yield attr, node
            elif (
                isinstance(func, ast.Name)
                and func.id in ("setattr", "delattr")
                and node.args
            ):
                attr = _self_attr(node.args[0], aliases)
                if attr is not None:
                    yield attr, node

    def _mutated_attr(
        self, target: ast.expr, aliases: dict[str, str]
    ) -> str | None:
        # Direct rebinding (self.x = ...) or a store through a
        # subscript/attribute chain rooted at self (self.x[k] = ...,
        # self.x.field = ..., alias.field = ...).
        if isinstance(target, ast.Attribute) and _is_self(target.value):
            return target.attr
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return _self_attr(target, aliases)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                attr = self._mutated_attr(element, aliases)
                if attr is not None:
                    return attr
        return None
