"""RPR002: protocol exhaustiveness across process boundaries.

The shard tier speaks tagged tuples over pipes (``("knn", ...)`` ->
``("ok", ...)``); the serve tier speaks :class:`Request` kinds.  A tag
added on one side without a handler arm on the other is exactly the
kind of drift that ships green (nothing statically connects the two
files) and then fails in production the first time the new tag crosses
the boundary.

The rule is configured as *channels* in ``analysis.toml``.  Each
channel names sender scopes and handler scopes (``path`` or
``path::qualname`` selectors):

* **sent tags** are the first-element string constants of tuple
  literals passed to (or assigned to names passed to) ``send``-like
  calls inside sender scopes;
* **handled tags** are string constants compared (``==``/``!=``/
  ``in``) against a tag expression inside handler scopes;
* a channel may instead declare ``kinds_from = "path::NAME"`` to read
  the tag universe from a module-level tuple of strings (the serve
  protocol's ``KINDS``).

Every sent tag (or declared kind) must be handled or listed in the
channel's ``data_tags`` (tags consumed generically, e.g. the ``ok``
payload arm).  With ``strict = true`` the reverse also holds: a
handler arm for a tag nobody sends is dead code or a typo.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    scope_nodes,
    terminal_name,
)

#: Call names that move a message across a channel.
SEND_CALLS = {"send", "request", "submit"}


def _split_selector(selector: str) -> tuple[str, str | None]:
    if "::" in selector:
        path, _, qual = selector.partition("::")
        return path, qual
    return selector, None


def _select(
    modules: Sequence[Module], selector: str
) -> list[tuple[Module, ast.AST]]:
    path, qual = _split_selector(selector)
    out: list[tuple[Module, ast.AST]] = []
    for module in modules:
        if module.rel != path:
            continue
        for node in scope_nodes(module, qual):
            out.append((module, node))
    return out


def _tuple_tag(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Tuple)
        and expr.elts
        and isinstance(expr.elts[0], ast.Constant)
        and isinstance(expr.elts[0].value, str)
    ):
        return expr.elts[0].value
    return None


class ProtocolExhaustivenessRule(Rule):
    rule_id = "RPR002"
    title = "protocol exhaustiveness"
    default_config: dict = {"channels": []}

    def finalize(self, modules: Sequence[Module]) -> Iterable[Finding]:
        findings: list[Finding] = []
        for channel in self.config.get("channels", []):
            findings.extend(self._check_channel(modules, channel))
        return findings

    # ------------------------------------------------------------------
    def _check_channel(
        self, modules: Sequence[Module], channel: dict
    ) -> Iterable[Finding]:
        name = channel.get("name", "channel")
        data_tags = set(channel.get("data_tags", []))
        sent: dict[str, tuple[Module, int]] = {}
        if "kinds_from" in channel:
            sent.update(self._declared_kinds(modules, channel["kinds_from"]))
        for selector in channel.get("senders", []):
            for module, scope in _select(modules, selector):
                for tag, line in self._sent_tags(scope):
                    sent.setdefault(tag, (module, line))
        handled: dict[str, tuple[Module, int]] = {}
        for selector in channel.get("handlers", []):
            for module, scope in _select(modules, selector):
                for tag, line in self._handled_tags(scope):
                    handled.setdefault(tag, (module, line))
        if not sent and not handled:
            return
        for tag in sorted(set(sent) - set(handled) - data_tags):
            module, line = sent[tag]
            yield self.finding(
                module,
                line,
                f"{name}: tag {tag!r} is sent but no handler arm "
                f"matches it on the receiving side",
            )
        if channel.get("strict", False):
            for tag in sorted(set(handled) - set(sent) - data_tags):
                module, line = handled[tag]
                yield self.finding(
                    module,
                    line,
                    f"{name}: handler arm for {tag!r} matches a tag "
                    f"nobody sends (dead arm or typo)",
                )

    def _declared_kinds(
        self, modules: Sequence[Module], selector: str
    ) -> dict[str, tuple[Module, int]]:
        path, varname = _split_selector(selector)
        kinds: dict[str, tuple[Module, int]] = {}
        for module in modules:
            if module.rel != path:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == varname
                    for t in node.targets
                ):
                    continue
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            kinds[element.value] = (module, node.lineno)
        return kinds

    # ------------------------------------------------------------------
    def _sent_tags(self, scope: ast.AST) -> list[tuple[str, int]]:
        tagged_names: dict[str, tuple[str, int]] = {}
        tags: list[tuple[str, int]] = []
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                tag = _tuple_tag(node.value)
                if isinstance(target, ast.Name) and tag is not None:
                    tagged_names[target.id] = (tag, node.value.lineno)
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) not in SEND_CALLS:
                continue
            for arg in node.args:
                tag = _tuple_tag(arg)
                if tag is not None:
                    tags.append((tag, arg.lineno))
                elif isinstance(arg, ast.Name) and arg.id in tagged_names:
                    tags.append(tagged_names[arg.id])
        return tags

    def _handled_tags(self, scope: ast.AST) -> list[tuple[str, int]]:
        tags: list[tuple[str, int]] = []
        for node in ast.walk(scope):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            constants = [
                s.value
                for s in sides
                if isinstance(s, ast.Constant) and isinstance(s.value, str)
            ]
            # Membership tests against literal tag collections:
            # ``kind in ("a", "b")``.
            for op, comparator in zip(node.ops, node.comparators, strict=True):
                if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                    comparator, (ast.Tuple, ast.List, ast.Set)
                ):
                    constants.extend(
                        e.value
                        for e in comparator.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                    )
            if not constants:
                continue
            if any(self._is_tag_expr(s) for s in sides):
                tags.extend((value, node.lineno) for value in constants)
        return tags

    @staticmethod
    def _is_tag_expr(expr: ast.expr) -> bool:
        """Heuristic: does this expression read a message tag?

        Matches ``x[0]`` subscripts, plain names / attributes called
        ``kind`` or ``tag``, and nothing else -- so unrelated string
        comparisons in handler scopes stay out of the tag universe.
        """
        if isinstance(expr, ast.Subscript):
            index = expr.slice
            return (
                isinstance(index, ast.Constant) and index.value == 0
            )
        if isinstance(expr, ast.Name):
            return expr.id in ("kind", "tag")
        if isinstance(expr, ast.Attribute):
            return expr.attr in ("kind", "tag")
        return False
