"""RPR004: counted-op purity of the search kernels.

The reproduction's benchmark unit is *counted operations*
(``QueryStats``), precisely so results are machine-independent; wall
clock is only ever a supplementary reading taken through sanctioned
hooks.  A stray ``time.time()`` / ``perf_counter()`` inside a kernel
is how "counted ops" quietly turns back into "seconds on my laptop" --
and how a kernel picks up syscall overhead per queue operation.

Inside the configured kernel modules this rule flags any import of
``time`` / ``datetime`` and any use of their members.  Kernels that
legitimately need a clock (deadline checks, the ``elapsed`` stat)
import the sanctioned alias -- ``repro.query.stats.counted_clock`` --
whose single definition site keeps the exception auditable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, Module, Rule, path_matches

BANNED_MODULES = {"time", "datetime"}


class CountedOpPurityRule(Rule):
    rule_id = "RPR004"
    title = "counted-op purity"
    default_config: dict = {
        "kernels": [],
        "sanctioned": ["counted_clock"],
    }

    def applies(self, module: Module) -> bool:
        # Inert unless kernels are configured: this rule is a
        # whitelist of hot-path modules, not a repo-wide ban.
        return path_matches(module.rel, self.config.get("kernels", []))

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        clock_names: set[str] = set()
        sanctioned = set(self.config.get("sanctioned", []))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"wall-clock module {alias.name!r} imported "
                                "in a counted kernel; use "
                                "repro.query.stats.counted_clock",
                            )
                        )
                        clock_names.add(alias.asname or root)
            elif isinstance(node, ast.ImportFrom) and (
                (node.module or "").split(".")[0] in BANNED_MODULES
            ):
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name in sanctioned:
                        continue
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"wall-clock symbol {alias.name!r} imported "
                            "in a counted kernel; use "
                            "repro.query.stats.counted_clock",
                        )
                    )
                    clock_names.add(name)
        if not clock_names:
            return findings
        import_lines = {f.line for f in findings}
        for node in ast.walk(module.tree):
            # Matching only Name loads covers both `perf_counter()` and
            # `time.time()` (whose base `time` is a Name load) exactly
            # once per use site.
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in clock_names
            ):
                if node.lineno in import_lines:
                    continue
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        "wall-clock call in a counted kernel; route "
                        "timing through repro.query.stats.counted_clock",
                    )
                )
        return findings
