"""RPR006: tracing must stay a no-op when disabled.

Invariant 4 (ARCHITECTURE.md): tracing never changes answers.  The
mechanism is structural -- every function that accepts a ``trace``
takes either a real :class:`~repro.obs.trace.Trace` or the shared
``NULL_TRACE``, and span handles are either real ``Span`` objects or
``NULL_SPAN``.  The invariant therefore reduces to two checkable
facts:

* any method invoked on a ``trace`` parameter (or on a span bound
  from ``trace.span(...)`` / ``trace.begin(...)``) must exist on the
  null classes -- otherwise the first untraced request raises
  ``AttributeError`` in production while every traced test passes;
* the inner-loop modules (search kernels) must not import
  ``repro.obs`` at all -- the hot path's observability rides on the
  stats objects, keeping the kernels import-light and the no-op cost
  literally zero.

The null API is parsed from ``repro/obs/trace.py`` itself (methods
plus class-level attributes of ``NullTrace``/``NullSpan``), so the
rule tracks the real surface instead of a hand-copied list.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    arg_names,
    iter_functions,
    path_matches,
)

#: Fallback API surfaces, used only if the trace module is not part of
#: the analyzed file set (e.g. fixture runs in the rule tests).
FALLBACK_TRACE_API = {
    "span", "begin", "adopt", "finish", "enabled", "trace_id", "labels",
}
FALLBACK_SPAN_API = {
    "close", "count", "add_stats", "annotate", "name",
}

SPAN_FACTORIES = ("span", "begin")


def _class_api(cls: ast.ClassDef) -> set[str]:
    api: set[str] = set()
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            api.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    api.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            api.add(node.target.id)
    return api


class TracingNoOpRule(Rule):
    rule_id = "RPR006"
    title = "tracing no-op safety"
    default_config: dict = {
        "modules": [],
        "inner_loop": [],
        "trace_module": "src/repro/obs/trace.py",
        "obs_package": "repro.obs",
        "obs_paths": ["src/repro/obs"],
    }

    def finalize(self, modules: Sequence[Module]) -> Iterable[Finding]:
        trace_api = set(FALLBACK_TRACE_API)
        span_api = set(FALLBACK_SPAN_API)
        trace_rel = self.config.get("trace_module", "")
        for module in modules:
            if module.rel != trace_rel:
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    if node.name == "NullTrace":
                        trace_api = _class_api(node) | {"enabled"}
                    elif node.name == "NullSpan":
                        span_api = _class_api(node)
        findings: list[Finding] = []
        obs_paths = self.config.get("obs_paths", [])
        inner = self.config.get("inner_loop", [])
        for module in modules:
            if path_matches(module.rel, obs_paths):
                continue
            if path_matches(module.rel, inner):
                findings.extend(self._check_imports(module))
            findings.extend(
                self._check_call_sites(module, trace_api, span_api)
            )
        return findings

    # ------------------------------------------------------------------
    def _check_imports(self, module: Module) -> Iterable[Finding]:
        obs = self.config.get("obs_package", "repro.obs")
        for node in ast.walk(module.tree):
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                targets = [node.module or ""]
            for target in targets:
                if target == obs or target.startswith(obs + "."):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"inner-loop module imports {target}; the hot "
                        "path must not depend on the observability "
                        "layer (stats objects carry its counters out)",
                    )

    def _check_call_sites(
        self, module: Module, trace_api: set[str], span_api: set[str]
    ) -> Iterable[Finding]:
        for function in iter_functions(module.tree):
            if "trace" not in arg_names(function):
                continue
            span_vars = self._span_vars(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.value, ast.Name):
                    continue
                base = node.value.id
                if base == "trace" and node.attr not in trace_api:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"trace.{node.attr} is not part of the NullTrace "
                        "surface; an untraced request (NULL_TRACE) would "
                        "raise AttributeError here",
                    )
                elif base in span_vars and node.attr not in span_api:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{base}.{node.attr} is not part of the NullSpan "
                        "surface; an untraced request (NULL_SPAN) would "
                        "raise AttributeError here",
                    )

    @staticmethod
    def _span_vars(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        names: set[str] = set()

        def from_trace_factory(expr: ast.expr) -> bool:
            return (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id == "trace"
                and expr.func.attr in SPAN_FACTORIES
            )

        for node in ast.walk(function):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if from_trace_factory(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if from_trace_factory(node.value) and isinstance(
                    target, ast.Name
                ):
                    names.add(target.id)
        return names
