"""The ``repro check`` entry point: discover config, run rules, render.

Exit status is the contract CI relies on: 0 when every finding is
suppressed (with justification) or there are none; 1 the moment one
unsuppressed finding exists.  ``--json`` emits a machine-readable
report (``{"findings": [...], "summary": {...}}``) for the
static-analysis CI job and for tooling that wants to diff runs.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Sequence
from typing import TextIO

from repro.analysis.core import RULE_ID_RE, AnalysisConfig, Analyzer, Finding
from repro.analysis.rules import ALL_RULES, make_rules


def _render_text(findings: list[Finding], out: TextIO) -> None:
    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for finding in unsuppressed:
        out.write(f"{finding.location}: {finding.rule} {finding.message}\n")
    if unsuppressed:
        out.write("\n")
    out.write(
        f"repro check: {len(unsuppressed)} finding(s), "
        f"{len(suppressed)} suppressed\n"
    )


def _render_json(findings: list[Finding], out: TextIO) -> None:
    unsuppressed = sum(1 for f in findings if not f.suppressed)
    report = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "suppressed": len(findings) - unsuppressed,
            "unsuppressed": unsuppressed,
        },
    }
    out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")


def run_check(
    paths: Sequence[str] | None = None,
    rule_ids: Sequence[str] | None = None,
    as_json: bool = False,
    config_path: str | None = None,
    list_rules: bool = False,
    out: TextIO | None = None,
) -> int:
    """Run the analyzer; returns the process exit status."""
    out = out or sys.stdout
    if list_rules:
        for cls in ALL_RULES:
            out.write(f"{cls.rule_id}  {cls.title}\n")
        return 0
    for rule_id in rule_ids or ():
        if not RULE_ID_RE.match(rule_id):
            out.write(f"repro check: unknown rule id {rule_id!r}\n")
            return 2
    if config_path is not None:
        config = AnalysisConfig.load(config_path)
    else:
        config = AnalysisConfig.discover()
    analyzer = Analyzer(config, make_rules(config))
    findings = analyzer.run(paths=paths or None, rule_ids=rule_ids)
    if as_json:
        _render_json(findings, out)
    else:
        _render_text(findings, out)
    return 1 if any(not f.suppressed for f in findings) else 0
