"""Baseline all-pairs storage schemes from the paper's Table (p.11).

These are the rows SILC is compared against:

* :class:`ExplicitPathStorage` -- every shortest path materialized,
  O(N^3) space, O(1) per path link;
* :class:`NextHopMatrix` -- the classic next-hop (routing-table)
  matrix, O(N^2) space, O(k) path retrieval;
* Dijkstra with no precomputation is the third row, provided by
  :mod:`repro.network.dijkstra`.
"""

from repro.baselines.explicit import ExplicitPathStorage
from repro.baselines.next_hop import NextHopMatrix

__all__ = ["ExplicitPathStorage", "NextHopMatrix"]
