"""The O(N^3) explicit path storage baseline.

Materializes the full vertex sequence of every shortest path.  Only
feasible for the small networks of the Table-1 measurement -- which is
the paper's point: at 24M vertices this representation is physically
impossible, motivating everything else in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.next_hop import NextHopMatrix
from repro.network.graph import SpatialNetwork


class ExplicitPathStorage:
    """All shortest paths stored as explicit vertex lists."""

    def __init__(
        self,
        network: SpatialNetwork,
        paths: dict[tuple[int, int], tuple[int, ...]],
        dist: np.ndarray,
    ) -> None:
        self.network = network
        self.paths = paths
        self.dist = dist

    @classmethod
    def build(cls, network: SpatialNetwork, max_vertices: int = 1500) -> ExplicitPathStorage:
        """Materialize every path (guarded against oversized inputs).

        ``max_vertices`` protects interactive use: the structure is
        cubic and must stay a measurement-only artifact.
        """
        n = network.num_vertices
        if n > max_vertices:
            raise ValueError(
                f"explicit path storage is O(N^3); refusing n={n} > "
                f"max_vertices={max_vertices}"
            )
        hops = NextHopMatrix.build(network)
        paths: dict[tuple[int, int], tuple[int, ...]] = {}
        for s in range(n):
            for t in range(n):
                if s == t:
                    continue
                paths[(s, t)] = tuple(hops.path(s, t))
        return cls(network, paths, hops.dist)

    def path(self, source: int, target: int) -> list[int]:
        """O(1) lookup of the stored path."""
        if source == target:
            return [source]
        return list(self.paths[(source, target)])

    def distance(self, source: int, target: int) -> float:
        return float(self.dist[source, target])

    def storage_bytes(self, bytes_per_vertex_id: int = 4) -> int:
        """Total path-vertex storage (the paper's O(N^3) row)."""
        return sum(len(p) for p in self.paths.values()) * bytes_per_vertex_id
