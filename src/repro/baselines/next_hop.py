"""The O(N^2) next-hop matrix baseline.

Stores, for every ordered vertex pair, the first hop of the shortest
path -- the scheme SILC compresses by exploiting the spatial coherence
of equal-hop destinations.  Kept dense (one int32 per pair) so the
storage comparison of the paper's Table (p.11) can be measured rather
than asserted.
"""

from __future__ import annotations

import numpy as np

from repro.network.allpairs import all_pairs_rows
from repro.network.errors import PathNotFound
from repro.network.graph import SpatialNetwork


class NextHopMatrix:
    """Dense all-pairs first-hop matrix with exact distances."""

    def __init__(self, network: SpatialNetwork, first_hops: np.ndarray, dist: np.ndarray) -> None:
        self.network = network
        self.first_hops = first_hops
        self.dist = dist

    @classmethod
    def build(cls, network: SpatialNetwork, chunk_size: int = 128) -> NextHopMatrix:
        network.require_strongly_connected()
        n = network.num_vertices
        first = np.empty((n, n), dtype=np.int32)
        dist = np.empty((n, n), dtype=np.float64)
        for source, drow, frow in all_pairs_rows(network, chunk_size=chunk_size):
            first[source] = frow
            dist[source] = drow
        return cls(network, first, dist)

    def next_hop(self, source: int, target: int) -> int:
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        hop = int(self.first_hops[source, target])
        if hop < 0:
            raise PathNotFound(source, target)
        return hop

    def path(self, source: int, target: int) -> list[int]:
        """Path retrieval in O(path length) matrix probes."""
        path = [source]
        guard = self.network.num_vertices
        while path[-1] != target:
            path.append(self.next_hop(path[-1], target))
            if len(path) > guard:
                raise RuntimeError("inconsistent next-hop matrix")
        return path

    def distance(self, source: int, target: int) -> float:
        """O(1) distance lookup."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        return float(self.dist[source, target])

    def storage_bytes(self) -> int:
        """Bytes for the hop matrix alone (the paper's O(N^2) row)."""
        return self.first_hops.nbytes
