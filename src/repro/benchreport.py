"""Persistent benchmark trajectories behind ``repro bench-report``.

Two append-only history files under ``benchmarks/results/``:

**Build times** (``build_times.txt``): every fresh benchmark index
build appends one line (see :func:`append_build_time`)::

    2026-07-29T14:30:10 n=3000 seed=42 workers=1 chunk_size=256 shards=1 oracle=silc seconds=5.162

Older lines predate the ``chunk_size``, ``shards`` and ``oracle``
fields and parse with those set to ``None``.  ``shards`` records the
spatial shard count of sharded-serving runs, and ``oracle`` which
precompute the timing measures (``silc`` quadtrees vs ``labels``
pruned-landmark labelling), so each accumulates its own trajectory
rows instead of overwriting the ``workers`` history.  This module
parses the accumulated history and renders the per-configuration
trajectory table behind the ``repro bench-report`` CLI subcommand --
the ROADMAP's "track the precompute cost from PR to PR without
re-running old revisions" item.

**Serve latencies** (``serve_latency.txt``): ``repro trace-report
--record`` appends the request-level percentiles of a traced serving
run (see :func:`append_serve_latency`)::

    2026-08-07T09:12:44 requests=64 shards=2 p50=0.0021 p95=0.0054 p99=0.0080

Percentiles are in seconds.  This is the trajectory the CI
p95-regression gate (``tools/check_serve_regression.py``) compares
fresh runs against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from statistics import median

from repro.integrity import append_record

#: Default history file, anchored to the source tree (two levels above
#: this module: src/repro/ -> repo root), so ``repro bench-report``
#: finds it from any working directory.
DEFAULT_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "results" / "build_times.txt"
)

#: Default serving-latency trajectory (same anchoring as DEFAULT_PATH).
SERVE_LATENCY_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "results" / "serve_latency.txt"
)


@dataclass(frozen=True)
class BuildRecord:
    """One appended build timing."""

    stamp: str
    n: int
    seed: int
    workers: int
    seconds: float
    chunk_size: int | None = None
    #: Spatial shard processes of the recorded run (None on legacy
    #: lines that predate the field; 1 means unsharded).
    shards: int | None = None
    #: Which precompute was timed (None on legacy lines; "silc" is
    #: the quadtree build, "labels" the pruned-landmark labelling).
    oracle: str | None = None


def append_build_time(
    n: int,
    seed: int,
    workers: int,
    chunk_size: int,
    seconds: float,
    path: str | Path = DEFAULT_PATH,
    shards: int = 1,
    oracle: str = "silc",
) -> None:
    """Append one build timing line to the (append-only) history file.

    Shared by the benchmark fixtures and ``repro build --record``, so
    the trajectory accumulates from both suites and operational builds
    without re-running old revisions.  ``shards`` tags runs of the
    sharded serving tier (1 = unsharded) and ``oracle`` names the
    precompute that was timed, so each lands in its own trajectory
    rows.
    """
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    append_record(
        path,
        f"{stamp} n={n} seed={seed} workers={workers} "
        f"chunk_size={chunk_size} shards={shards} oracle={oracle} "
        f"seconds={seconds:.3f}",
    )


def parse_build_times(text: str) -> list[BuildRecord]:
    """Parse the history file's lines, skipping blanks and comments.

    Raises ``ValueError`` naming the offending line on malformed input
    (a truncated write should be loud, not silently dropped).
    """
    records: list[BuildRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            stamp = parts[0]
            fields = dict(p.split("=", 1) for p in parts[1:])
            chunk = fields.get("chunk_size")
            shards = fields.get("shards")
            records.append(
                BuildRecord(
                    stamp=stamp,
                    n=int(fields["n"]),
                    seed=int(fields["seed"]),
                    workers=int(fields["workers"]),
                    seconds=float(fields["seconds"]),
                    chunk_size=None if chunk is None else int(chunk),
                    shards=None if shards is None else int(shards),
                    oracle=fields.get("oracle"),
                )
            )
        except (IndexError, KeyError, ValueError) as exc:
            raise ValueError(f"bad build-times line {lineno}: {line!r}") from exc
    return records


def format_report(records: list[BuildRecord]) -> str:
    """The trajectory: one row per (n, workers, chunk, shards, oracle).

    ``first``/``latest`` are in file order (the file is append-only,
    so file order is trajectory order); ``best``/``median`` summarize
    the whole history of that configuration.  Lines predating the
    ``chunk_size``, ``shards`` or ``oracle`` fields render a ``-`` in
    those columns.
    """
    if not records:
        return "no build timings recorded yet"
    groups: dict[tuple[int, int, int, int, str], list[BuildRecord]] = {}
    for r in records:
        key = (
            r.n,
            r.workers,
            -1 if r.chunk_size is None else r.chunk_size,
            -1 if r.shards is None else r.shards,
            "-" if r.oracle is None else r.oracle,
        )
        groups.setdefault(key, []).append(r)
    header = (
        "n", "workers", "chunk", "shards", "oracle",
        "builds", "first_s", "latest_s", "best_s", "median_s",
    )
    rows = []
    for (n, workers, chunk, shards, oracle), rs in sorted(groups.items()):
        secs = [r.seconds for r in rs]
        rows.append(
            (
                str(n),
                str(workers),
                "-" if chunk < 0 else str(chunk),
                "-" if shards < 0 else str(shards),
                oracle,
                str(len(rs)),
                f"{secs[0]:.3f}",
                f"{secs[-1]:.3f}",
                f"{min(secs):.3f}",
                f"{median(secs):.3f}",
            )
        )
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths, strict=True))]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths, strict=True)))
    span = f"{records[0].stamp} .. {records[-1].stamp}"
    lines.append(f"({len(records)} builds, {span})")
    return "\n".join(lines)


def report_file(path: str | Path) -> str:
    """Parse + format one history file (the CLI entry point)."""
    path = Path(path)
    if not path.exists():
        return f"no build-times history at {path}"
    return format_report(parse_build_times(path.read_text()))


# ----------------------------------------------------------------------
# The serving-latency trajectory (fed by `repro trace-report --record`)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServeLatencyRecord:
    """One recorded serving run's request-latency percentiles (seconds)."""

    stamp: str
    requests: int
    shards: int
    p50: float
    p95: float
    p99: float


def append_serve_latency(
    requests: int,
    shards: int,
    p50: float,
    p95: float,
    p99: float,
    path: str | Path = SERVE_LATENCY_PATH,
) -> None:
    """Append one serving run's percentiles to the latency trajectory."""
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    append_record(
        path,
        f"{stamp} requests={requests} shards={shards} "
        f"p50={p50:.6f} p95={p95:.6f} p99={p99:.6f}",
    )


def parse_serve_latency(text: str) -> list[ServeLatencyRecord]:
    """Parse the latency trajectory; malformed lines raise, named."""
    records: list[ServeLatencyRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            stamp = parts[0]
            fields = dict(p.split("=", 1) for p in parts[1:])
            records.append(
                ServeLatencyRecord(
                    stamp=stamp,
                    requests=int(fields["requests"]),
                    shards=int(fields["shards"]),
                    p50=float(fields["p50"]),
                    p95=float(fields["p95"]),
                    p99=float(fields["p99"]),
                )
            )
        except (IndexError, KeyError, ValueError) as exc:
            raise ValueError(
                f"bad serve-latency line {lineno}: {line!r}"
            ) from exc
    return records


def format_serve_report(records: list[ServeLatencyRecord]) -> str:
    """The latency trajectory, grouped by shard count, milliseconds."""
    if not records:
        return "no serve latencies recorded yet"
    groups: dict[int, list[ServeLatencyRecord]] = {}
    for r in records:
        groups.setdefault(r.shards, []).append(r)
    header = (
        "shards", "runs", "first_p95_ms", "latest_p95_ms",
        "best_p95_ms", "median_p95_ms", "latest_p50_ms", "latest_p99_ms",
    )
    rows = []
    for shards, rs in sorted(groups.items()):
        p95s = [r.p95 for r in rs]
        rows.append(
            (
                str(shards),
                str(len(rs)),
                f"{p95s[0] * 1e3:.2f}",
                f"{p95s[-1] * 1e3:.2f}",
                f"{min(p95s) * 1e3:.2f}",
                f"{median(p95s) * 1e3:.2f}",
                f"{rs[-1].p50 * 1e3:.2f}",
                f"{rs[-1].p99 * 1e3:.2f}",
            )
        )
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths, strict=True))]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths, strict=True)))
    span = f"{records[0].stamp} .. {records[-1].stamp}"
    lines.append(f"({len(records)} runs, {span})")
    return "\n".join(lines)


def serve_report_file(path: str | Path) -> str:
    """Parse + format one latency trajectory file."""
    path = Path(path)
    if not path.exists():
        return f"no serve-latency history at {path}"
    return format_serve_report(parse_serve_latency(path.read_text()))
