"""Command-line interface for the SILC toolkit.

A small operational surface so the library can be driven without
writing Python -- generate networks, run the precompute, persist the
index, and answer queries from the shell::

    python -m repro generate --kind road --size 1000 --seed 7 net.txt
    python -m repro build net.txt index.dir --workers 0
    python -m repro build-labels net.txt index.dir
    python -m repro stats net.txt index.dir
    python -m repro path net.txt index.dir 0 250
    python -m repro knn net.txt index.dir --query 0 --k 5 --objects 40
    python -m repro serve net.txt index.dir --objects 40 < requests.jsonl
    python -m repro bench-report

``build --workers`` fans the per-source precompute across a process
pool (0 = one worker per CPU; chunk results travel through shared
memory, not pickle); ``build-labels`` adds the pruned-landmark
labelling backend (columns in ``<index>/labels/``, plus a calibrated
planner cost model); ``knn`` accepts ``--query`` repeatedly and
answers the whole batch through one :class:`~repro.engine.QueryEngine`
(``--oracle`` picks the backend, ``--epsilon`` relaxes to
(1+eps)-approximate answers); ``serve`` runs the asyncio serving
layer as a stdin/stdout JSON-lines loop (one request object per line;
see :mod:`repro.serve.protocol`) -- with ``--trace-file`` it writes
one JSON-lines trace per request (``--slow-log`` tees the span trees
of requests over ``--slow-threshold-ms`` to their own file), and a
``{"kind": "stats"}`` request answers with the unified metrics
registry; ``trace-report`` aggregates a trace file into the per-stage
latency/counted-op breakdown (``--record`` appends the run's request
percentiles to the serving-latency trajectory ``bench-report`` prints
and CI regression-gates).

Index paths ending in ``.npz`` use the compressed archive layout; any
other path is a *directory* of raw ``.npy`` columns, which the query
commands can open zero-copy with ``--mmap`` (and which is the layout
that can carry the labelling columns alongside the quadtree store).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

from repro.benchreport import DEFAULT_PATH as BUILD_TIMES_PATH
from repro.benchreport import SERVE_LATENCY_PATH, append_build_time, report_file
from repro.datasets import random_vertex_objects
from repro.engine import QueryEngine
from repro.network import (
    grid_network,
    load_text,
    random_planar_network,
    road_like_network,
    save_text,
)
from repro.objects import ObjectIndex
from repro.oracle import (
    LABELS_SUBDIR,
    ORACLE_CHOICES,
    CostConstants,
    PrunedLabellingOracle,
    QueryPlanner,
)
from repro.silc import SILCIndex


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "road":
        net = road_like_network(args.size, seed=args.seed)
    elif args.kind == "grid":
        side = max(2, int(round(args.size**0.5)))
        net = grid_network(side, side, jitter=0.2, weight_noise=0.2, seed=args.seed)
    else:
        net = random_planar_network(args.size, seed=args.seed)
    save_text(net, args.network)
    print(
        f"wrote {args.kind} network: {net.num_vertices} vertices, "
        f"{net.num_edges} edges -> {args.network}"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    net = load_text(args.network)
    t0 = time.perf_counter()
    last_report = [0.0]

    def progress(done: int, total: int) -> None:
        now = time.perf_counter()
        if now - last_report[0] >= 2.0 or done == total:
            last_report[0] = now
            print(f"  {done}/{total} sources", file=sys.stderr)

    index = SILCIndex.build(
        net,
        chunk_size=args.chunk_size,
        progress=progress,
        workers=args.workers,
        transport=args.transport,
    )
    dt = time.perf_counter() - t0
    t_save = time.perf_counter()
    index.save(args.index)
    t_save = time.perf_counter() - t_save
    print(
        f"built SILC index in {dt:.1f}s (+{t_save:.1f}s save): "
        f"{index.total_blocks()} Morton blocks "
        f"({index.storage_bytes() / 1024:.0f} KiB) -> {args.index}"
    )
    from repro.silc import parallel as _parallel

    stats = _parallel.last_build_stats
    if stats is not None and stats.chunks:
        print(
            f"  transport={stats.transport}: "
            f"{stats.result_pickle_bytes} B through pickle, "
            f"{stats.shared_bytes} B through shared memory "
            f"({stats.chunks} chunks)"
        )
    if args.record:
        append_build_time(
            net.num_vertices, args.record_seed, args.workers,
            args.chunk_size, dt, path=args.record_path,
        )
        print(f"  recorded build time -> {args.record_path}")
    return 0


def _labels_dir(index_path) -> Path | None:
    """Where a directory-layout index keeps its labelling (None for .npz)."""
    path = Path(index_path)
    if path.suffix == ".npz":
        return None
    return path / LABELS_SUBDIR


def _load_labelling(args, net):
    """Resolve ``--oracle`` to a (labelling, cost constants) pair.

    * saved labelling next to the index -> load it (``--mmap`` maps
      the columns) together with any persisted cost model -- whatever
      the default oracle, so serve requests can override per query;
    * ``--oracle labels`` without one -> build in memory, with a
      note that ``repro build-labels`` would persist the work;
    * otherwise -> nothing to load; ``auto`` without a labelling
      plans over the remaining backends.
    """
    labels_dir = _labels_dir(args.index)
    if labels_dir is not None and PrunedLabellingOracle.saved_at(labels_dir):
        labelling = PrunedLabellingOracle.load(labels_dir, net, mmap=args.mmap)
        return labelling, CostConstants.load(labels_dir)
    if args.oracle == "labels":
        print(
            "no saved labelling next to the index; building in memory "
            "(run `repro build-labels` to persist it)",
            file=sys.stderr,
        )
        return PrunedLabellingOracle.build(net), None
    return None, None


def _cmd_build_labels(args: argparse.Namespace) -> int:
    net = load_text(args.network)
    labels_dir = _labels_dir(args.index)
    if labels_dir is None:
        print(
            "build-labels needs a directory-layout index: .npz archives "
            "cannot carry the labelling columns (rebuild the index with a "
            "non-.npz path)",
            file=sys.stderr,
        )
        return 2
    last_report = [0.0]

    def progress(done: int, total: int) -> None:
        now = time.perf_counter()
        if now - last_report[0] >= 2.0 or done == total:
            last_report[0] = now
            print(f"  {done}/{total} hubs", file=sys.stderr)

    labelling = PrunedLabellingOracle.build(net, progress=progress)
    labelling.save(labels_dir)
    bs = labelling.build_stats
    print(
        f"built pruned-landmark labelling in {bs.build_seconds:.1f}s: "
        f"{bs.entries_out + bs.entries_in} entries "
        f"({labelling.mean_label_size():.1f}/vertex out+in) -> {labels_dir}"
    )
    if args.skip_calibration:
        return 0
    index = SILCIndex.load(args.index, net, mmap=args.mmap)
    objects = random_vertex_objects(net, count=args.objects, seed=args.seed)
    object_index = ObjectIndex(net, objects, index.embedding)
    engine = QueryEngine(
        index, object_index,
        cache_fraction=args.cache_fraction,
        labelling=labelling,
    )
    planner = engine.ensure_planner()
    planner.constants.save(labels_dir)
    print(f"calibrated planner cost model -> {labels_dir}")
    for k in (1, 4, 16):
        print(f"  {planner.explain(k)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    net = load_text(args.network)
    index = SILCIndex.load(args.index, net, mmap=args.mmap)
    per_vertex = index.blocks_per_vertex()
    print(f"vertices:        {net.num_vertices}")
    print(f"edges:           {net.num_edges}")
    print(f"morton blocks:   {index.total_blocks()}")
    print(f"blocks/vertex:   {per_vertex.mean():.1f} "
          f"(min {per_vertex.min()}, max {per_vertex.max()})")
    print(f"storage (16 B):  {index.storage_bytes() / 1024:.0f} KiB")
    print(f"grid order:      {index.embedding.order}")
    n = net.num_vertices
    print(f"blocks/N^1.5:    {index.total_blocks() / n**1.5:.2f}")
    return 0


def _cmd_path(args: argparse.Namespace) -> int:
    net = load_text(args.network)
    index = SILCIndex.load(args.index, net, mmap=args.mmap)
    path = index.path(args.source, args.target)
    dist = index.distance(args.source, args.target)
    print(" -> ".join(map(str, path)))
    print(f"network distance: {dist:.6g} ({len(path) - 1} links)")
    return 0


def _cmd_knn(args: argparse.Namespace) -> int:
    net = load_text(args.network)
    index = SILCIndex.load(args.index, net, mmap=args.mmap)
    objects = random_vertex_objects(net, count=args.objects, seed=args.seed)
    object_index = ObjectIndex(net, objects, index.embedding)
    labelling, constants = _load_labelling(args, net)
    engine = QueryEngine(
        index, object_index, labelling=labelling, oracle=args.oracle
    )
    if constants is not None:
        engine.planner = QueryPlanner(
            engine.oracles, constants=constants, storage=engine.storage
        )
    batch = engine.knn_batch(
        args.query, args.k, exact=True, epsilon=args.epsilon
    )
    for query, result in zip(args.query, batch.results, strict=True):
        if len(args.query) > 1:
            print(f"query vertex {query}:")
        for rank, n in enumerate(result.neighbors, start=1):
            vertex = objects[n.oid].position.vertex
            # best_estimate == the exact distance everywhere except the
            # --epsilon path, whose neighbors keep their intervals.
            print(f"#{rank}  object {n.oid}  vertex {vertex}  "
                  f"distance {n.best_estimate:.6g}")
    stats = batch.stats
    counters = [f"{stats.refinements} refinements"]
    if stats.label_scans:
        counters.append(f"{stats.label_scans} label scans")
    if stats.settled:
        counters.append(f"{stats.settled} settled")
    print(
        f"({', '.join(counters)}, "
        f"peak queue {max(r.stats.max_queue for r in batch.results)})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        AdmissionController,
        AsyncEngine,
        FairScheduler,
        SILCServer,
        serve_jsonl,
    )

    net = load_text(args.network)
    index = SILCIndex.load(args.index, net, mmap=args.mmap)
    objects = random_vertex_objects(net, count=args.objects, seed=args.seed)
    object_index = ObjectIndex(net, objects, index.embedding)
    labelling, constants = _load_labelling(args, net)
    engine = QueryEngine(
        index,
        object_index,
        cache_fraction=args.cache_fraction,
        max_locations=args.max_locations,
        labelling=labelling,
        oracle=args.oracle,
    )
    if constants is not None:
        engine.planner = QueryPlanner(
            engine.oracles, constants=constants, storage=engine.storage
        )

    tracer = None
    sinks = []
    if args.trace_file or args.slow_log:
        from repro.obs import JsonlTraceSink, SlowQueryLog, Tracer

        trace_sink = None
        if args.trace_file:
            trace_sink = JsonlTraceSink(args.trace_file)
            sinks.append(trace_sink)
        slow_log = None
        if args.slow_log:
            slow_sink = JsonlTraceSink(args.slow_log)
            sinks.append(slow_sink)
            slow_log = SlowQueryLog(
                args.slow_threshold_ms / 1000.0, sink=slow_sink
            )
        tracer = Tracer(sink=trace_sink, slow_log=slow_log)

    fault_injector = None
    if getattr(args, "inject_kill", None):
        from repro.faults import FaultInjector

        fault_injector = FaultInjector()
        for spec in args.inject_kill:
            try:
                shard_text, nth_text = spec.split(":", 1)
                fault_injector.kill_worker_at(int(shard_text), int(nth_text))
            except ValueError:
                print(
                    f"bad --inject-kill {spec!r}: expected SHARD:N "
                    "(e.g. 0:3 kills shard 0's worker before its 3rd "
                    "request)",
                    file=sys.stderr,
                )
                return 2
        if args.shards < 2:
            print(
                "--inject-kill needs the shard tier (--shards > 1)",
                file=sys.stderr,
            )
            return 2

    async def run() -> int:
        async with AsyncEngine(
            engine, max_workers=args.workers, shards=args.shards,
            on_shard_failure=args.on_shard_failure,
            max_retries=args.max_retries,
            fault_injector=fault_injector,
        ) as async_engine:
            server = SILCServer(
                async_engine,
                scheduler=FairScheduler(chunk_size=args.chunk_size),
                admission=AdmissionController(
                    max_in_flight=args.max_in_flight,
                    rate=args.rate,
                    burst=args.burst,
                ),
                tracer=tracer,
            )
            # noqa'd: closed in the finally below; a context manager
            # cannot wrap the conditional stdin case.
            in_stream = open(args.input) if args.input else sys.stdin  # noqa: SIM115
            try:
                snapshot = await serve_jsonl(server, in_stream, sys.stdout)
            finally:
                if args.input:
                    in_stream.close()
        print(snapshot.format(), file=sys.stderr)
        if tracer is not None:
            extras = [f"{tracer.finished} traces"]
            if args.trace_file:
                extras.append(f"-> {args.trace_file}")
            if tracer.slow_log is not None:
                extras.append(
                    f"({tracer.slow_log.captured} over "
                    f"{args.slow_threshold_ms:.0f} ms -> {args.slow_log})"
                )
            print(" ".join(extras), file=sys.stderr)
        return 0

    try:
        return asyncio.run(run())
    finally:
        for sink in sinks:
            sink.close()


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import format_trace_report, load_trace_file, request_percentiles

    try:
        traces = load_trace_file(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"bad trace file: {exc}", file=sys.stderr)
        return 1
    print(format_trace_report(traces))
    if args.record:
        if not traces:
            print("nothing to record: no traces", file=sys.stderr)
            return 1
        from repro.benchreport import append_serve_latency

        p50, p95, p99 = request_percentiles(traces)
        append_serve_latency(
            len(traces), args.shards, p50, p95, p99, path=args.record_path
        )
        print(f"recorded serve latency -> {args.record_path}", file=sys.stderr)
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.benchreport import serve_report_file

    print(report_file(args.results))
    print()
    print("serve latency trajectory:")
    print(serve_report_file(args.serve_results))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.runner import run_check

    return run_check(
        paths=args.paths or None,
        rule_ids=args.rules,
        as_json=args.as_json,
        config_path=args.config,
        list_rules=args.list_rules,
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SILC: scalable network distance browsing (SIGMOD 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic network")
    p.add_argument("network", help="output network file (text format)")
    p.add_argument("--kind", choices=["road", "grid", "planar"], default="road")
    p.add_argument("--size", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("build", help="run the SILC precompute")
    p.add_argument("network")
    p.add_argument(
        "index",
        help="output index path: *.npz for a compressed archive, "
        "anything else for a directory of raw .npy columns "
        "(loadable with --mmap)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the per-source builds "
        "(1 = serial, 0 = one per available CPU; the parallel result "
        "is byte-identical to the serial one)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=128,
        help="sources per shortest-path batch (memory/throughput knob)",
    )
    p.add_argument(
        "--transport",
        choices=["shm", "pickle"],
        default=None,
        help="how parallel chunk results move between processes "
        "(default: shared memory when available)",
    )
    p.add_argument(
        "--record",
        action="store_true",
        help="append this build's timing to the bench-report "
        "trajectory file",
    )
    p.add_argument(
        "--record-seed",
        type=int,
        default=-1,
        help="seed tag for --record lines (the CLI does not know how "
        "the network file was generated)",
    )
    p.add_argument(
        "--record-path",
        default=str(BUILD_TIMES_PATH),
        help="trajectory file --record appends to (the default is "
        "anchored to the source tree; pass an explicit path for "
        "installed deployments)",
    )
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser(
        "build-labels",
        help="add a pruned-landmark labelling backend to a built index",
    )
    p.add_argument("network")
    p.add_argument(
        "index",
        help="existing directory-layout index; the labelling columns "
        "and calibrated cost model land in its labels/ subdirectory",
    )
    p.add_argument(
        "--skip-calibration",
        action="store_true",
        help="only build and save the label columns (no planner cost "
        "model; `--oracle auto` will calibrate lazily at serve time)",
    )
    p.add_argument("--objects", type=int, default=25,
                   help="random vertex objects calibration queries run over")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-fraction", type=float, default=0.05,
                   help="page-cache fraction the calibration runs under "
                   "(match the serving configuration)")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map the index during calibration")
    p.set_defaults(func=_cmd_build_labels)

    p = sub.add_parser("stats", help="report index statistics")
    p.add_argument("network")
    p.add_argument("index")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map a directory-layout index")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("path", help="retrieve a shortest path")
    p.add_argument("network")
    p.add_argument("index")
    p.add_argument("source", type=int)
    p.add_argument("target", type=int)
    p.add_argument("--mmap", action="store_true",
                   help="memory-map a directory-layout index")
    p.set_defaults(func=_cmd_path)

    p = sub.add_parser("knn", help="k nearest random objects to a vertex")
    p.add_argument("network")
    p.add_argument("index")
    p.add_argument(
        "--query",
        type=int,
        action="append",
        required=True,
        help="query vertex; repeat the flag to answer a whole batch "
        "through one QueryEngine",
    )
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--objects", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--oracle",
        choices=list(ORACLE_CHOICES),
        default="silc",
        help="kNN backend: silc (best-first browsing), labels "
        "(2-hop labelling IER), ine (network expansion) or auto "
        "(per-query cost-based planning)",
    )
    p.add_argument(
        "--epsilon",
        type=float,
        default=0.0,
        help="(1+epsilon)-approximate search on the SILC backend "
        "(0 = exact, the default)",
    )
    p.add_argument("--mmap", action="store_true",
                   help="memory-map a directory-layout index")
    p.set_defaults(func=_cmd_knn)

    p = sub.add_parser(
        "serve",
        help="answer JSON-lines requests through the async serving layer",
    )
    p.add_argument("network")
    p.add_argument("index")
    p.add_argument("--objects", type=int, default=25,
                   help="random vertex objects to serve kNN over")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-fraction", type=float, default=0.05,
                   help="warm LRU page cache as a fraction of index pages")
    p.add_argument("--max-locations", type=int,
                   default=QueryEngine.DEFAULT_MAX_LOCATIONS,
                   help="bound on the resolved-location LRU cache")
    p.add_argument("--chunk-size", type=int, default=32,
                   help="queries per fair-scheduler chunk (batch split size)")
    p.add_argument("--max-in-flight", type=int, default=1024,
                   help="global cap on admitted-but-unfinished queries; "
                   "requests past it are rejected with retry_after")
    p.add_argument("--rate", type=float, default=None,
                   help="per-client token-bucket rate (queries/second; "
                   "omit for unlimited)")
    p.add_argument("--burst", type=float, default=None,
                   help="per-client token-bucket burst (defaults to --rate)")
    p.add_argument("--input", default=None,
                   help="read requests from a file instead of stdin")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel query worker threads (storage "
                   "accounting shards per worker past 1)")
    p.add_argument("--shards", type=int, default=1,
                   help="spatial shard worker *processes* for kNN "
                   "queries: the index is partitioned by Morton-key "
                   "ranges and a router prunes shards by distance "
                   "bound (1 = in-process, no sharding; the shard "
                   "tier serves the silc backend only)")
    p.add_argument("--on-shard-failure",
                   choices=["respawn", "failover", "degrade", "error"],
                   default="respawn",
                   help="policy when a shard worker dies: respawn "
                   "(backoff, respawn, replay the request), failover "
                   "(answer on the unsharded engine while the worker "
                   "respawns in the background), degrade (answer from "
                   "the surviving shards, response flagged degraded), "
                   "or error (surface the failure)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="respawn+replay attempts per request before "
                   "the shard is declared unavailable")
    p.add_argument("--inject-kill", action="append", default=[],
                   metavar="SHARD:N",
                   help="fault injection (repeatable): kill the given "
                   "shard's worker immediately before its Nth request, "
                   "exercising the recovery path deterministically "
                   "(chaos testing; requires --shards > 1)")
    p.add_argument(
        "--oracle",
        choices=list(ORACLE_CHOICES),
        default="silc",
        help="default kNN backend for requests that do not name one "
        "(a request's own \"oracle\" field overrides per query)",
    )
    p.add_argument("--mmap", action="store_true",
                   help="memory-map a directory-layout index")
    p.add_argument("--trace-file", default=None,
                   help="append one JSON-lines trace per request "
                   "(timed spans: admission, sched_wait, plan, "
                   "oracle:<backend>, shard:<id>, ...); read it back "
                   "with `repro trace-report`")
    p.add_argument("--slow-log", default=None,
                   help="tee the full span trees of requests over "
                   "--slow-threshold-ms to this JSON-lines file")
    p.add_argument("--slow-threshold-ms", type=float, default=250.0,
                   help="latency threshold for --slow-log capture "
                   "(milliseconds)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace-report",
        help="aggregate a serve --trace-file into a per-stage "
        "latency/counted-op breakdown",
    )
    p.add_argument("trace_file",
                   help="JSON-lines trace file written by "
                   "`repro serve --trace-file` (or --slow-log)")
    p.add_argument("--record", action="store_true",
                   help="append the run's request-latency percentiles "
                   "to the serving-latency trajectory")
    p.add_argument("--record-path", default=str(SERVE_LATENCY_PATH),
                   help="trajectory file --record appends to "
                   f"(default: {SERVE_LATENCY_PATH})")
    p.add_argument("--shards", type=int, default=1,
                   help="shard count tag for --record lines (the trace "
                   "file does not carry the serve configuration)")
    p.set_defaults(func=_cmd_trace_report)

    p = sub.add_parser(
        "bench-report",
        help="print the build-time and serve-latency trajectories "
        "recorded by the benchmarks",
    )
    p.add_argument("results", nargs="?", default=str(BUILD_TIMES_PATH),
                   help="path to build_times.txt "
                   f"(default: {BUILD_TIMES_PATH})")
    p.add_argument("--serve-results", default=str(SERVE_LATENCY_PATH),
                   help="path to serve_latency.txt "
                   f"(default: {SERVE_LATENCY_PATH})")
    p.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser(
        "check",
        help="run the project's static-analysis rules (RPR001+)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to check "
                   "(default: the paths listed in analysis.toml)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit a machine-readable JSON report")
    p.add_argument("--rule", action="append", dest="rules", metavar="ID",
                   help="run only this rule id (repeatable)")
    p.add_argument("--config", default=None,
                   help="path to analysis.toml (default: discovered "
                   "by walking up from the checked paths)")
    p.add_argument("--list-rules", action="store_true",
                   help="list the available rule ids and exit")
    p.set_defaults(func=_cmd_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
