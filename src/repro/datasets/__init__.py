"""Workload generation for experiments and examples."""

from repro.datasets.objects import random_edge_objects, random_vertex_objects
from repro.datasets.workloads import Workload, knn_workload

__all__ = [
    "random_vertex_objects",
    "random_edge_objects",
    "Workload",
    "knn_workload",
]
