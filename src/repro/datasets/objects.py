"""Random object sets over a network.

The paper's experiments draw the object set ``S`` uniformly at random
over the network at densities ``p = |S| / N`` between 0.001 and 0.2
(p.32-33).  These helpers reproduce that sampling reproducibly.
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import SpatialNetwork
from repro.objects.model import ObjectSet


def random_vertex_objects(
    network: SpatialNetwork,
    density: float | None = None,
    count: int | None = None,
    seed: int = 0,
) -> ObjectSet:
    """Objects placed on distinct random vertices.

    Specify either a ``density`` (fraction of N, the paper's ``p``) or
    an absolute ``count``.
    """
    if (density is None) == (count is None):
        raise ValueError("provide exactly one of density or count")
    n = network.num_vertices
    if density is not None:
        if not (0.0 < density <= 1.0):
            raise ValueError("density must be in (0, 1]")
        count = max(1, round(density * n))
    if not (1 <= count <= n):
        raise ValueError(f"count must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    vertices = rng.choice(n, size=count, replace=False)
    return ObjectSet.at_vertices(network, [int(v) for v in vertices])


def random_edge_objects(
    network: SpatialNetwork, count: int, seed: int = 0
) -> ObjectSet:
    """Objects placed at random fractions along random edges."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    edges = list(network.iter_edges())
    placements = []
    for _ in range(count):
        a, b, _ = edges[int(rng.integers(len(edges)))]
        placements.append((a, b, float(rng.uniform(0.05, 0.95))))
    return ObjectSet.on_edges(network, placements)
