"""Query workloads: reproducible batches of kNN queries.

The paper runs "each query on at least 50 random input datasets of the
same size" (p.32); a :class:`Workload` captures one such batch --
query vertices plus the object set -- under a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.objects import random_vertex_objects
from repro.network.graph import SpatialNetwork
from repro.objects.model import ObjectSet


@dataclass(frozen=True)
class Workload:
    """A batch of queries against one object set."""

    network: SpatialNetwork
    objects: ObjectSet
    queries: list[int]
    k: int
    seed: int

    @property
    def density(self) -> float:
        return len(self.objects) / self.network.num_vertices


def knn_workload(
    network: SpatialNetwork,
    density: float,
    k: int,
    num_queries: int = 20,
    seed: int = 0,
) -> Workload:
    """A reproducible kNN workload at the paper's parameters.

    Query vertices are sampled independently of the object set (the
    decoupling the paper stresses: the same index serves any S and any
    q).
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    objects = random_vertex_objects(network, density=density, seed=seed + 1)
    queries = [int(v) for v in rng.integers(0, network.num_vertices, num_queries)]
    return Workload(
        network=network, objects=objects, queries=queries, k=k, seed=seed
    )
