"""Batched query serving: the :class:`QueryEngine` facade.

A long-lived service answering network-distance queries holds one
built :class:`~repro.silc.SILCIndex`, one object index, and (in the
paper's disk-resident setting) one page buffer -- and then answers
*many* queries against them.  :class:`QueryEngine` packages exactly
that serving state:

* resolved query locations are cached, so repeated queries from the
  same vertex/position skip :func:`~repro.query.location.resolve_location`
  (for free-point queries that is an O(N) nearest-vertex scan);
* one :class:`~repro.storage.StorageSimulator` is attached for the
  whole lifetime of the engine, so the LRU buffer stays warm across
  queries -- the server-cache regime, as opposed to the per-query cold
  caches of the benchmark protocol;
* per-query :class:`~repro.query.stats.QueryStats` are aggregated into
  a single batch-level stats object.

Example::

    engine = QueryEngine(index, object_index, cache_fraction=0.05)
    batch = engine.knn_batch(range(100), k=5, variant="knn_m")
    print(len(batch), "queries,", batch.stats.refinements, "refinements")
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import reduce
from time import perf_counter
from collections.abc import Iterable, Iterator

from repro.errors import DeadlineExceeded
from repro.objects.index import ObjectIndex
from repro.objects.model import NetworkPosition
from repro.obs.trace import NULL_TRACE
from repro.oracle.base import ORACLE_CHOICES
from repro.oracle.labelling import PrunedLabellingOracle
from repro.oracle.planner import QueryPlanner
from repro.oracle.silc import INEOracle, SILCOracle
from repro.query.bestfirst import VARIANTS, best_first_knn
from repro.query.browsing import approximate_knn
from repro.query.location import resolve_location
from repro.query.results import KNNResult
from repro.query.stats import QueryStats
from repro.silc.index import SILCIndex
from repro.storage.simulator import StorageSimulator


@dataclass(frozen=True)
class BatchResult:
    """The answers to one batch of k-nearest-neighbor queries.

    ``results`` is in query order; ``stats`` is the sum of every
    per-query counter (see :meth:`QueryStats.merge`); ``elapsed`` is
    the wall-clock time of the whole batch including location
    resolution.
    """

    results: list[KNNResult]
    stats: QueryStats
    elapsed: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[KNNResult]:
        return iter(self.results)

    def __getitem__(self, i: int) -> KNNResult:
        return self.results[i]

    def ids(self) -> list[list[int]]:
        """Per-query neighbor oids, in query order."""
        return [r.ids() for r in self.results]


class QueryEngine:
    """Many queries against one index: the serving-side facade.

    Parameters
    ----------
    index:
        A built SILC index.
    object_index:
        The spatial index over the object set queries run against.
    storage:
        An existing simulator to account page traffic through; stays
        attached for every query the engine runs (warm server cache).
    cache_fraction:
        Convenience alternative to ``storage``: build a simulator
        sized to this fraction of the index pages.  Mutually exclusive
        with ``storage``; omit both to run without I/O accounting.
    max_locations:
        Bound on the resolved-location cache (LRU eviction past it),
        so a long-lived server's memory stays flat no matter how many
        distinct query locations it sees.  ``None`` disables the
        bound.  (:class:`repro.storage.lru.LRUCache` tracks page-id
        *membership* only, so the value cache here keeps its own
        ``OrderedDict`` recency order instead of reusing it.)
    labelling:
        A built/loaded :class:`~repro.oracle.PrunedLabellingOracle`
        over the same network, enabling the ``labels`` backend (and
        giving ``auto`` a third choice).  Bound to this engine's
        object index.
    oracle:
        Default kNN backend for queries that do not name one:
        ``"silc"`` (the historical path, unchanged), ``"labels"``
        (labelling-backed IER), ``"ine"`` (incremental network
        expansion) or ``"auto"`` (per-query cost-based planning).
    planner:
        An explicit :class:`~repro.oracle.QueryPlanner` (e.g. with a
        forced backend or preloaded calibration constants).  Built
        lazily from the engine's backends when omitted and ``auto``
        is requested.
    """

    #: Default bound on cached resolved locations.
    DEFAULT_MAX_LOCATIONS = 4096

    def __init__(
        self,
        index: SILCIndex,
        object_index: ObjectIndex,
        storage: StorageSimulator | None = None,
        cache_fraction: float | None = None,
        max_locations: int | None = DEFAULT_MAX_LOCATIONS,
        labelling: PrunedLabellingOracle | None = None,
        oracle: str = "silc",
        planner: QueryPlanner | None = None,
    ) -> None:
        if storage is not None and cache_fraction is not None:
            raise ValueError("pass either storage or cache_fraction, not both")
        if cache_fraction is not None:
            storage = index.make_storage(cache_fraction=cache_fraction)
        if max_locations is not None and max_locations < 1:
            raise ValueError("max_locations must be at least 1 (or None)")
        if oracle not in ORACLE_CHOICES:
            raise ValueError(
                f"unknown oracle {oracle!r}; expected one of {ORACLE_CHOICES}"
            )
        self.index = index
        self.object_index = object_index
        self.storage = storage
        self.max_locations = max_locations
        self.oracle = oracle
        self.labelling = (
            labelling.bind_objects(object_index) if labelling is not None else None
        )
        #: Backend name -> bound oracle.  ``silc`` is the historical
        #: best-first path; ``labels`` appears when a labelling is
        #: given; ``ine`` is always available (no precomputed state).
        self.oracles = {
            "silc": SILCOracle(index, object_index),
            # The engine's simulator models SILC *index* pages, which
            # INE never reads; it only charges storage when handed a
            # vertex-page model (NetworkStorageModel) explicitly.
            "ine": INEOracle(
                object_index,
                storage=storage if hasattr(storage, "touch_vertex") else None,
            ),
        }
        if self.labelling is not None:
            self.oracles["labels"] = self.labelling
        self.planner = planner
        self._positions: OrderedDict = OrderedDict()
        # Guards the location cache's read-reorder-evict sequence so
        # parallel query workers (AsyncEngine max_workers > 1) can
        # share the engine; resolution itself runs outside the lock.
        self._positions_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Locations
    # ------------------------------------------------------------------
    def resolve(self, query) -> NetworkPosition:
        """Resolve a query location, caching hashable query forms.

        The cache is LRU-bounded by ``max_locations``: the engine can
        serve an unbounded stream of distinct locations at flat
        memory, at the price of re-resolving ones evicted since their
        last use.
        """
        try:
            with self._positions_lock:
                cached = self._positions.get(query)
                if cached is not None:
                    self._positions.move_to_end(query)
        except TypeError:  # unhashable query form: resolve every time
            return resolve_location(self.index.network, query)
        if cached is None:
            cached = resolve_location(self.index.network, query)
            with self._positions_lock:
                self._positions[query] = cached
                if (
                    self.max_locations is not None
                    and len(self._positions) > self.max_locations
                ):
                    self._positions.popitem(last=False)
        return cached

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    def ensure_planner(self) -> QueryPlanner:
        """The engine's planner, built (and calibrated) on first use.

        Calibration runs its sample queries with the engine's storage
        simulator attached, so the measured per-op constants include
        the simulated I/O each backend would actually pay.
        """
        if self.planner is None:
            attached, previous = self._attach()
            try:
                planner = QueryPlanner(self.oracles, storage=self.storage)
                planner.calibrate()
            finally:
                self._restore(attached, previous)
            self.planner = planner
        return self.planner

    def _resolve_backend(self, oracle: str | None, position, k: int) -> str:
        backend = self.oracle if oracle is None else oracle
        if backend not in ORACLE_CHOICES:
            raise ValueError(
                f"unknown oracle {backend!r}; expected one of {ORACLE_CHOICES}"
            )
        if backend == "auto":
            backend = self.ensure_planner().choose(position, k)
        if backend not in self.oracles:
            raise ValueError(
                f"oracle {backend!r} is not loaded on this engine "
                "(pass labelling= to the constructor, or `repro "
                "build-labels` the index first)"
            )
        return backend

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(
        self,
        query,
        k: int,
        variant: str = "knn",
        exact: bool = False,
        max_distance: float = math.inf,
        oracle: str | None = None,
        trace=None,
        time_cap: float | None = None,
    ) -> KNNResult:
        """One k-nearest-neighbor query through the engine's shared state.

        ``max_distance`` (network-weight units) is an external pruning
        cap: objects farther than it may be omitted and the search
        stops early (see :func:`repro.query.bestfirst.best_first_knn`).
        ``oracle`` overrides the engine's default backend for this
        query (``"auto"``/``"silc"``/``"labels"``/``"ine"``; the
        non-SILC backends always answer exact sorted distances, and
        ``variant``/``max_distance`` apply to the SILC path only).
        ``trace`` is a :class:`~repro.obs.trace.Trace` to record
        ``plan`` / ``oracle:<backend>`` spans on; the default no-op
        trace keeps the query path observation-free.
        ``time_cap`` is the query's remaining deadline budget in
        seconds: the SILC search aborts with
        :class:`~repro.errors.DeadlineExceeded` when it runs out, so
        execution (not just queueing) honors end-to-end deadlines.
        The non-SILC backends answer in near-constant time per query
        and are checked once, up front.
        """
        if trace is None:
            trace = NULL_TRACE
        if time_cap is not None and time_cap <= 0:
            raise DeadlineExceeded(
                f"query dispatched with no remaining budget ({time_cap:.4f}s)"
            )
        position = self.resolve(query)
        with trace.span("plan") as plan_span:
            backend = self._resolve_backend(oracle, position, k)
            plan_span.annotate(oracle=backend)
        attached, previous = self._attach()
        try:
            with trace.span(f"oracle:{backend}", oracle=backend) as oracle_span:
                if backend == "silc":
                    result = best_first_knn(
                        self.index, self.object_index, position, k,
                        variant=variant, exact=exact, max_distance=max_distance,
                        time_budget=time_cap,
                    )
                else:
                    # repro: ignore[RPR007] non-SILC oracles answer from precomputed tables in near-constant time; the planner bounds them up front, so there is no budget to forward
                    result = self.oracles[backend].knn(position, k)
                oracle_span.add_stats(result.stats)
            return result
        finally:
            self._restore(attached, previous)

    def knn_batch(
        self,
        queries: Iterable,
        k: int,
        variant: str = "knn",
        exact: bool = False,
        epsilon: float = 0.0,
        oracle: str | None = None,
        trace=None,
        time_cap: float | None = None,
    ) -> BatchResult:
        """Answer many kNN queries in one pass over the shared state.

        Equivalent to calling :func:`repro.query.knn` (or the chosen
        variant) once per query -- same neighbors, same order -- but
        locations resolve once per distinct query, the storage
        simulator persists across the whole batch, and the per-query
        stats are additionally merged into ``BatchResult.stats``.

        ``queries`` is consumed exactly once, so one-shot iterables
        (generators, streaming readers) are answered in full -- the
        same single-pass contract as :meth:`SILCIndex.build`.

        ``epsilon > 0`` relaxes each query to the ``(1 + epsilon)``
        approximate search (:func:`repro.query.approximate_knn`) --
        fewer refinements for near-optimal answers; ``epsilon = 0``
        is the exact path, byte-identical to before the knob existed.
        ``oracle`` selects the backend as in :meth:`knn` (approximate
        search is a SILC capability, so the two knobs are exclusive).
        ``trace`` records per-query ``plan`` / ``oracle:<backend>``
        spans exactly as :meth:`knn` does.
        ``time_cap`` bounds the *whole batch* in seconds; each query's
        SILC search receives the budget remaining when it starts and
        :class:`~repro.errors.DeadlineExceeded` aborts the batch when
        it runs out.
        """
        if trace is None:
            trace = NULL_TRACE
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if epsilon > 0 and (oracle or self.oracle) not in ("silc", None):
            raise ValueError(
                "epsilon-approximate search runs on the SILC backend only"
            )
        t_start = perf_counter()
        results: list[KNNResult] = []
        attached, previous = self._attach()
        try:
            for query in queries:
                budget = None
                if time_cap is not None:
                    budget = time_cap - (perf_counter() - t_start)
                    if budget <= 0:
                        raise DeadlineExceeded(
                            f"batch exceeded its {time_cap:.4f}s budget "
                            f"after {len(results)} of its queries"
                        )
                position = self.resolve(query)
                if epsilon > 0:
                    with trace.span(
                        "oracle:silc", oracle="silc", epsilon=epsilon
                    ) as oracle_span:
                        result = approximate_knn(
                            self.index, self.object_index, position, k,
                            epsilon=epsilon,
                        )
                        oracle_span.add_stats(result.stats)
                    results.append(result)
                    continue
                with trace.span("plan") as plan_span:
                    backend = self._resolve_backend(oracle, position, k)
                    plan_span.annotate(oracle=backend)
                with trace.span(f"oracle:{backend}", oracle=backend) as oracle_span:
                    if backend == "silc":
                        result = best_first_knn(
                            self.index, self.object_index, position, k,
                            variant=variant, exact=exact, time_budget=budget,
                        )
                    else:
                        # repro: ignore[RPR007] non-SILC oracles answer from precomputed tables in near-constant time; the per-query budget only gates the SILC search arm
                        result = self.oracles[backend].knn(position, k)
                    oracle_span.add_stats(result.stats)
                results.append(result)
        finally:
            self._restore(attached, previous)
        stats = reduce(QueryStats.merge, (r.stats for r in results), QueryStats())
        return BatchResult(
            results=results, stats=stats, elapsed=perf_counter() - t_start
        )

    # ------------------------------------------------------------------
    # Storage plumbing
    # ------------------------------------------------------------------
    def _attach(self) -> tuple[bool, StorageSimulator | None]:
        """Attach the engine's simulator to the index.

        Returns ``(attached, previous)``: whether a restore is owed and
        the simulator that was attached before (so a caller-attached
        simulator survives the engine's queries instead of being
        silently detached).
        """
        if self.storage is None or self.index.storage is self.storage:
            return False, None
        previous = self.index.storage
        self.index.attach_storage(self.storage)
        return True, previous

    def _restore(self, attached: bool, previous: StorageSimulator | None) -> None:
        if not attached:
            return
        if previous is None:
            self.index.detach_storage()
        else:
            self.index.attach_storage(previous)
