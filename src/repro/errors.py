"""Cross-layer fault-tolerance exceptions.

These live at the package root because they cross layer boundaries:
:class:`CorruptIndexError` is raised by every persistence reader
(:mod:`repro.silc.store`, :mod:`repro.silc.index`,
:mod:`repro.oracle.labelling`) and handled by the CLI and tests;
:class:`DeadlineExceeded` travels from the innermost search loop
(:func:`repro.query.bestfirst.best_first_knn`) through the shard pipe
protocol up to the serving layer, which turns it into an
:class:`~repro.serve.protocol.Expired` response.
"""

from __future__ import annotations


class CorruptIndexError(RuntimeError):
    """A persisted index/labelling failed its integrity verification.

    Raised *at load time* -- before any query can run against the bad
    data -- when a column file is missing, truncated, fails its
    manifest checksum, or cannot be parsed.  ``column`` names the
    offending file (without the ``.npy`` suffix) when known.
    """

    def __init__(self, message: str, column: str | None = None) -> None:
        super().__init__(message)
        self.column = column


class DeadlineExceeded(RuntimeError):
    """A query's end-to-end deadline ran out during *execution*.

    Distinct from queue-time expiry (which the server detects before
    dispatch): this is raised from inside the engine when the
    remaining budget hits zero mid-search, so a request never returns
    a late result.  The serving layer maps it to an
    :class:`~repro.serve.protocol.Expired` response with
    ``aborted=True``.
    """


class WorkerDied(RuntimeError):
    """A shard worker process crashed (or vanished) around a request.

    Raised by the parent-side :class:`~repro.shard.worker.ShardWorker`
    handle when the process is found dead, the pipe breaks on send,
    or the receive poll hits EOF/liveness failure.  The
    :class:`~repro.shard.supervisor.ShardSupervisor` catches it and
    applies the configured recovery policy; it subclasses
    ``RuntimeError`` so un-supervised callers keep their historical
    failure type.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardUnavailable(RuntimeError):
    """A shard stayed down after the supervision policy was exhausted.

    Raised to the router, which then degrades per policy: fail over to
    the unsharded engine, answer from the surviving shards with the
    response flagged ``degraded``, or surface the error.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard
