"""Deterministic fault injection for chaos testing the serving tier.

Fault-tolerance code is only trustworthy when its failure paths run on
every CI push, not just in outages.  :class:`FaultInjector` makes the
three failures the stack defends against *reproducible*:

* **Worker crashes** -- :meth:`kill_worker_at` hard-kills a shard
  worker process immediately before its Nth request is sent, so the
  supervisor's crash-detection/respawn/replay path is exercised at a
  deterministic point of the workload;
* **Slow pipes** -- :meth:`delay_pipe` sleeps before each request to a
  shard, simulating a degraded host without changing any answer;
* **Corrupt files** -- :func:`truncate_file` / :func:`corrupt_file`
  damage persisted index columns the way a crashed save or a bad disk
  would, driving the :class:`~repro.errors.CorruptIndexError`
  verification path.

The injector hooks the *parent* side of the worker pipe (the
:class:`~repro.shard.supervisor.ShardSupervisor` calls
:meth:`before_request` under the worker's request lock), so no fault
code ships into worker processes and the kill point is exact: the
request counter is the supervisor's own send order.  Every injected
fault is appended to :attr:`events` for assertions.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path


class FaultInjector:
    """Scripted, deterministic faults against the shard tier.

    Thread-safe: the serving layer may drive many shards concurrently;
    per-shard request counters and the event log are guarded by one
    lock (sleeps happen outside it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: shard -> set of 1-based request ordinals to kill at.
        self._kill_at: dict[int, set[int]] = {}
        #: shard -> seconds of added latency per request.
        self._delay: dict[int, float] = {}
        #: shard -> requests seen so far.
        self.request_counts: dict[int, int] = {}
        #: Chronological ``(event, shard, detail)`` log of fired faults.
        self.events: list[tuple[str, int, object]] = []

    # ------------------------------------------------------------------
    # Scripting
    # ------------------------------------------------------------------
    def kill_worker_at(self, shard: int, nth_request: int) -> FaultInjector:
        """Kill ``shard``'s worker right before its Nth request (1-based).

        The ordinal counts *sends to that shard*, including replays
        after a respawn -- so ``kill_worker_at(0, 3)`` fires exactly
        once, on the third message the supervisor tries to deliver.
        Returns ``self`` for chaining.
        """
        if nth_request < 1:
            raise ValueError("nth_request is 1-based and must be >= 1")
        with self._lock:
            self._kill_at.setdefault(shard, set()).add(nth_request)
        return self

    def delay_pipe(self, shard: int, seconds: float) -> FaultInjector:
        """Add ``seconds`` of latency before every request to ``shard``."""
        if seconds < 0:
            raise ValueError("delay must be non-negative")
        with self._lock:
            self._delay[shard] = seconds
        return self

    # ------------------------------------------------------------------
    # Hook (called by the supervisor before each pipe send)
    # ------------------------------------------------------------------
    def before_request(self, shard: int, worker) -> None:
        """Fire any fault scheduled for this shard's next request.

        ``worker`` is the parent-side handle; a scheduled kill uses its
        :meth:`~repro.shard.worker.ShardWorker.kill` so the process is
        dead (not merely asked to stop) before the request goes out --
        the send/receive then fails exactly as a real mid-request crash
        does.
        """
        with self._lock:
            n = self.request_counts.get(shard, 0) + 1
            self.request_counts[shard] = n
            kill = n in self._kill_at.get(shard, ())
            if kill:
                self._kill_at[shard].discard(n)
            delay = self._delay.get(shard, 0.0)
        if delay:
            time.sleep(delay)
            with self._lock:
                self.events.append(("pipe_delay", shard, delay))
        if kill:
            worker.kill()
            with self._lock:
                self.events.append(("worker_kill", shard, n))

    def fired(self, event: str) -> int:
        """How many logged events of the given type have fired."""
        with self._lock:
            return sum(1 for e, _, _ in self.events if e == event)


# ----------------------------------------------------------------------
# File-level faults (crash-safe persistence tests)
# ----------------------------------------------------------------------

def truncate_file(path: str | Path, keep_bytes: int | None = None) -> int:
    """Truncate a file the way an interrupted write would.

    Keeps the first ``keep_bytes`` bytes (default: half the file, so
    the numpy header usually survives and only the data is short --
    the nastiest real-world shape).  Returns the new size.
    """
    path = Path(path)
    size = path.stat().st_size
    if keep_bytes is None:
        keep_bytes = size // 2
    if not 0 <= keep_bytes <= size:
        raise ValueError(f"keep_bytes must be within [0, {size}]")
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
    return keep_bytes


def corrupt_file(path: str | Path, offset: int = -1, flip: int = 0xFF) -> None:
    """XOR one byte of a file in place (size-preserving corruption).

    ``offset`` indexes from the end when negative (the default hits
    the last byte -- past the numpy header, inside the data).  Size
    checks cannot catch this; only the deep checksum verification can.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path}")
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(f"offset out of range for {size}-byte file")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ flip]))
