"""Planar geometry substrate for the SILC reproduction.

The spatial-network vertices live in the Euclidean plane.  Every higher
layer of the library (quadtrees, SILC distance intervals, the object
index) is expressed in terms of the primitives defined here:

* :class:`~repro.geometry.point.Point` -- immutable 2-D points with the
  Euclidean metric,
* :class:`~repro.geometry.rect.Rect` -- axis-aligned rectangles with
  min/max point-to-rectangle distances,
* :mod:`~repro.geometry.morton` -- Morton (Z-order) codes and the
  Morton-block algebra used by shortest-path quadtrees,
* :class:`~repro.geometry.grid.GridEmbedding` -- the mapping between
  world coordinates and the ``2^q x 2^q`` quadtree grid.
"""

from repro.geometry.point import Point, euclidean
from repro.geometry.rect import Rect
from repro.geometry.morton import (
    MAX_ORDER,
    morton_decode,
    morton_encode,
    block_cells,
    block_contains,
    block_rect,
    blocks_overlap,
    child_blocks,
    parent_block,
)
from repro.geometry.grid import GridEmbedding

__all__ = [
    "Point",
    "euclidean",
    "Rect",
    "MAX_ORDER",
    "morton_encode",
    "morton_decode",
    "block_cells",
    "block_contains",
    "block_rect",
    "blocks_overlap",
    "child_blocks",
    "parent_block",
    "GridEmbedding",
]
