"""World-coordinate <-> quadtree-grid embeddings.

The paper embeds the spatial network in a ``2^q x 2^q`` grid before
building shortest-path quadtrees.  :class:`GridEmbedding` owns that
mapping: it scales world coordinates into grid cells, guarantees every
vertex lands strictly inside the grid, and converts Morton blocks back
to world-space rectangles for distance bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.morton import (
    MAX_ORDER,
    block_rect,
    morton_decode_array,
    morton_encode_array,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class GridEmbedding:
    """An affine map from a world bounding box onto a ``2^order`` grid.

    Parameters
    ----------
    bounds:
        World-space bounding box of the embedded data.  A small margin
        is added automatically so boundary points do not fall on the
        last cell edge.
    order:
        Grid order ``q``; the grid has ``2**q`` cells per side.
    """

    bounds: Rect
    order: int

    def __post_init__(self) -> None:
        if not (1 <= self.order <= MAX_ORDER):
            raise ValueError(f"grid order must be in [1, {MAX_ORDER}]: {self.order}")
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ValueError("embedding bounds must have positive area")

    @property
    def cells_per_side(self) -> int:
        return 1 << self.order

    @property
    def cell_width(self) -> float:
        return self.bounds.width / self.cells_per_side

    @property
    def cell_height(self) -> float:
        return self.bounds.height / self.cells_per_side

    # ------------------------------------------------------------------
    # Point -> cell
    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> tuple[int, int]:
        """Grid cell ``(cx, cy)`` containing a world point (clamped)."""
        n = self.cells_per_side
        cx = int((p.x - self.bounds.xmin) / self.bounds.width * n)
        cy = int((p.y - self.bounds.ymin) / self.bounds.height * n)
        return (min(max(cx, 0), n - 1), min(max(cy, 0), n - 1))

    def cells_of_array(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over coordinate arrays."""
        n = self.cells_per_side
        cx = ((np.asarray(xs) - self.bounds.xmin) / self.bounds.width * n).astype(np.int64)
        cy = ((np.asarray(ys) - self.bounds.ymin) / self.bounds.height * n).astype(np.int64)
        np.clip(cx, 0, n - 1, out=cx)
        np.clip(cy, 0, n - 1, out=cy)
        return cx, cy

    def morton_of_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Morton codes of the cells containing each world point."""
        cx, cy = self.cells_of_array(xs, ys)
        return morton_encode_array(cx, cy)

    # ------------------------------------------------------------------
    # Block -> world rectangle
    # ------------------------------------------------------------------
    def block_world_rect(self, code: int, level: int) -> Rect:
        """World-space rectangle covered by a Morton block."""
        cells = block_rect(code, level)
        return Rect(
            self.bounds.xmin + cells.xmin * self.cell_width,
            self.bounds.ymin + cells.ymin * self.cell_height,
            self.bounds.xmin + cells.xmax * self.cell_width,
            self.bounds.ymin + cells.ymax * self.cell_height,
        )

    def block_world_bounds_array(
        self, codes: np.ndarray, levels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`block_world_rect` over many blocks.

        Returns ``(xmin, ymin, xmax, ymax)`` float arrays, computed
        with the same arithmetic (and therefore bit-identical bounds)
        as the scalar path.
        """
        cx, cy = morton_decode_array(codes)
        side = np.int64(1) << np.asarray(levels, dtype=np.int64)
        cw = self.cell_width
        ch = self.cell_height
        x0 = self.bounds.xmin
        y0 = self.bounds.ymin
        return (
            x0 + cx.astype(np.float64) * cw,
            y0 + cy.astype(np.float64) * ch,
            x0 + (cx + side).astype(np.float64) * cw,
            y0 + (cy + side).astype(np.float64) * ch,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def for_points(
        xs: np.ndarray, ys: np.ndarray, order: int, margin: float = 1e-9
    ) -> GridEmbedding:
        """Embedding whose bounds enclose the given points.

        A relative ``margin`` widens the box so that the maximum
        coordinate maps strictly inside the final cell.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.size == 0:
            raise ValueError("cannot build an embedding for zero points")
        xmin, xmax = float(xs.min()), float(xs.max())
        ymin, ymax = float(ys.min()), float(ys.max())
        span = max(xmax - xmin, ymax - ymin, 1e-12)
        pad = span * max(margin, 1e-12)
        return GridEmbedding(
            Rect(xmin - pad, ymin - pad, xmin - pad + span + 2 * pad, ymin - pad + span + 2 * pad),
            order,
        )
