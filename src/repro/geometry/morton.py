"""Morton (Z-order) codes and the Morton-block algebra.

The shortest-path quadtree of the paper is stored not as a pointer tree
but as a flat, sorted collection of *Morton blocks*: aligned square
regions of the ``2^q x 2^q`` grid identified by the Z-order code of
their lower-left cell plus a level (the block spans ``2^level`` cells on
a side).  Storing blocks this way gives the paper its
dimension-reducing ``O(perimeter)`` representation and lets vertex
lookup run as a binary search over sorted codes.

Bit layout: the x coordinate occupies the even bit positions and y the
odd ones, so a block at ``level`` covers exactly the codes in
``[code, code + 4**level)`` -- the contiguous-range property every
algorithm here relies on.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect

#: Maximum supported grid order: the grid has ``2**MAX_ORDER`` cells per
#: side.  16 gives a 65536 x 65536 grid -- ample resolution for every
#: network size this reproduction runs while keeping codes in 32 bits.
MAX_ORDER = 16

_MASKS_SPREAD = (
    0x0000FFFF,
    0x00FF00FF,
    0x0F0F0F0F,
    0x33333333,
    0x55555555,
)


def _spread_bits(v: int) -> int:
    """Spread the low 16 bits of ``v`` into the even bit positions."""
    v &= _MASKS_SPREAD[0]
    v = (v | (v << 8)) & _MASKS_SPREAD[1]
    v = (v | (v << 4)) & _MASKS_SPREAD[2]
    v = (v | (v << 2)) & _MASKS_SPREAD[3]
    v = (v | (v << 1)) & _MASKS_SPREAD[4]
    return v


def _compact_bits(v: int) -> int:
    """Inverse of :func:`_spread_bits`: gather even bits into the low 16."""
    v &= _MASKS_SPREAD[4]
    v = (v | (v >> 1)) & _MASKS_SPREAD[3]
    v = (v | (v >> 2)) & _MASKS_SPREAD[2]
    v = (v | (v >> 4)) & _MASKS_SPREAD[1]
    v = (v | (v >> 8)) & _MASKS_SPREAD[0]
    return v


def morton_encode(x: int, y: int) -> int:
    """Interleave the bits of ``(x, y)`` into a Z-order code.

    ``x`` lands on even bit positions, ``y`` on odd ones.  Coordinates
    must fit in ``MAX_ORDER`` bits.
    """
    if not (0 <= x < (1 << MAX_ORDER) and 0 <= y < (1 << MAX_ORDER)):
        raise ValueError(f"grid coordinate out of range: ({x}, {y})")
    return _spread_bits(x) | (_spread_bits(y) << 1)


def morton_decode(code: int) -> tuple[int, int]:
    """Recover the ``(x, y)`` cell coordinates from a Z-order code."""
    if code < 0 or code >= (1 << (2 * MAX_ORDER)):
        raise ValueError(f"Morton code out of range: {code}")
    return _compact_bits(code), _compact_bits(code >> 1)


def morton_encode_array(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`morton_encode` for bulk quadtree construction.

    Accepts integer arrays; returns ``uint64`` codes.  The SILC build
    encodes every vertex once per network, so this path must be fast.
    """
    x = np.asarray(xs, dtype=np.uint64)
    y = np.asarray(ys, dtype=np.uint64)
    if x.size and (int(x.max()) >= (1 << MAX_ORDER) or int(y.max()) >= (1 << MAX_ORDER)):
        raise ValueError("grid coordinate out of range for Morton encoding")

    def spread(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(_MASKS_SPREAD[0])
        v = (v | (v << np.uint64(8))) & np.uint64(_MASKS_SPREAD[1])
        v = (v | (v << np.uint64(4))) & np.uint64(_MASKS_SPREAD[2])
        v = (v | (v << np.uint64(2))) & np.uint64(_MASKS_SPREAD[3])
        v = (v | (v << np.uint64(1))) & np.uint64(_MASKS_SPREAD[4])
        return v

    return spread(x) | (spread(y) << np.uint64(1))


def morton_decode_array(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`morton_decode` for bulk block geometry.

    Accepts an integer array of Z-order codes; returns ``(xs, ys)``
    cell-coordinate arrays as ``int64``.  The block-bound hot path of
    the kNN search decodes every overlapping quadtree block of a probe
    at once through this.
    """
    v = np.asarray(codes, dtype=np.uint64)

    def compact(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(_MASKS_SPREAD[4])
        v = (v | (v >> np.uint64(1))) & np.uint64(_MASKS_SPREAD[3])
        v = (v | (v >> np.uint64(2))) & np.uint64(_MASKS_SPREAD[2])
        v = (v | (v >> np.uint64(4))) & np.uint64(_MASKS_SPREAD[1])
        v = (v | (v >> np.uint64(8))) & np.uint64(_MASKS_SPREAD[0])
        return v

    return (
        compact(v).astype(np.int64),
        compact(v >> np.uint64(1)).astype(np.int64),
    )


# ----------------------------------------------------------------------
# Block algebra.  A block is the pair (code, level): the aligned square
# of side 2**level cells whose lower-left cell has Z-order code ``code``.
# Alignment means code % 4**level == 0, and the block covers the code
# range [code, code + 4**level).
# ----------------------------------------------------------------------


def block_cells(level: int) -> int:
    """Number of grid cells covered by a block of the given level."""
    if level < 0 or level > MAX_ORDER:
        raise ValueError(f"block level out of range: {level}")
    return 1 << (2 * level)


def is_aligned(code: int, level: int) -> bool:
    """Whether ``code`` can start a block of ``level`` (alignment check)."""
    return code % block_cells(level) == 0


def block_contains(code: int, level: int, cell_code: int) -> bool:
    """Whether the block ``(code, level)`` contains the grid cell."""
    return code <= cell_code < code + block_cells(level)


def blocks_overlap(code_a: int, level_a: int, code_b: int, level_b: int) -> bool:
    """Whether two aligned blocks overlap.

    Aligned quadtree blocks either nest or are disjoint, so overlap
    reduces to containment of the smaller range in the larger.
    """
    end_a = code_a + block_cells(level_a)
    end_b = code_b + block_cells(level_b)
    return code_a < end_b and code_b < end_a


def parent_block(code: int, level: int) -> tuple[int, int]:
    """The enclosing block one level up."""
    if level >= MAX_ORDER:
        raise ValueError("block already spans the whole grid")
    cells = block_cells(level + 1)
    return (code - (code % cells), level + 1)


def child_blocks(code: int, level: int) -> tuple[tuple[int, int], ...]:
    """The four children of a block, in Z order (SW, SE, NW, NE)."""
    if level <= 0:
        raise ValueError("cannot split a single-cell block")
    step = block_cells(level - 1)
    return tuple((code + i * step, level - 1) for i in range(4))


def block_rect(code: int, level: int) -> Rect:
    """The grid-coordinate rectangle covered by a block.

    Returned in *cell units*: the block of a single cell ``(x, y)`` maps
    to ``[x, x+1] x [y, y+1]``.  Use a
    :class:`~repro.geometry.grid.GridEmbedding` to convert back to world
    coordinates.
    """
    x, y = morton_decode(code)
    side = 1 << level
    return Rect(float(x), float(y), float(x + side), float(y + side))


def range_blocks(lo: int, hi: int) -> list[tuple[int, int]]:
    """Greedy decomposition of a Morton-code range into aligned blocks.

    Returns the minimal list of ``(code, level)`` blocks that exactly
    tile the half-open code range ``[lo, hi)``: each block is the
    largest aligned block that starts at the current position and does
    not overrun ``hi``.  A range of ``4**q`` codes decomposes into at
    most ``~4 * q`` blocks, so a shard's Morton-key range can always be
    summarized by a handful of quadtree blocks -- the cover the
    partition router intersects with shortest-path quadtrees when it
    prunes shards by distance bound.
    """
    if lo < 0 or hi > (1 << (2 * MAX_ORDER)):
        raise ValueError(f"code range out of grid: [{lo}, {hi})")
    if lo > hi:
        raise ValueError(f"empty-range bounds reversed: [{lo}, {hi})")
    out: list[tuple[int, int]] = []
    code = lo
    while code < hi:
        level = 0
        while level < MAX_ORDER:
            cells = block_cells(level + 1)
            if code % cells or code + cells > hi:
                break
            level += 1
        out.append((code, level))
        code += block_cells(level)
    return out


def common_block(code_a: int, code_b: int) -> tuple[int, int]:
    """The smallest aligned block containing both cells.

    Used when constructing compressed quadtrees: the split level of two
    Z-order runs is the level of their lowest common block.
    """
    level = 0
    cells = 1
    while code_a - (code_a % cells) != code_b - (code_b % cells):
        level += 1
        cells <<= 2
        if level > MAX_ORDER:
            raise ValueError("cells do not share a grid")
    return (code_a - (code_a % cells), level)
