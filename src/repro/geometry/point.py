"""Immutable 2-D points and the Euclidean metric.

The paper measures spatial ("as the crow flies") distance with the
ordinary Euclidean metric; all lambda-interval arithmetic in the SILC
framework divides network distance by this quantity, so a single shared
implementation keeps every layer consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the Euclidean plane.

    Instances are immutable and hashable so they can key dictionaries
    (e.g. vertex lookup tables) and be stored in sets.
    """

    x: float
    y: float

    def distance_to(self, other: Point) -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: Point) -> float:
        """L1 distance to ``other`` (used by grid-network generators)."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: Point) -> Point:
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def lerp(self, other: Point, t: float) -> Point:
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``.

        Used to position edge objects a fraction ``t`` of the way along
        a road segment.
        """
        return Point(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def translated(self, dx: float, dy: float) -> Point:
        """A copy of the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The ``(x, y)`` pair, for numpy interop and serialization."""
        return (self.x, self.y)


def euclidean(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between raw coordinate pairs.

    A free function (rather than a method) so hot loops can avoid
    constructing :class:`Point` objects.
    """
    return math.hypot(ax - bx, ay - by)
