"""Axis-aligned rectangles with distance queries.

Rectangles appear in two places in the reproduction:

* Morton blocks of a shortest-path quadtree decode to grid-aligned
  rectangles; the kNN algorithm needs the minimum Euclidean distance
  from the query point to (the intersection of) such rectangles to
  lower-bound network distances to object-index blocks.
* The PMR-style object index partitions space into rectangular blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate rectangle: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corner points in counter-clockwise order."""
        return (
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        )

    # ------------------------------------------------------------------
    # Containment and intersection
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_xy(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_rect(self, other: Rect) -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: Rect) -> bool:
        """Closed-interval overlap test (shared edges count as overlap)."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def intersection(self, other: Rect) -> Rect | None:
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def union(self, other: Rect) -> Rect:
        """The smallest rectangle enclosing both operands."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_to_point(self, p: Point) -> float:
        """Minimum Euclidean distance from ``p`` to the rectangle.

        Zero when ``p`` lies inside.  This is the classic MINDIST bound
        used by best-first spatial search (Hjaltason & Samet 1995).
        """
        return self.min_distance_to_point_xy(p.x, p.y)

    def min_distance_to_point_xy(self, x: float, y: float) -> float:
        """:meth:`min_distance_to_point` without the Point allocation.

        The block-bound hot path calls this once per object-index
        block probed.
        """
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Maximum Euclidean distance from ``p`` to any point of the rect.

        Attained at the corner farthest from ``p`` (MAXDIST bound).
        """
        dx = max(p.x - self.xmin, self.xmax - p.x)
        dy = max(p.y - self.ymin, self.ymax - p.y)
        return math.hypot(dx, dy)

    def min_distance_to_rect(self, other: Rect) -> float:
        """Minimum Euclidean distance between two rectangles."""
        dx = max(other.xmin - self.xmax, self.xmin - other.xmax, 0.0)
        dy = max(other.ymin - self.ymax, self.ymin - other.ymax, 0.0)
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Quadrant decomposition (region-quadtree splitting)
    # ------------------------------------------------------------------
    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """The four quadrants in quadtree order SW, SE, NW, NE."""
        cx = (self.xmin + self.xmax) / 2.0
        cy = (self.ymin + self.ymax) / 2.0
        return (
            Rect(self.xmin, self.ymin, cx, cy),
            Rect(cx, self.ymin, self.xmax, cy),
            Rect(self.xmin, cy, cx, self.ymax),
            Rect(cx, cy, self.xmax, self.ymax),
        )
