"""Crash-safe persistence: atomic directory saves + checksum manifests.

An interrupted ``SILCIndex.save`` or ``repro build-labels`` used to
leave a silently-corrupt directory: half-written ``.npy`` columns that
load fine until a query walks off the truncated end.  This module
gives every directory-layout writer the same two defenses:

* **Atomicity** -- :func:`atomic_directory` stages the write in a
  sibling temporary directory and publishes it with ``os.replace``,
  so readers only ever see the old state or the complete new state
  (an interrupted save leaves the target untouched).
* **Verification** -- :func:`write_manifest` records every payload
  file's size and CRC-32 in ``MANIFEST.json`` (written last);
  :func:`verify_manifest` re-checks them at load time and raises
  :class:`~repro.errors.CorruptIndexError` naming the bad column
  *before* any query runs.  ``deep=False`` checks sizes only (an
  O(1) ``stat`` per file -- the mmap cold-start path keeps its O(1)
  contract and still catches truncation); ``deep=True`` streams every
  byte through the checksum.

Directories written before manifests existed verify trivially (no
manifest, nothing to check) but still get :func:`checked_load`'s
parse-error wrapping, so a truncated legacy column fails with a named
:class:`CorruptIndexError` rather than a bare numpy ``ValueError``.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator

import numpy as np

from repro.errors import CorruptIndexError

#: Manifest file name inside every verified directory save.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest schema version (bump on incompatible change).
MANIFEST_FORMAT = 1

_CHUNK = 1 << 20


def file_checksum(path: str | Path) -> int:
    """Streaming CRC-32 of one file (flat memory for any size)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def write_manifest(directory: str | Path) -> Path:
    """Record size + CRC-32 of every payload file under ``directory``.

    Covers regular files in the directory itself (not subdirectories:
    a sharded save gives each ``shard_NNNN/`` its own manifest so
    workers verify only the slice they load).  The manifest itself is
    written atomically (tmp + ``os.replace``) and *last*, so a crash
    mid-save leaves a directory whose missing/stale manifest is
    detectable rather than a silently inconsistent one.
    """
    directory = Path(directory)
    files = {}
    for path in sorted(directory.iterdir()):
        if not path.is_file() or path.name == MANIFEST_NAME:
            continue
        files[path.name] = {
            "size": path.stat().st_size,
            "crc32": file_checksum(path),
        }
    manifest = {"format": MANIFEST_FORMAT, "files": files}
    target = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=0, sort_keys=True))
    os.replace(tmp, target)
    return target


def read_manifest(directory: str | Path) -> dict | None:
    """The parsed manifest of ``directory``, or None when absent."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CorruptIndexError(
            f"unreadable manifest {path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or "files" not in manifest:
        raise CorruptIndexError(f"malformed manifest {path}")
    return manifest


def verify_manifest(directory: str | Path, deep: bool = False) -> bool:
    """Check ``directory`` against its manifest; raise on mismatch.

    Returns True when a manifest was present and every listed file
    matched, False when no manifest exists (legacy save -- nothing to
    verify).  ``deep=True`` additionally re-computes each file's
    CRC-32; the default checks existence + size only, which is what
    catches the common failure (a truncated write) at O(1) cost per
    file.  Raises :class:`CorruptIndexError` naming the first bad
    column.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    if manifest is None:
        return False
    for name, expected in sorted(manifest["files"].items()):
        column = name.removesuffix(".npy")
        path = directory / name
        if not path.exists():
            raise CorruptIndexError(
                f"corrupt index {directory}: column {column!r} is missing "
                f"({name} not found)",
                column=column,
            )
        size = path.stat().st_size
        if size != expected["size"]:
            raise CorruptIndexError(
                f"corrupt index {directory}: column {column!r} is "
                f"truncated or resized ({size} bytes on disk, manifest "
                f"says {expected['size']})",
                column=column,
            )
        if deep and file_checksum(path) != expected["crc32"]:
            raise CorruptIndexError(
                f"corrupt index {directory}: column {column!r} fails its "
                "checksum (bytes changed since the save)",
                column=column,
            )
    return True


def checked_load(
    directory: str | Path, name: str, mmap_mode: str | None = None
) -> np.ndarray:
    """``np.load`` of one column file with typed failure.

    Any read/parse failure -- missing file, truncated data, a header
    numpy cannot parse, an mmap longer than the file -- surfaces as
    :class:`CorruptIndexError` naming the column, so callers never see
    a bare ``ValueError`` from deep inside numpy.
    """
    column = name.removesuffix(".npy")
    path = Path(directory) / name
    try:
        return np.load(path, mmap_mode=mmap_mode)
    except FileNotFoundError as exc:
        raise CorruptIndexError(
            f"corrupt or incomplete index {directory}: column {column!r} "
            f"is missing",
            column=column,
        ) from exc
    except (ValueError, OSError, EOFError) as exc:
        raise CorruptIndexError(
            f"corrupt index {directory}: column {column!r} failed to "
            f"load: {exc}",
            column=column,
        ) from exc


@contextmanager
def atomic_directory(path: str | Path) -> Iterator[Path]:
    """Stage a directory write, then publish it atomically.

    Yields a temporary sibling directory for the caller to fill.  On
    clean exit, a manifest is written into it and it is renamed over
    ``path`` (an existing target is renamed aside first, then
    removed).  On exception the staging directory is deleted and the
    target is left exactly as it was -- an interrupted save can never
    leave a half-written index in place.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        yield tmp
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    write_manifest(tmp)
    if path.exists():
        old = path.with_name(f".{path.name}.old-{os.getpid()}")
        if old.exists():
            shutil.rmtree(old)
        os.replace(path, old)
        os.replace(tmp, path)
        shutil.rmtree(old, ignore_errors=True)
    else:
        os.replace(tmp, path)


def atomic_save_npz(path: str | Path, **arrays: np.ndarray) -> None:
    """``np.savez_compressed`` through a tmp file + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # The tmp name keeps the .npz suffix so np.savez does not append
    # another one.
    tmp = path.with_name(f".{path.stem}.tmp-{os.getpid()}.npz")
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_save_npy(path: str | Path, array: np.ndarray) -> None:
    """``np.save`` through a tmp file + ``os.replace``.

    For single ``.npy`` columns written next to already-published data
    (e.g. the sharded save's top-level metadata): readers see the old
    file or the complete new file, never a truncated one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.tmp-{os.getpid()}.npy")
    try:
        np.save(tmp, array)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Replace ``path`` with ``text`` via a tmp file + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def append_record(path: str | Path, line: str) -> None:
    """Append one record line to a trajectory file, crash-safely.

    The line (newline added if missing) goes out in a single
    ``write`` on an ``O_APPEND`` descriptor and is flushed before
    close, so concurrent benchmark runs interleave whole records and a
    crash can only lose the final line, never tear one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not line.endswith("\n"):
        line += "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
