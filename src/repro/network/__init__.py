"""Spatial-network substrate: graphs, shortest paths, generators, I/O.

The classes and functions re-exported here are the stable public
surface of the network layer:

* :class:`SpatialNetwork` -- the graph container everything runs on,
* :func:`shortest_path_tree` / :func:`shortest_path` /
  :class:`IncrementalDijkstra` -- instrumented Dijkstra,
* :func:`astar_path` -- exact point-to-point A*,
* :func:`all_pairs_rows` -- the chunked all-pairs driver feeding the
  SILC precompute,
* the three generators and file I/O helpers.
"""

from repro.network.errors import (
    DisconnectedNetwork,
    EdgeNotFound,
    GraphConstructionError,
    NetworkError,
    PathNotFound,
    VertexNotFound,
)
from repro.network.graph import SpatialNetwork
from repro.network.dijkstra import (
    DijkstraStats,
    IncrementalDijkstra,
    ShortestPathTree,
    shortest_path,
    shortest_path_tree,
)
from repro.network.astar import astar_path, network_distance
from repro.network.allpairs import (
    all_pairs_rows,
    distance_matrix,
    first_hops_from_predecessors,
    single_source_row,
)
from repro.network.generators import (
    grid_network,
    random_planar_network,
    road_like_network,
)
from repro.network.io import load_npz, load_text, save_npz, save_text

__all__ = [
    "NetworkError",
    "GraphConstructionError",
    "VertexNotFound",
    "EdgeNotFound",
    "DisconnectedNetwork",
    "PathNotFound",
    "SpatialNetwork",
    "DijkstraStats",
    "ShortestPathTree",
    "shortest_path",
    "shortest_path_tree",
    "IncrementalDijkstra",
    "astar_path",
    "network_distance",
    "all_pairs_rows",
    "single_source_row",
    "first_hops_from_predecessors",
    "distance_matrix",
    "grid_network",
    "random_planar_network",
    "road_like_network",
    "save_npz",
    "load_npz",
    "save_text",
    "load_text",
]
