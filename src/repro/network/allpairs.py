"""All-pairs shortest-path rows with first-hop extraction.

The SILC precompute needs, for every source vertex ``u``, two arrays
over all destinations ``v``:

* ``dist[v]``   -- the network distance ``d_G(u, v)``, and
* ``first[v]``  -- the *first hop*: the neighbor of ``u`` that begins
  the shortest path ``u -> v`` (this is the "color" of ``v`` in the
  paper's shortest-path map of ``u``).

Running the pure-Python Dijkstra ``N`` times is exactly the cost the
repro band warned about, so this module drives
:func:`scipy.sparse.csgraph.dijkstra` in source *chunks* (C speed,
bounded memory) and recovers first hops from the predecessor matrix
with a vectorized pointer-doubling pass: turn every child of the
source into a fixed point of the predecessor function, then square the
function until it converges -- each vertex lands on the child of the
source that roots its subtree, which is precisely the first hop.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np
from scipy.sparse import csgraph

from repro.network.graph import SpatialNetwork

#: scipy's "no predecessor" sentinel.
_NO_PRED = -9999


def first_hops_from_predecessors(
    pred: np.ndarray, sources: Sequence[int]
) -> np.ndarray:
    """Derive first-hop matrices from scipy predecessor matrices.

    Parameters
    ----------
    pred:
        ``(k, n)`` predecessor matrix from ``csgraph.dijkstra`` for the
        given ``k`` sources (entries ``-9999`` where no predecessor).
    sources:
        The source vertex for each row.

    Returns
    -------
    ``(k, n)`` int32 matrix ``F`` with ``F[i, v]`` = first hop of the
    path ``sources[i] -> v``; ``F[i, sources[i]] = sources[i]`` and
    ``F[i, v] = -1`` for unreachable ``v``.
    """
    pred = np.asarray(pred)
    if pred.ndim == 1:
        pred = pred[np.newaxis, :]
    k, n = pred.shape
    if len(sources) != k:
        raise ValueError(f"{k} predecessor rows but {len(sources)} sources")
    src = np.asarray(sources, dtype=np.int64)

    rows = np.arange(k)[:, np.newaxis]
    verts = np.arange(n, dtype=np.int64)[np.newaxis, :]

    unreachable = pred == _NO_PRED
    # Jump function: children of the source (and the source itself, and
    # unreachable vertices) become fixed points; everything else points
    # at its predecessor.
    jump = pred.astype(np.int64, copy=True)
    fixed = unreachable | (pred == src[:, np.newaxis])
    jump = np.where(fixed, verts, jump)
    jump[rows[:, 0], src] = src

    # Pointer doubling: composing the jump function with itself halves
    # the remaining chain length each pass, so convergence takes
    # O(log(max path hops)) gathers.
    for _ in range(2 * int(np.ceil(np.log2(max(n, 2)))) + 2):
        nxt = jump[rows, jump]
        if np.array_equal(nxt, jump):
            break
        jump = nxt

    first = jump.astype(np.int32)
    first[unreachable] = -1
    first[rows[:, 0], src] = src.astype(np.int32)
    return first


def materialize_sources(
    network: SpatialNetwork, sources: Sequence[int] | None
) -> list[int] | None:
    """Validate and materialize a ``sources`` argument.

    Accepts any iterable -- including a one-shot generator, which would
    otherwise be silently exhausted by a ``len(list(...))`` probe -- and
    returns a plain list of vertex ids, or ``None`` when ``sources`` is
    ``None`` (meaning: every vertex).  Every id is range-checked here so
    consumers can iterate without re-validating.
    """
    if sources is None:
        return None
    out = [int(s) for s in sources]
    for s in out:
        network.check_vertex(s)
    return out


def single_source_row(
    network: SpatialNetwork, source: int, limit: float = np.inf
) -> tuple[np.ndarray, np.ndarray]:
    """Distance and first-hop arrays for one source vertex.

    ``limit`` truncates the expansion at a network-distance horizon
    (the proximal-index strategy of the paper's p.27): vertices beyond
    it report distance ``inf`` and first hop ``-1``.
    """
    network.check_vertex(source)
    dist, pred = csgraph.dijkstra(
        network.to_csr(), indices=[source], return_predecessors=True, limit=limit
    )
    first = first_hops_from_predecessors(pred, [source])
    return dist[0], first[0]


def all_pairs_rows(
    network: SpatialNetwork,
    chunk_size: int = 128,
    sources: Sequence[int] | None = None,
    limit: float = np.inf,
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Stream ``(source, dist_row, first_hop_row)`` for many sources.

    Memory stays bounded at ``O(chunk_size * n)`` regardless of network
    size, so the SILC build can consume one source at a time, build its
    shortest-path quadtree, and discard the rows.  ``limit`` bounds the
    per-source horizon as in :func:`single_source_row`.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    all_sources = materialize_sources(network, sources)
    if all_sources is None:
        all_sources = list(network.vertices())
    csr = network.to_csr()
    for start in range(0, len(all_sources), chunk_size):
        chunk = all_sources[start : start + chunk_size]
        dist, pred = csgraph.dijkstra(
            csr, indices=chunk, return_predecessors=True, limit=limit
        )
        first = first_hops_from_predecessors(pred, chunk)
        for i, s in enumerate(chunk):
            yield (s, dist[i], first[i])


def distance_matrix(network: SpatialNetwork) -> np.ndarray:
    """Dense all-pairs distance matrix (test/verification sizes only)."""
    return csgraph.dijkstra(network.to_csr())
