"""A* point-to-point search with a Euclidean lower-bound heuristic.

The paper cites Goldberg & Harrelson's "A* search meets graph theory"
as the state of the art for single-pair queries without precomputation.
We provide it both as a fair point-to-point engine for the IER
baseline and as another point in the design space the benchmarks can
report against.

Admissibility: for networks whose edge weights are at least the
Euclidean length of the edge (every generator in this package
guarantees that; see :meth:`SpatialNetwork.min_euclidean_ratio`),
straight-line distance never overestimates network distance, so A*
returns exact shortest paths.
"""

from __future__ import annotations

import heapq
import math

from repro.network.dijkstra import DijkstraStats
from repro.network.errors import PathNotFound
from repro.network.graph import SpatialNetwork


def astar_path(
    network: SpatialNetwork,
    source: int,
    target: int,
    heuristic_scale: float = 1.0,
) -> tuple[list[int], float, DijkstraStats]:
    """Exact shortest path via A* with the Euclidean heuristic.

    Parameters
    ----------
    heuristic_scale:
        Multiplier applied to the Euclidean heuristic.  Must not exceed
        the network's minimum weight/Euclidean ratio or the result may
        be inexact; 1.0 is always safe for generator-produced networks.

    Returns ``(path, distance, stats)``; ``stats.settled`` counts the
    vertices A* expanded, directly comparable to the Dijkstra numbers
    in the motivation experiment.
    """
    network.check_vertex(source)
    network.check_vertex(target)
    if heuristic_scale < 0:
        raise ValueError("heuristic_scale must be non-negative")

    xs, ys = network.xs, network.ys
    tx, ty = float(xs[target]), float(ys[target])

    def h(u: int) -> float:
        return heuristic_scale * math.hypot(float(xs[u]) - tx, float(ys[u]) - ty)

    n = network.num_vertices
    dist = [math.inf] * n
    pred = [-1] * n
    done = [False] * n
    stats = DijkstraStats()

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(h(source), source)]
    stats.pushes += 1

    while heap:
        _, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        stats.settled += 1
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(pred[path[-1]])
            path.reverse()
            return path, dist[target], stats
        du = dist[u]
        for v, w in network.neighbors(u):
            stats.relaxed += 1
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd + h(v), v))
                stats.pushes += 1

    raise PathNotFound(source, target)


def network_distance(network: SpatialNetwork, source: int, target: int) -> float:
    """Exact network distance between two vertices (A* under the hood)."""
    if source == target:
        return 0.0
    _, dist, _ = astar_path(network, source, target)
    return dist
