"""Instrumented pure-Python Dijkstra.

The paper's central motivation is that Dijkstra's algorithm "visits too
many vertices" (3191 of 4233 in their example) and therefore cannot
serve real-time queries.  To reproduce that argument we need a Dijkstra
that *counts what it touches*: settled vertices, relaxed edges and
priority-queue traffic.  The same machinery doubles as the INE baseline
(Dijkstra run incrementally over the network, Papadias et al. 2003).

Three entry points:

* :func:`shortest_path_tree` -- classic single-source run with optional
  early-exit target set, returning distances + predecessors + counters,
* :func:`shortest_path` -- point-to-point convenience wrapper,
* :class:`IncrementalDijkstra` -- a resumable expansion that yields
  vertices in increasing distance order, which is exactly the engine
  INE needs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.network.errors import PathNotFound
from repro.network.graph import SpatialNetwork


@dataclass
class DijkstraStats:
    """Work counters for one Dijkstra run.

    ``settled`` is the paper's "visited vertices" number; ``relaxed``
    counts edge relaxations; ``pushes`` counts heap insertions
    (including the stale entries lazy deletion leaves behind).
    """

    settled: int = 0
    relaxed: int = 0
    pushes: int = 0


@dataclass
class ShortestPathTree:
    """Result of a single-source Dijkstra run.

    ``dist[v]`` is ``math.inf`` and ``pred[v]`` is ``-1`` for vertices
    that were not reached (either unreachable or cut off by early
    exit).
    """

    source: int
    dist: list[float]
    pred: list[int]
    stats: DijkstraStats = field(default_factory=DijkstraStats)

    def path_to(self, target: int) -> list[int]:
        """The vertex sequence from the source to ``target``.

        Raises :class:`PathNotFound` when the target was not reached.
        """
        if not math.isfinite(self.dist[target]):
            raise PathNotFound(self.source, target)
        path = [target]
        while path[-1] != self.source:
            path.append(self.pred[path[-1]])
        path.reverse()
        return path


def shortest_path_tree(
    network: SpatialNetwork,
    source: int,
    targets: Iterable[int] | None = None,
) -> ShortestPathTree:
    """Single-source shortest paths with optional early exit.

    Parameters
    ----------
    network:
        The spatial network to search.
    source:
        Start vertex.
    targets:
        If given, the search stops as soon as every target has been
        settled; distances of unsettled vertices remain ``inf``.
    """
    network.check_vertex(source)
    n = network.num_vertices
    remaining = None
    if targets is not None:
        remaining = {network.check_vertex(t) for t in targets}

    dist = [math.inf] * n
    pred = [-1] * n
    done = [False] * n
    stats = DijkstraStats()

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    stats.pushes += 1

    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        stats.settled += 1
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in network.neighbors(u):
            stats.relaxed += 1
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
                stats.pushes += 1

    return ShortestPathTree(source=source, dist=dist, pred=pred, stats=stats)


def shortest_path(
    network: SpatialNetwork, source: int, target: int
) -> tuple[list[int], float, DijkstraStats]:
    """Point-to-point shortest path via early-exit Dijkstra.

    Returns ``(path, distance, stats)``.  Raises
    :class:`PathNotFound` when the target is unreachable.
    """
    tree = shortest_path_tree(network, source, targets=[target])
    path = tree.path_to(target)
    return path, tree.dist[target], tree.stats


class IncrementalDijkstra:
    """Resumable Dijkstra expansion in increasing distance order.

    ``expand_until(limit)`` settles vertices until the next candidate
    lies beyond ``limit``; calling it again with a larger limit resumes
    where the previous call stopped.  INE uses this to grow its search
    ball exactly as far as the current k-th neighbor requires and no
    farther.
    """

    def __init__(
        self,
        network: SpatialNetwork,
        source: int | None = None,
        seeds: Iterable[tuple[int, float]] | None = None,
    ) -> None:
        """Start an expansion from a vertex or from weighted seeds.

        ``seeds`` generalizes the source to several start vertices with
        initial distances -- the anchor decomposition of a query
        located partway along an edge.
        """
        if (source is None) == (seeds is None):
            raise ValueError("provide exactly one of source or seeds")
        self._network = network
        n = network.num_vertices
        self.dist: list[float] = [math.inf] * n
        self.pred: list[int] = [-1] * n
        self._done = [False] * n
        self._heap: list[tuple[float, int]] = []
        self.stats = DijkstraStats()
        start = [(source, 0.0)] if seeds is None else list(seeds)
        self.source = start[0][0]
        for v, d in start:
            network.check_vertex(v)
            if d < 0:
                raise ValueError("seed distances must be non-negative")
            if d < self.dist[v]:
                self.dist[v] = d
                heapq.heappush(self._heap, (d, v))
                self.stats.pushes += 1

    @property
    def exhausted(self) -> bool:
        """True when every reachable vertex has been settled."""
        return not self._heap

    def next_frontier_distance(self) -> float:
        """Distance of the nearest unsettled vertex (``inf`` if none).

        Skips stale heap entries without settling anything.
        """
        while self._heap and self._done[self._heap[0][1]]:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else math.inf

    def settle_next(self) -> tuple[int, float] | None:
        """Settle and return the next nearest vertex, or ``None``."""
        while self._heap:
            d, u = heapq.heappop(self._heap)
            if self._done[u]:
                continue
            self._done[u] = True
            self.stats.settled += 1
            for v, w in self._network.neighbors(u):
                self.stats.relaxed += 1
                nd = d + w
                if nd < self.dist[v]:
                    self.dist[v] = nd
                    self.pred[v] = u
                    heapq.heappush(self._heap, (nd, v))
                    self.stats.pushes += 1
            return (u, d)
        return None

    def expand_until(self, limit: float) -> Iterator[tuple[int, float]]:
        """Yield settled ``(vertex, distance)`` pairs with distance <= limit."""
        while self.next_frontier_distance() <= limit:
            settled = self.settle_next()
            if settled is None:
                return
            yield settled

    def is_settled(self, u: int) -> bool:
        return self._done[u]
