"""Exception hierarchy for the spatial-network layer.

A single root type, :class:`NetworkError`, lets callers catch every
network-layer failure with one ``except`` clause while still being able
to distinguish construction errors from query-time errors.
"""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for all spatial-network errors."""


class GraphConstructionError(NetworkError):
    """The vertex/edge data handed to :class:`SpatialNetwork` is invalid."""


class VertexNotFound(NetworkError, KeyError):
    """A vertex id outside ``[0, num_vertices)`` was referenced."""

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(f"vertex {vertex} not in [0, {num_vertices})")
        self.vertex = vertex
        self.num_vertices = num_vertices


class EdgeNotFound(NetworkError, KeyError):
    """No edge exists between the given pair of vertices."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no edge {source} -> {target}")
        self.source = source
        self.target = target


class DisconnectedNetwork(NetworkError):
    """An operation requiring strong connectivity saw a disconnected graph.

    SILC precomputes a shortest path between *every* pair of vertices,
    so the framework requires strongly connected inputs; generators in
    :mod:`repro.network.generators` always return such networks.
    """

    def __init__(self, num_components: int) -> None:
        super().__init__(
            f"network has {num_components} strongly connected components; "
            "SILC requires exactly 1"
        )
        self.num_components = num_components


class PathNotFound(NetworkError):
    """No path exists between the requested source and destination."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from {source} to {target}")
        self.source = source
        self.target = target
