"""Synthetic spatial-network generators.

The paper evaluates on a real road map (the US eastern seaboard,
91,113 vertices).  That dataset is not available offline, so these
generators synthesize networks that preserve the structural properties
every claim in the paper depends on:

* **planarity** -- shortest-path regions of planar networks are
  spatially contiguous, which is what makes shortest-path quadtrees
  small (the O(N^1.5) storage claim);
* **low average degree** (roads average ~2.5 edges per intersection);
* **near-metric weights** -- edge weight >= Euclidean length, with the
  ratio bounded, so Euclidean distance is a meaningful lower bound
  (required by IER and by the lambda-interval machinery);
* **road-class structure** -- a fast-arterial subset creates the path
  coherence (shared path prefixes) that SILC compresses.

Three generators, all strongly connected by construction and fully
deterministic under a seed:

* :func:`grid_network` -- a jittered lattice (the canonical worst/best
  case used in the paper's complexity analysis, p.16);
* :func:`random_planar_network` -- Delaunay triangulation of random
  points (denser, degree ~6: an upper bound for quadtree sizes);
* :func:`road_like_network` -- the evaluation workhorse: Delaunay
  skeleton thinned to road-like degree with an arterial-highway tier.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph
from scipy.spatial import Delaunay

from repro.network.errors import GraphConstructionError
from repro.network.graph import SpatialNetwork


def _both_directions(
    edges: list[tuple[int, int, float]]
) -> list[tuple[int, int, float]]:
    """Duplicate undirected edges into both directed orientations."""
    out = []
    for u, v, w in edges:
        out.append((u, v, w))
        out.append((v, u, w))
    return out


def grid_network(
    rows: int,
    cols: int,
    jitter: float = 0.0,
    weight_noise: float = 0.0,
    seed: int = 0,
) -> SpatialNetwork:
    """A 4-connected lattice of ``rows x cols`` intersections.

    Parameters
    ----------
    jitter:
        Vertex positions are displaced uniformly in
        ``[-jitter/2, jitter/2]`` (units of grid spacing 1.0).  Keep
        below ~0.4 to preserve planarity of the lattice edges.
    weight_noise:
        Edge weight is Euclidean length times
        ``1 + U[0, weight_noise]``: zero gives pure metric weights.
    """
    if rows < 2 or cols < 2:
        raise GraphConstructionError("grid needs at least 2 rows and 2 columns")
    if not (0.0 <= jitter < 1.0):
        raise GraphConstructionError("jitter must be in [0, 1)")
    if weight_noise < 0.0:
        raise GraphConstructionError("weight_noise must be non-negative")

    rng = np.random.default_rng(seed)
    gy, gx = np.mgrid[0:rows, 0:cols]
    xs = gx.ravel().astype(float)
    ys = gy.ravel().astype(float)
    if jitter > 0.0:
        xs = xs + rng.uniform(-jitter / 2, jitter / 2, xs.size)
        ys = ys + rng.uniform(-jitter / 2, jitter / 2, ys.size)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    undirected: list[tuple[int, int, float]] = []
    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                r2, c2 = r + dr, c + dc
                if r2 < rows and c2 < cols:
                    u, v = vid(r, c), vid(r2, c2)
                    length = float(np.hypot(xs[u] - xs[v], ys[u] - ys[v]))
                    w = length * (1.0 + rng.uniform(0.0, weight_noise))
                    undirected.append((u, v, w))

    return SpatialNetwork(xs, ys, _both_directions(undirected))


def _delaunay_edges(xs: np.ndarray, ys: np.ndarray) -> set[tuple[int, int]]:
    """Undirected edge set of the Delaunay triangulation of the points."""
    tri = Delaunay(np.column_stack([xs, ys]))
    edges: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((min(u, v), max(u, v)))
    return edges


def random_planar_network(
    n: int,
    seed: int = 0,
    weight_noise: float = 0.3,
) -> SpatialNetwork:
    """Delaunay triangulation of ``n`` uniform random points.

    Delaunay graphs are planar and connected, so the result is strongly
    connected once both edge directions are added.  Average degree ~6
    makes this the densest of the three generator families.
    """
    if n < 3:
        raise GraphConstructionError("Delaunay needs at least 3 points")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 100.0, n)
    ys = rng.uniform(0.0, 100.0, n)
    undirected = []
    for u, v in sorted(_delaunay_edges(xs, ys)):
        length = float(np.hypot(xs[u] - xs[v], ys[u] - ys[v]))
        w = length * (1.0 + rng.uniform(0.0, weight_noise))
        undirected.append((u, v, w))
    return SpatialNetwork(xs, ys, _both_directions(undirected))


def road_like_network(
    n: int,
    seed: int = 0,
    extra_edge_fraction: float = 0.25,
    arterial_fraction: float = 0.12,
    local_penalty: float = 1.6,
) -> SpatialNetwork:
    """The evaluation substrate: a synthetic road network.

    Construction:

    1. scatter ``n`` intersections as a jittered grid (road networks
       are near-uniform in density, not Poisson);
    2. Delaunay-triangulate and keep the Euclidean minimum spanning
       tree (guaranteeing connectivity) plus a random
       ``extra_edge_fraction`` of the remaining Delaunay edges -- this
       thins average degree to the ~2.4-3 observed in road data;
    3. promote the longest ``arterial_fraction`` of edges to
       "arterials" with weight = Euclidean length (fast roads), while
       local roads pay ``local_penalty`` times their length.

    The two-tier weights reproduce the *path coherence* of real road
    networks (distant destinations share arterial prefixes), which is
    the property the shortest-path quadtree compresses.
    """
    if n < 4:
        raise GraphConstructionError("road-like network needs at least 4 vertices")
    if not (0.0 <= extra_edge_fraction <= 1.0):
        raise GraphConstructionError("extra_edge_fraction must be in [0, 1]")
    if not (0.0 <= arterial_fraction <= 1.0):
        raise GraphConstructionError("arterial_fraction must be in [0, 1]")
    if local_penalty < 1.0:
        raise GraphConstructionError("local_penalty must be >= 1")

    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(n)))
    gy, gx = np.mgrid[0:side, 0:side]
    xs = gx.ravel().astype(float)[:n]
    ys = gy.ravel().astype(float)[:n]
    xs = xs + rng.uniform(-0.35, 0.35, n)
    ys = ys + rng.uniform(-0.35, 0.35, n)

    dedges = sorted(_delaunay_edges(xs, ys))
    lengths = np.array(
        [np.hypot(xs[u] - xs[v], ys[u] - ys[v]) for u, v in dedges]
    )

    # Euclidean MST over the Delaunay edges guarantees connectivity.
    row = np.array([e[0] for e in dedges])
    col = np.array([e[1] for e in dedges])
    graph = sparse.csr_matrix((lengths, (row, col)), shape=(n, n))
    mst = csgraph.minimum_spanning_tree(graph).tocoo()
    mst_edges = {
        (min(int(r), int(c)), max(int(r), int(c)))
        for r, c in zip(mst.row, mst.col, strict=True)
    }

    keep: list[int] = []
    for i, e in enumerate(dedges):
        if e in mst_edges or rng.random() < extra_edge_fraction:
            keep.append(i)

    kept_lengths = lengths[keep]
    if arterial_fraction > 0 and kept_lengths.size:
        cutoff = float(np.quantile(kept_lengths, 1.0 - arterial_fraction))
    else:
        cutoff = np.inf

    undirected: list[tuple[int, int, float]] = []
    for i in keep:
        u, v = dedges[i]
        length = float(lengths[i])
        w = length if length >= cutoff else length * local_penalty
        undirected.append((u, v, w))

    return SpatialNetwork(xs, ys, _both_directions(undirected))
