"""The spatial network: a weighted directed graph embedded in the plane.

This is the substrate every part of the paper runs on.  Each vertex
carries a planar position (a road intersection); each directed edge a
positive travel cost (road-segment length or time).  The class is a
frozen, validated container optimized for the two access patterns the
reproduction needs:

* fast neighbor scans in pure-Python Dijkstra/A* (adjacency lists of
  ``(target, weight)`` tuples), and
* bulk linear algebra in the SILC precompute (scipy CSR matrix and
  numpy coordinate arrays).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.errors import (
    DisconnectedNetwork,
    EdgeNotFound,
    GraphConstructionError,
    VertexNotFound,
)


class SpatialNetwork:
    """A directed, positively weighted graph with planar vertex positions.

    Parameters
    ----------
    xs, ys:
        Vertex coordinates; vertex ids are the array indices
        ``0 .. n-1``.
    edges:
        Iterable of ``(source, target, weight)`` triples.  Weights must
        be strictly positive; parallel edges collapse to the minimum
        weight (the cheaper road wins, as in any route planner).

    Notes
    -----
    Instances are immutable after construction.  Use
    :meth:`with_edges` / :meth:`without_edges` to derive modified
    networks (e.g. for the road-closure example).
    """

    __slots__ = ("xs", "ys", "_adj", "_radj", "_edge_count", "_csr_cache", "_ratio_cache")

    def __init__(
        self,
        xs: Sequence[float] | np.ndarray,
        ys: Sequence[float] | np.ndarray,
        edges: Iterable[tuple[int, int, float]],
    ) -> None:
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        if self.xs.ndim != 1 or self.ys.ndim != 1:
            raise GraphConstructionError("coordinate arrays must be 1-D")
        if self.xs.shape != self.ys.shape:
            raise GraphConstructionError(
                f"coordinate arrays disagree: {self.xs.shape} vs {self.ys.shape}"
            )
        if self.xs.size == 0:
            raise GraphConstructionError("a spatial network needs at least one vertex")
        if not (np.isfinite(self.xs).all() and np.isfinite(self.ys).all()):
            raise GraphConstructionError("vertex coordinates must be finite")

        n = self.xs.size
        best: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in edges:
            if not (0 <= u < n):
                raise VertexNotFound(u, n)
            if not (0 <= v < n):
                raise VertexNotFound(v, n)
            if u == v:
                raise GraphConstructionError(f"self-loop at vertex {u}")
            wf = float(w)
            if not (wf > 0.0) or not np.isfinite(wf):
                raise GraphConstructionError(
                    f"edge {u}->{v} has non-positive or non-finite weight {w}"
                )
            prev = best[u].get(v)
            if prev is None or wf < prev:
                best[u][v] = wf

        self._adj: list[tuple[tuple[int, float], ...]] = [
            tuple(sorted(d.items())) for d in best
        ]
        radj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for u, d in enumerate(best):
            for v, w in d.items():
                radj[v].append((u, w))
        self._radj: list[tuple[tuple[int, float], ...]] = [
            tuple(sorted(r)) for r in radj
        ]
        self._edge_count = sum(len(d) for d in best)
        self._csr_cache: sparse.csr_matrix | None = None
        self._ratio_cache: float | None = None

    @classmethod
    def from_csr(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        csr: sparse.csr_matrix,
    ) -> SpatialNetwork:
        """Trusted reconstruction from a CSR adjacency matrix.

        The inverse of :meth:`to_csr` for matrices that *came from*
        :meth:`to_csr` (canonical CSR: per-row sorted unique columns,
        positive finite weights).  Skips per-edge validation and the
        dict-based dedup pass of ``__init__``, so a parallel-build
        worker can rebuild the network from shared-memory CSR buffers
        in O(E) cheap operations instead of re-pickling the object
        graph.  The resulting adjacency is identical to the original
        network's (same order, same weights).
        """
        self = object.__new__(cls)
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        n = self.xs.size
        indptr = csr.indptr
        targets = csr.indices.tolist()
        weights = csr.data.tolist()
        bounds = indptr.tolist()
        adj: list[tuple[tuple[int, float], ...]] = []
        radj_lists: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for u in range(n):
            lo, hi = bounds[u], bounds[u + 1]
            row = tuple(zip(targets[lo:hi], weights[lo:hi], strict=True))
            adj.append(row)
            for v, w in row:
                radj_lists[v].append((u, w))
        self._adj = adj
        self._radj = [tuple(sorted(r)) for r in radj_lists]
        self._edge_count = len(targets)
        self._csr_cache = csr
        self._ratio_cache = None
        return self

    # ------------------------------------------------------------------
    # Sizes and iteration
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.xs.size)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def vertices(self) -> range:
        return range(self.num_vertices)

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every directed edge as ``(source, target, weight)``."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs:
                yield (u, v, w)

    # ------------------------------------------------------------------
    # Vertex / edge access
    # ------------------------------------------------------------------
    def check_vertex(self, u: int) -> int:
        if not (0 <= u < self.num_vertices):
            raise VertexNotFound(u, self.num_vertices)
        return u

    def vertex_point(self, u: int) -> Point:
        self.check_vertex(u)
        return Point(float(self.xs[u]), float(self.ys[u]))

    def neighbors(self, u: int) -> tuple[tuple[int, float], ...]:
        """Outgoing ``(target, weight)`` pairs of ``u``, sorted by target."""
        self.check_vertex(u)
        return self._adj[u]

    def in_neighbors(self, u: int) -> tuple[tuple[int, float], ...]:
        """Incoming ``(source, weight)`` pairs of ``u``, sorted by source."""
        self.check_vertex(u)
        return self._radj[u]

    def out_degree(self, u: int) -> int:
        return len(self.neighbors(u))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the directed edge ``u -> v``.

        Raises :class:`EdgeNotFound` if the edge does not exist.
        """
        for t, w in self.neighbors(u):
            if t == v:
                return w
        raise EdgeNotFound(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        try:
            self.edge_weight(u, v)
        except EdgeNotFound:
            return False
        return True

    def euclidean(self, u: int, v: int) -> float:
        """Straight-line ("as the crow flies") distance between vertices."""
        self.check_vertex(u)
        self.check_vertex(v)
        return float(np.hypot(self.xs[u] - self.xs[v], self.ys[u] - self.ys[v]))

    # ------------------------------------------------------------------
    # Bulk / linear-algebra views
    # ------------------------------------------------------------------
    def to_csr(self) -> sparse.csr_matrix:
        """The weighted adjacency matrix in CSR form (cached).

        Missing edges are structural zeros, as expected by
        :func:`scipy.sparse.csgraph.dijkstra`.
        """
        if self._csr_cache is None:
            rows: list[int] = []
            cols: list[int] = []
            vals: list[float] = []
            for u, v, w in self.iter_edges():
                rows.append(u)
                cols.append(v)
                vals.append(w)
            self._csr_cache = sparse.csr_matrix(
                (vals, (rows, cols)),
                shape=(self.num_vertices, self.num_vertices),
            )
        return self._csr_cache

    def bounding_box(self) -> Rect:
        return Rect(
            float(self.xs.min()),
            float(self.ys.min()),
            float(self.xs.max()),
            float(self.ys.max()),
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def num_strongly_connected_components(self) -> int:
        n_comp, _ = csgraph.connected_components(self.to_csr(), connection="strong")
        return int(n_comp)

    def require_strongly_connected(self) -> None:
        """Raise :class:`DisconnectedNetwork` unless the graph is one SCC.

        The SILC precompute colors *every* vertex from every source, so
        it calls this before doing any work.
        """
        n = self.num_strongly_connected_components()
        if n != 1:
            raise DisconnectedNetwork(n)

    def min_euclidean_ratio(self) -> float:
        """Smallest edge-weight / Euclidean-length ratio over all edges.

        A ratio >= 1 means network distance dominates straight-line
        distance, which makes Euclidean distance an admissible A*
        heuristic (and the IER filter correct).  Generators in this
        package guarantee ratio >= 1.  The value is cached: the graph
        is immutable.
        """
        if self._ratio_cache is None:
            ratio = np.inf
            for u, v, w in self.iter_edges():
                d = self.euclidean(u, v)
                if d > 0:
                    ratio = min(ratio, w / d)
            self._ratio_cache = float(ratio)
        return self._ratio_cache

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_edges(self, extra: Iterable[tuple[int, int, float]]) -> SpatialNetwork:
        """A new network with additional edges."""
        return SpatialNetwork(
            self.xs, self.ys, list(self.iter_edges()) + list(extra)
        )

    def without_edges(self, removed: Iterable[tuple[int, int]]) -> SpatialNetwork:
        """A new network with the given directed edges removed.

        Models the paper's road-closure update scenario: derive a new
        network and rebuild only what changed.
        """
        gone = set(removed)
        kept = [(u, v, w) for u, v, w in self.iter_edges() if (u, v) not in gone]
        return SpatialNetwork(self.xs, self.ys, kept)

    def nearest_vertex(self, p: Point) -> int:
        """The vertex closest (Euclidean) to an arbitrary world point.

        Used to snap free-floating query locations onto the network.
        """
        d2 = (self.xs - p.x) ** 2 + (self.ys - p.y) ** 2
        return int(np.argmin(d2))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpatialNetwork(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
