"""Reading and writing spatial networks.

Two formats:

* a compact ``.npz`` binary (coordinate arrays + edge arrays) for
  round-tripping generated networks between benchmark runs, and
* a human-readable text format close to the edge lists that road
  datasets (TIGER/Line extracts, the 9th DIMACS challenge files) ship
  in, so real data can be dropped in when available::

      v <id> <x> <y>
      e <source> <target> <weight>
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.network.errors import GraphConstructionError
from repro.network.graph import SpatialNetwork


def save_npz(network: SpatialNetwork, path: str | Path) -> None:
    """Write the network to a ``.npz`` archive."""
    edges = list(network.iter_edges())
    np.savez_compressed(
        Path(path),
        xs=network.xs,
        ys=network.ys,
        edge_src=np.array([e[0] for e in edges], dtype=np.int64),
        edge_dst=np.array([e[1] for e in edges], dtype=np.int64),
        edge_w=np.array([e[2] for e in edges], dtype=np.float64),
    )


def load_npz(path: str | Path) -> SpatialNetwork:
    """Read a network previously written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return SpatialNetwork(
            data["xs"],
            data["ys"],
            zip(
                data["edge_src"].tolist(),
                data["edge_dst"].tolist(),
                data["edge_w"].tolist(),
                strict=True,
            ),
        )


def save_text(network: SpatialNetwork, path: str | Path) -> None:
    """Write the network in the ``v``/``e`` line format."""
    with open(Path(path), "w", encoding="utf-8") as f:
        f.write(f"# spatial network: {network.num_vertices} vertices, "
                f"{network.num_edges} edges\n")
        for u in network.vertices():
            f.write(f"v {u} {float(network.xs[u])!r} {float(network.ys[u])!r}\n")
        for u, v, w in network.iter_edges():
            f.write(f"e {u} {v} {float(w)!r}\n")


def load_text(path: str | Path) -> SpatialNetwork:
    """Read a network in the ``v``/``e`` line format.

    Vertex ids must form a contiguous range starting at zero; lines
    starting with ``#`` are comments.
    """
    coords: dict[int, tuple[float, float]] = {}
    edges: list[tuple[int, int, float]] = []
    with open(Path(path), encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "v" and len(parts) == 4:
                coords[int(parts[1])] = (float(parts[2]), float(parts[3]))
            elif parts[0] == "e" and len(parts) == 4:
                edges.append((int(parts[1]), int(parts[2]), float(parts[3])))
            else:
                raise GraphConstructionError(
                    f"{path}:{lineno}: unrecognized line {line!r}"
                )
    if not coords:
        raise GraphConstructionError(f"{path}: no vertices found")
    n = max(coords) + 1
    if set(coords) != set(range(n)):
        raise GraphConstructionError(
            f"{path}: vertex ids must be contiguous from 0"
        )
    xs = np.array([coords[i][0] for i in range(n)])
    ys = np.array([coords[i][1] for i in range(n)])
    return SpatialNetwork(xs, ys, edges)
