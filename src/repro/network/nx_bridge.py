"""NetworkX interoperability.

Most Python spatial-graph data arrives as a NetworkX graph (OSMnx road
networks in particular).  These converters move such graphs in and out
of :class:`SpatialNetwork` so the SILC toolkit can index them.

NetworkX is an optional dependency: it is imported lazily so the core
library never requires it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.network.errors import GraphConstructionError
from repro.network.graph import SpatialNetwork


def _require_networkx():
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - optional dependency
        raise ImportError(
            "the NetworkX bridge requires the optional networkx package"
        ) from exc
    return nx


def to_networkx(network: SpatialNetwork):
    """Export as a :class:`networkx.DiGraph`.

    Node attributes ``x``/``y`` carry positions; edge attribute
    ``weight`` carries travel cost -- the conventions OSMnx and
    :func:`from_networkx` understand.
    """
    nx = _require_networkx()
    graph = nx.DiGraph()
    for v in network.vertices():
        graph.add_node(v, x=float(network.xs[v]), y=float(network.ys[v]))
    for u, v, w in network.iter_edges():
        graph.add_edge(u, v, weight=w)
    return graph


def from_networkx(graph: Any, weight: str = "weight") -> SpatialNetwork:
    """Import a NetworkX graph as a :class:`SpatialNetwork`.

    Requirements:

    * every node carries a position: either ``x``/``y`` attributes or
      a ``pos`` attribute holding an ``(x, y)`` pair;
    * undirected graphs are symmetrized (both edge directions);
    * missing edge weights default to the Euclidean length of the
      edge (the metric convention of this library's generators).

    Nodes are relabeled to contiguous integers in sorted node order;
    the mapping is recoverable from ``sorted(graph.nodes)``.
    """
    _require_networkx()
    nodes = sorted(graph.nodes)
    if not nodes:
        raise GraphConstructionError("cannot import an empty graph")
    relabel = {node: i for i, node in enumerate(nodes)}

    xs = np.empty(len(nodes))
    ys = np.empty(len(nodes))
    for node in nodes:
        data = graph.nodes[node]
        if "x" in data and "y" in data:
            x, y = float(data["x"]), float(data["y"])
        elif "pos" in data:
            x, y = map(float, data["pos"])
        else:
            raise GraphConstructionError(
                f"node {node!r} has no position (x/y or pos attribute)"
            )
        xs[relabel[node]] = x
        ys[relabel[node]] = y

    edges: list[tuple[int, int, float]] = []
    directed = graph.is_directed()
    for u, v, data in graph.edges(data=True):
        iu, iv = relabel[u], relabel[v]
        w = data.get(weight)
        if w is None:
            w = float(np.hypot(xs[iu] - xs[iv], ys[iu] - ys[iv]))
            if w <= 0.0:
                raise GraphConstructionError(
                    f"edge {u!r}->{v!r} has no weight and zero length"
                )
        edges.append((iu, iv, float(w)))
        if not directed:
            edges.append((iv, iu, float(w)))

    return SpatialNetwork(xs, ys, edges)
