"""The decoupled object domain: positions, object sets, and their index."""

from repro.objects.model import (
    EdgePosition,
    ExtentPosition,
    NetworkPosition,
    ObjectSet,
    SpatialObject,
    VertexPosition,
    position_parts,
    position_point,
)
from repro.objects.index import ObjectIndex

__all__ = [
    "VertexPosition",
    "EdgePosition",
    "ExtentPosition",
    "NetworkPosition",
    "SpatialObject",
    "ObjectSet",
    "ObjectIndex",
    "position_point",
    "position_parts",
]
