"""The spatial index over the object set ``S``.

Wraps the PMR quadtree with the lookups the query algorithms need:

* best-first traversal metadata (per-node rectangles, edge-object
  flags for sound block bounds),
* the vertex -> objects map INE uses when it settles a vertex,
* Euclidean best-first scans for the IER baseline.

The index shares its grid embedding with the SILC index so that
object-index blocks and shortest-path-quadtree blocks can be
intersected purely in Morton-code space.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

from repro.geometry.grid import GridEmbedding
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.graph import SpatialNetwork
from repro.objects.model import (
    EdgePosition,
    ObjectSet,
    SpatialObject,
    VertexPosition,
    position_parts,
    position_point,
)
from repro.quadtree.pmr import PMRNode, PMRQuadtree


class ObjectIndex:
    """PMR-quadtree index over an :class:`ObjectSet`."""

    def __init__(
        self,
        network: SpatialNetwork,
        objects: ObjectSet,
        embedding: GridEmbedding,
        bucket_capacity: int = 8,
    ) -> None:
        self.network = network
        self.objects = objects
        self.tree = PMRQuadtree(embedding, capacity=bucket_capacity)
        self._vertex_objects: dict[int, list[int]] = defaultdict(list)
        self._edge_flags: dict[tuple[int, int], bool] = {}
        for obj in objects:
            # Extents are indexed once per part so that every part's
            # neighborhood can discover the object; query engines
            # deduplicate by object id.
            for part in position_parts(obj.position):
                self.tree.insert(obj.oid, position_point(network, part))
                if isinstance(part, VertexPosition) and (
                    obj.oid not in self._vertex_objects[part.vertex]
                ):
                    self._vertex_objects[part.vertex].append(obj.oid)
        self._compute_edge_flags()

    # ------------------------------------------------------------------
    # Structure metadata
    # ------------------------------------------------------------------
    def _compute_edge_flags(self) -> None:
        """Mark every node whose subtree contains an edge object.

        Block-level lambda bounds are only sound for vertex objects;
        nodes flagged here additionally take the (weaker but sound)
        Euclidean bound at query time.
        """
        edge_ids = {
            o.oid
            for o in self.objects
            if any(
                isinstance(part, EdgePosition)
                for part in position_parts(o.position)
            )
        }

        def walk(node: PMRNode) -> bool:
            if node.is_leaf:
                flag = any(oid in edge_ids for oid, _, _ in node.entries)
            else:
                # Evaluate all children: every node needs its flag.
                flags = [walk(child) for child in node.children]
                flag = any(flags)
            self._edge_flags[(node.code, node.level)] = flag
            return flag

        walk(self.tree.root)

    def has_edge_objects(self, node: PMRNode) -> bool:
        return self._edge_flags[(node.code, node.level)]

    def node_rect(self, node: PMRNode) -> Rect:
        return self.tree.node_rect(node)

    @property
    def root(self) -> PMRNode:
        return self.tree.root

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def objects_at_vertex(self, vertex: int) -> list[int]:
        """Object ids sitting exactly on ``vertex`` (INE's probe)."""
        return list(self._vertex_objects.get(vertex, ()))

    def vertices_with_objects(self) -> list[int]:
        return sorted(self._vertex_objects)

    def get(self, oid: int) -> SpatialObject:
        return self.objects[oid]

    # ------------------------------------------------------------------
    # Euclidean best-first scan (IER's filter stage)
    # ------------------------------------------------------------------
    def iter_euclidean(self, origin: Point) -> Iterator[tuple[int, float]]:
        """Yield ``(oid, euclidean_distance)`` in increasing distance.

        The classic incremental nearest-neighbor traversal (Hjaltason
        & Samet 1995) over the PMR quadtree with Euclidean MINDIST.
        """
        import heapq
        import itertools

        counter = itertools.count()
        heap: list[tuple[float, int, str, object]] = [
            (
                self.node_rect(self.root).min_distance_to_point(origin),
                next(counter),
                "node",
                self.root,
            )
        ]
        while heap:
            dist, _, kind, payload = heapq.heappop(heap)
            if kind == "object":
                yield payload, dist  # type: ignore[misc]
                continue
            node: PMRNode = payload  # type: ignore[assignment]
            if node.is_leaf:
                for oid, _, point in node.entries:
                    heapq.heappush(
                        heap,
                        (origin.distance_to(point), next(counter), "object", oid),
                    )
            else:
                for child in node.children:
                    if child.entries or not child.is_leaf:
                        heapq.heappush(
                            heap,
                            (
                                self.node_rect(child).min_distance_to_point(origin),
                                next(counter),
                                "node",
                                child,
                            ),
                        )
