"""Objects on a spatial network.

The paper decouples the object domain ``S`` (restaurants, gas
stations, ...) from the network-vertex domain ``V``: objects live in
their own index and reference the network only through a *network
position*.  Supported positions mirror the paper's input types (p.21):

* :class:`VertexPosition` -- the object sits on an intersection;
* :class:`EdgePosition`   -- the object sits a fraction of the way
  along a road segment (the paper's edge objects; face/extent objects
  reduce to sets of these).

Every object also carries its spatial :class:`Point` so it can be
stored in the PMR quadtree.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from repro.geometry.point import Point
from repro.network.graph import SpatialNetwork


@dataclass(frozen=True, slots=True)
class VertexPosition:
    """An object located exactly on network vertex ``vertex``."""

    vertex: int


@dataclass(frozen=True, slots=True)
class EdgePosition:
    """An object ``fraction`` of the way along directed edge a -> b.

    ``fraction`` is in ``[0, 1]``; 0 is at ``a``, 1 at ``b``.  If the
    reverse edge ``b -> a`` exists, the object is reachable from both
    ends (the usual bidirectional road case).
    """

    a: int
    b: int
    fraction: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction <= 1.0):
            raise ValueError(f"fraction must be in [0, 1]: {self.fraction}")


@dataclass(frozen=True, slots=True)
class ExtentPosition:
    """An object occupying several network positions at once.

    The paper's "face objects" and "objects with extents" (p.21): a
    park bordering several road segments, a mall with entrances on
    different streets.  The network distance to such an object is the
    minimum over its parts (any entrance will do).
    """

    parts: tuple[VertexPosition | EdgePosition, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("an extent needs at least one part")
        for part in self.parts:
            if not isinstance(part, (VertexPosition, EdgePosition)):
                raise TypeError(f"extent part must be simple: {part!r}")


NetworkPosition = VertexPosition | EdgePosition | ExtentPosition


def position_parts(
    position: NetworkPosition,
) -> tuple[VertexPosition | EdgePosition, ...]:
    """The simple (vertex/edge) parts of any network position."""
    if isinstance(position, ExtentPosition):
        return position.parts
    return (position,)


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """One member of the object set ``S``."""

    oid: int
    position: NetworkPosition
    point: Point


def position_point(network: SpatialNetwork, position: NetworkPosition) -> Point:
    """The spatial point of a network position.

    For extents this is the centroid of the part points -- a display
    anchor only; spatial indexing stores every part's point so that
    Euclidean lower bounds stay sound.
    """
    if isinstance(position, VertexPosition):
        return network.vertex_point(position.vertex)
    if isinstance(position, ExtentPosition):
        points = [position_point(network, part) for part in position.parts]
        return Point(
            sum(p.x for p in points) / len(points),
            sum(p.y for p in points) / len(points),
        )
    pa = network.vertex_point(position.a)
    pb = network.vertex_point(position.b)
    return pa.lerp(pb, position.fraction)


class ObjectSet:
    """An immutable collection of spatial objects with id lookup."""

    def __init__(self, objects: Iterable[SpatialObject]) -> None:
        self._objects: list[SpatialObject] = list(objects)
        self._by_id = {o.oid: o for o in self._objects}
        if len(self._by_id) != len(self._objects):
            raise ValueError("object ids must be unique")

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects)

    def __getitem__(self, oid: int) -> SpatialObject:
        return self._by_id[oid]

    def __contains__(self, oid: int) -> bool:
        return oid in self._by_id

    @property
    def ids(self) -> list[int]:
        return [o.oid for o in self._objects]

    def has_edge_objects(self) -> bool:
        return any(
            isinstance(part, EdgePosition)
            for o in self._objects
            for part in position_parts(o.position)
        )

    @staticmethod
    def at_vertices(
        network: SpatialNetwork, vertices: Sequence[int]
    ) -> ObjectSet:
        """Objects placed on the given vertices, ids ``0..len-1``.

        The same vertex may appear multiple times (two restaurants on
        one corner).
        """
        objects = [
            SpatialObject(
                oid=i,
                position=VertexPosition(v),
                point=network.vertex_point(v),
            )
            for i, v in enumerate(vertices)
        ]
        return ObjectSet(objects)

    @staticmethod
    def on_edges(
        network: SpatialNetwork,
        placements: Sequence[tuple[int, int, float]],
    ) -> ObjectSet:
        """Objects placed at ``(a, b, fraction)`` edge positions."""
        objects = []
        for i, (a, b, fraction) in enumerate(placements):
            network.edge_weight(a, b)  # validates the edge exists
            pos = EdgePosition(a, b, fraction)
            objects.append(
                SpatialObject(oid=i, position=pos, point=position_point(network, pos))
            )
        return ObjectSet(objects)

    @staticmethod
    def with_extents(
        network: SpatialNetwork,
        extents: Sequence[Sequence[VertexPosition | EdgePosition]],
    ) -> ObjectSet:
        """Objects each occupying several vertex/edge positions."""
        objects = []
        for i, parts in enumerate(extents):
            for part in parts:
                if isinstance(part, EdgePosition):
                    network.edge_weight(part.a, part.b)
                else:
                    network.check_vertex(part.vertex)
            pos = ExtentPosition(tuple(parts))
            objects.append(
                SpatialObject(oid=i, position=pos, point=position_point(network, pos))
            )
        return ObjectSet(objects)
