"""Observability layer: per-request tracing + a unified metrics registry.

This package sits *below* :mod:`repro.serve` in the import graph (the
serving stack imports it, never the reverse), so the tracer and
registry can be threaded through every layer -- server, scheduler,
engine, planner, shard router and worker processes -- without cycles.
"""

from repro.obs.registry import DEFAULT_WINDOW, ENGINE_OPS, MetricsRegistry, percentiles
from repro.obs.report import (
    aggregate_stages,
    format_trace_report,
    load_trace_file,
    request_percentiles,
    stage_of,
)
from repro.obs.sinks import JsonlTraceSink, SlowQueryLog
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    NullSpan,
    NullTrace,
    NullTracer,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "DEFAULT_WINDOW",
    "ENGINE_OPS",
    "MetricsRegistry",
    "percentiles",
    "aggregate_stages",
    "format_trace_report",
    "load_trace_file",
    "request_percentiles",
    "stage_of",
    "JsonlTraceSink",
    "SlowQueryLog",
    "NULL_SPAN",
    "NULL_TRACE",
    "NullSpan",
    "NullTrace",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
]
