"""A unified metrics registry: named, labelled counters/gauges/histograms.

The serving stack accumulates telemetry in several purpose-built
accumulators -- :class:`~repro.serve.metrics.ServerMetrics` (latency
windows + outcome counters), :class:`~repro.oracle.planner.PlannerStats`
(per-backend decisions), :class:`~repro.shard.router.RouterStats`
(shard prune accounting) and
:class:`~repro.silc.parallel.BuildTransferStats` (build transport
bytes).  :class:`MetricsRegistry` is the single pane of glass over all
of them: every reading becomes a *sample* -- a metric name plus a
small label set (``{"stage": ..., "oracle": ..., "shard": ...}``) --
and :meth:`MetricsRegistry.snapshot` renders one JSON-serializable
dict the serve protocol can ship over the wire (the ``stats`` request
kind).

Two feeding styles, deliberately distinct:

* ``inc``/``observe`` -- event-sourced metrics (the
  :class:`~repro.obs.trace.Tracer` feeds span timings and counted ops
  as traces finish);
* ``set_counter``/``set_gauge`` -- *absolute* assignment, used by the
  ``absorb_*`` methods to mirror the existing accumulators.  Those
  accumulators are themselves cumulative, so assignment keeps
  repeated absorption idempotent (a ``stats`` request may poll the
  registry any number of times without double counting).

This module is the bottom of the observability layer: it imports
nothing from :mod:`repro.serve` (which imports *it*), and the
``absorb_*`` methods are duck-typed for the same reason.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Iterable, Sequence
from typing import Any

#: Samples kept per histogram window (percentiles reflect recent load).
DEFAULT_WINDOW = 4096

#: The QueryStats counters mirrored into ``engine_ops_total`` samples.
ENGINE_OPS = (
    "refinements",
    "queue_pushes",
    "objects_seen",
    "kmindist_accepts",
    "l_ops",
    "io_accesses",
    "io_misses",
    "settled",
    "relaxed",
    "index_probes",
    "nd_computations",
    "label_scans",
)


def percentiles(values: Iterable[float], qs: Sequence[float]) -> list[float]:
    """Linear-interpolated percentiles of ``values`` from **one** sort.

    ``qs`` is a sequence of percentile points in ``[0, 100]``; the
    result is in the same order.  One call sorts once however many
    points are requested -- the p50/p95/p99 triple every snapshot
    needs costs a single ``O(n log n)`` pass instead of three.
    """
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return [0.0] * len(qs)
    n = len(ordered)
    out: list[float] = []
    for q in qs:
        if n == 1:
            out.append(float(ordered[0]))
            continue
        pos = (n - 1) * (q / 100.0)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        out.append(float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac))
    return out


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Thread-safe bag of labelled counters, gauges and histograms.

    Every sample is addressed by ``(name, labels)``; label keys and
    values are coerced to strings so snapshots serialize cleanly.
    Histograms keep a sliding window of the most recent ``window``
    observations (flat memory on a long-lived server) next to an exact
    lifetime observation count.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be at least 1 sample")
        self.window = window
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._hists: dict[tuple, deque] = {}
        self._hist_counts: dict[tuple, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a counter sample (event-sourced feeding)."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_counter(self, name: str, value: float, **labels: Any) -> None:
        """Assign a counter sample absolutely (idempotent absorption)."""
        with self._lock:
            self._counters[_key(name, labels)] = value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation."""
        key = _key(name, labels)
        with self._lock:
            window = self._hists.get(key)
            if window is None:
                window = deque(maxlen=self.window)
                self._hists[key] = window
            window.append(float(value))
            self._hist_counts[key] = self._hist_counts.get(key, 0) + 1

    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    # ------------------------------------------------------------------
    # Absorption of the purpose-built accumulators (duck-typed, so the
    # registry never imports the layers that import it)
    # ------------------------------------------------------------------
    def absorb_server(self, snapshot: Any) -> None:
        """Mirror a :class:`~repro.serve.metrics.MetricsSnapshot`."""
        for outcome, value in (
            ("completed", snapshot.served),
            ("shed", snapshot.shed),
            ("expired", snapshot.expired),
            ("failed", snapshot.failed),
        ):
            self.set_counter(
                "requests_total", value, stage="serve", outcome=outcome
            )
        self.set_gauge("in_flight", snapshot.in_flight, stage="serve")
        for quantile, value in (
            ("p50", snapshot.p50), ("p95", snapshot.p95), ("p99", snapshot.p99)
        ):
            self.set_gauge(
                "latency_seconds", value, stage="serve", quantile=quantile
            )
        for client, depth in snapshot.queue_depths.items():
            self.set_gauge("queue_depth", depth, stage="sched", client=client)
        for op in ENGINE_OPS:
            value = getattr(snapshot.stats, op, 0)
            if value:
                self.set_counter(
                    "engine_ops_total", value, stage="engine", op=op
                )
        self.absorb_server_aborts(snapshot)

    def absorb_planner(self, stats: Any) -> None:
        """Mirror a :class:`~repro.oracle.planner.PlannerStats`."""
        for backend, value in stats.decisions.items():
            self.set_counter(
                "planner_decisions_total", value, stage="plan", oracle=backend
            )
        self.set_counter("planner_forced_total", stats.forced, stage="plan")
        self.set_counter(
            "planner_calibrations_total", stats.calibrations, stage="plan"
        )
        self.set_counter(
            "planner_calibration_queries_total",
            stats.calibration_queries,
            stage="plan",
        )

    def absorb_router(self, stats: Any) -> None:
        """Mirror a :class:`~repro.shard.router.RouterStats`."""
        self.set_counter("router_queries_total", stats.queries, stage="route")
        for event, value in (
            ("visited", stats.shards_visited),
            ("pruned_euclid", stats.shards_pruned_euclid),
            ("pruned_lambda", stats.shards_pruned_lambda),
        ):
            self.set_counter(
                "router_shards_total", value, stage="route", event=event
            )
        self.set_counter(
            "router_bound_probes_total", stats.bound_probes, stage="route"
        )
        self.set_counter(
            "router_candidates_total", stats.candidates, stage="route"
        )
        self.set_counter(
            "router_duplicates_merged_total",
            stats.duplicates_merged,
            stage="route",
        )

    def absorb_server_aborts(self, snapshot: Any) -> None:
        """Mirror the fault-path counters of a
        :class:`~repro.serve.metrics.MetricsSnapshot` (deadline aborts
        and degraded completions); split out so legacy snapshots
        without the fields absorb cleanly."""
        self.set_counter(
            "fault_events_total",
            getattr(snapshot, "deadline_aborts", 0),
            stage="serve", event="deadline_abort",
        )
        self.set_counter(
            "fault_events_total",
            getattr(snapshot, "degraded", 0),
            stage="serve", event="degraded_response",
        )

    def absorb_supervisor(self, stats: Any) -> None:
        """Mirror a :class:`~repro.shard.supervisor.SupervisorStats`.

        Every fault event lands in one ``fault_events_total`` family
        (labelled by event), so a dashboard -- or the chaos benchmark
        -- reads the whole recovery story from one counter name.
        """
        for event, value in (
            ("worker_crash", stats.worker_crashes),
            ("respawn", stats.respawns),
            ("respawn_failure", stats.respawn_failures),
            ("retry", stats.retries),
            ("failover", stats.failovers),
            ("degraded_response", stats.degraded_responses),
        ):
            self.set_counter(
                "fault_events_total", value, stage="shard", event=event
            )

    def absorb_build(self, stats: Any) -> None:
        """Mirror a :class:`~repro.silc.parallel.BuildTransferStats`."""
        self.set_counter(
            "build_chunks_total", stats.chunks,
            stage="build", transport=stats.transport,
        )
        self.set_counter(
            "build_bytes_total", stats.result_pickle_bytes,
            stage="build", channel="pickle",
        )
        self.set_counter(
            "build_bytes_total", stats.shared_bytes,
            stage="build", channel="shm",
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-serializable reading of every sample, sorted stably."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            histograms = []
            for key in sorted(self._hists):
                name, labels = key
                window = list(self._hists[key])
                p50, p95, p99 = percentiles(window, (50.0, 95.0, 99.0))
                histograms.append(
                    {
                        "name": name,
                        "labels": dict(labels),
                        "count": self._hist_counts[key],
                        "mean": sum(window) / len(window),
                        "max": max(window),
                        "p50": p50,
                        "p95": p95,
                        "p99": p99,
                    }
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
