"""Aggregate a JSON-lines trace file into a per-stage breakdown.

``repro trace-report`` answers *where does the time go* for a serving
run: per span stage (``admission``, ``sched_wait``, ``plan``,
``oracle``, ``shard``, ``execute``, ``worker``) it renders count,
total/mean time and latency percentiles, plus the counted operations
accumulated on those spans -- the same units the paper's figures and
the repo's benchmarks use.  The request-level percentiles feed the
persistent serving-latency trajectory in ``bench-report`` (the
regression gate CI checks).

Loading is strict: every line is validated (span ids unique and
resolvable, times sane, names non-empty) and a malformed line raises
:class:`ValueError` naming it, so CI fails loudly on corrupt traces.
"""

from __future__ import annotations

import json

from repro.obs.registry import percentiles

_REQUIRED_TRACE_KEYS = ("trace", "status", "duration", "spans")
_REQUIRED_SPAN_KEYS = ("sid", "parent", "name", "start", "end")


def _validate_trace(record: dict, where: str) -> None:
    for key in _REQUIRED_TRACE_KEYS:
        if key not in record:
            raise ValueError(f"{where}: trace record missing key {key!r}")
    if not isinstance(record["spans"], list) or not record["spans"]:
        raise ValueError(f"{where}: trace has no spans")
    sids = set()
    for span in record["spans"]:
        if not isinstance(span, dict):
            raise ValueError(f"{where}: span is not an object")
        for key in _REQUIRED_SPAN_KEYS:
            if key not in span:
                raise ValueError(f"{where}: span missing key {key!r}")
        sid = span["sid"]
        if not isinstance(sid, int) or sid in sids:
            raise ValueError(f"{where}: span id {sid!r} duplicated or invalid")
        sids.add(sid)
        if not span["name"]:
            raise ValueError(f"{where}: span has an empty name")
        start, end = span["start"], span["end"]
        if not 0.0 <= start <= end:
            raise ValueError(
                f"{where}: span {span['name']!r} has bad times "
                f"start={start!r} end={end!r}"
            )
    for span in record["spans"]:
        parent = span["parent"]
        if parent is not None and parent not in sids:
            raise ValueError(
                f"{where}: span {span['name']!r} has unresolvable "
                f"parent {parent!r}"
            )


def load_trace_file(path) -> list[dict]:
    """Parse + validate a JSON-lines trace file; raise on any bad line."""
    traces = []
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{where}: not valid JSON ({exc})") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{where}: trace record is not an object")
            _validate_trace(record, where)
            traces.append(record)
    return traces


def stage_of(name: str) -> str:
    """Map a span name to its stage (``oracle:silc`` -> ``oracle``)."""
    return name.split(":", 1)[0]


def aggregate_stages(traces) -> dict[str, dict]:
    """Per-stage durations + counted ops across every span of every trace."""
    stages: dict[str, dict] = {}
    for trace in traces:
        for span in trace["spans"]:
            if span["sid"] == 0 and span["name"] == "request":
                continue  # request totals are reported separately
            stage = stage_of(span["name"])
            bucket = stages.setdefault(
                stage, {"count": 0, "durations": [], "counters": {}}
            )
            bucket["count"] += 1
            bucket["durations"].append(span["end"] - span["start"])
            for op, value in (span.get("counters") or {}).items():
                bucket["counters"][op] = bucket["counters"].get(op, 0) + value
    return stages


def request_percentiles(traces) -> tuple[float, float, float]:
    """(p50, p95, p99) of end-to-end request durations, in seconds."""
    durations = [t["duration"] for t in traces]
    p50, p95, p99 = percentiles(durations, (50.0, 95.0, 99.0))
    return p50, p95, p99


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}"


def format_trace_report(traces) -> str:
    """Render the per-stage latency/counted-op breakdown table."""
    if not traces:
        return "no traces"
    lines = []
    p50, p95, p99 = request_percentiles(traces)
    statuses: dict[str, int] = {}
    for trace in traces:
        statuses[trace["status"]] = statuses.get(trace["status"], 0) + 1
    status_text = ", ".join(
        f"{status}={count}" for status, count in sorted(statuses.items())
    )
    lines.append(
        f"traces: {len(traces)} ({status_text})  "
        f"latency ms p50={_ms(p50)} p95={_ms(p95)} p99={_ms(p99)}"
    )
    lines.append("")
    stages = aggregate_stages(traces)
    header = (
        f"{'stage':<12} {'spans':>6} {'total_ms':>10} {'mean_ms':>9} "
        f"{'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    order = sorted(
        stages.items(), key=lambda item: -sum(item[1]["durations"])
    )
    for stage, bucket in order:
        total = sum(bucket["durations"])
        mean = total / bucket["count"]
        s50, s95, s99 = percentiles(bucket["durations"], (50.0, 95.0, 99.0))
        lines.append(
            f"{stage:<12} {bucket['count']:>6} {_ms(total):>10} "
            f"{_ms(mean):>9} {_ms(s50):>9} {_ms(s95):>9} {_ms(s99):>9}"
        )
    op_rows = [
        (stage, bucket["counters"])
        for stage, bucket in sorted(stages.items())
        if bucket["counters"]
    ]
    if op_rows:
        lines.append("")
        lines.append("counted ops per stage:")
        for stage, counters in op_rows:
            ops = "  ".join(
                f"{op}={int(value)}" for op, value in sorted(counters.items())
            )
            lines.append(f"  {stage:<12} {ops}")
    return "\n".join(lines)
