"""Trace sinks: where finished traces go.

Two destinations, composable:

* :class:`JsonlTraceSink` -- append every finished trace as one JSON
  line (the ``repro serve --trace-file`` target and the input format
  of ``repro trace-report``);
* :class:`SlowQueryLog` -- keep the *full span trees* of the slowest
  recent requests in a bounded ring, optionally tee-ing them to their
  own JSON-lines file (``repro serve --slow-log``), so a latency spike
  leaves behind exactly the traces an operator needs to triage it.
"""

from __future__ import annotations

import json
import threading
from collections import deque


class JsonlTraceSink:
    """Append trace records to a path or stream as JSON lines.

    Writes are serialized under a lock and flushed per record, so a
    reader tailing the file (or a test reading it after the server
    stops) always sees whole lines.
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._stream = target
            self._owns = False
        else:
            # Held for the sink's lifetime; closed by close().
            self._stream = open(target, "a", encoding="utf-8")  # noqa: SIM115
            self._owns = True
        self._lock = threading.Lock()
        self.written = 0

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._stream.close()

    def __enter__(self) -> JsonlTraceSink:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SlowQueryLog:
    """Bounded ring of the trace records that crossed a latency line.

    ``offer`` is called with every finished trace record; records whose
    ``duration`` is at or over ``threshold`` seconds are kept (newest
    ``capacity`` of them) and, when a ``sink`` is attached, also
    written through to it.  ``captured`` counts every crossing, so the
    registry can expose slow-query volume even after the ring rotates.
    """

    def __init__(self, threshold: float, capacity: int = 32, sink=None) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative seconds")
        if capacity < 1:
            raise ValueError("capacity must be at least 1 record")
        self.threshold = threshold
        self.sink = sink
        self.captured = 0
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def offer(self, record: dict) -> bool:
        """Consider one finished trace; return True when captured."""
        if record.get("duration", 0.0) < self.threshold:
            return False
        with self._lock:
            self._ring.append(record)
            self.captured += 1
        if self.sink is not None:
            self.sink.write(record)
        return True

    def records(self) -> list[dict]:
        """The captured records, oldest first."""
        with self._lock:
            return list(self._ring)
