"""Per-request traces of timed, counter-annotated spans.

One :class:`Trace` follows one request through the serving pipeline;
each stage opens a :class:`Span` (``admission``, ``sched_wait``,
``execute``, ``plan``, ``oracle:<backend>``, ``shard:<id>``,
``worker``) that records wall-clock start/end plus the counted
operations of the work it wraps (the same
:class:`~repro.query.stats.QueryStats` units every benchmark figure is
plotted in).  Spans form a tree via parent ids, so a finished trace
shows exactly where a request's latency went: queueing vs planning vs
oracle work vs shard scatter-gather.

Two invariants the serving layer asserts on:

* **Zero overhead when off.**  The default tracer is
  :class:`NullTracer`; it hands out the shared :data:`NULL_TRACE`
  whose every method is a no-op returning the shared
  :data:`NULL_SPAN`.  Instrumented code calls
  ``with trace.span("plan"): ...`` unconditionally and pays a few
  attribute lookups, no allocation, no branching on config.
* **Tracing never changes answers.**  Spans only *observe*; no query
  code path reads trace state.  The test suite runs identical
  workloads traced and untraced and asserts counted-op and answer
  parity.

Cross-process propagation: shard workers run their own local
:class:`Tracer`, serialize the resulting spans with
:meth:`Trace.spans_absolute`, and ship them back over the pipe; the
router re-parents them under its ``shard:<id>`` span with
:meth:`Trace.adopt`, so one trace covers both sides of the scatter
(``time.perf_counter`` is system-wide on the supported platforms, so
worker timestamps land on the parent's axis).
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter

from repro.obs.registry import MetricsRegistry

#: QueryStats counters copied onto spans (only non-zero ones, to keep
#: trace records small).
STAT_COUNTERS = (
    "refinements",
    "queue_pushes",
    "objects_seen",
    "kmindist_accepts",
    "l_ops",
    "io_accesses",
    "io_misses",
    "settled",
    "relaxed",
    "index_probes",
    "nd_computations",
    "label_scans",
)

#: Span labels carried into the registry's span_seconds histograms
#: (a bounded set, so label cardinality stays sane).
_HISTOGRAM_LABELS = ("oracle", "shard")


class Span:
    """One timed, counted stage of a trace.

    Usable as a context manager (``with trace.span("plan") as sp:``)
    for stack-parented spans, or held open explicitly via
    :meth:`Trace.begin` / :meth:`close` for spans that outlive one
    code block (``sched_wait``).  Counters and labels may be added
    even after close -- serialization happens at trace finish.
    """

    __slots__ = ("sid", "parent", "name", "start", "end", "counters", "labels", "_trace")

    def __init__(self, trace, sid, parent, name, start, labels) -> None:
        self._trace = trace
        self.sid = sid
        self.parent = parent
        self.name = name
        self.start = start
        self.end = None
        self.counters: dict = {}
        self.labels: dict = labels

    def __enter__(self) -> Span:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.labels["error"] = exc_type.__name__
        self._trace._close(self)
        return False

    def close(self) -> None:
        """End an explicitly-opened span (see :meth:`Trace.begin`)."""
        self._trace._close(self)

    def count(self, **counters) -> None:
        """Add counted operations to this span."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def add_stats(self, stats) -> None:
        """Copy the non-zero :class:`QueryStats` counters onto the span."""
        for name in STAT_COUNTERS:
            value = getattr(stats, name, 0)
            if value:
                self.counters[name] = self.counters.get(name, 0) + value

    def annotate(self, **labels) -> None:
        for key, value in labels.items():
            self.labels[key] = str(value)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self, t0: float) -> dict:
        """Wire form with times relative to the trace start (seconds)."""
        start = max(0.0, self.start - t0)
        end = max(start, (self.end if self.end is not None else self.start) - t0)
        record = {
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "start": round(start, 6),
            "end": round(end, 6),
        }
        if self.counters:
            record["counters"] = dict(self.counters)
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


class Trace:
    """One request's span tree, from admission to response.

    A trace is touched by one logical thread at a time (the serving
    pipeline executes a request's chunks strictly sequentially), so
    span bookkeeping needs no lock; the :class:`Tracer` locks where
    traces converge (registry, sink).
    """

    enabled = True

    def __init__(self, tracer: Tracer, trace_id: str, labels: dict) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.labels = labels
        self.clock = tracer.clock
        self.t_start = self.clock()
        self.t_end: float | None = None
        self.status = "open"
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._sids = itertools.count(0)
        root = Span(
            self, next(self._sids), None, "request", self.t_start, {}
        )
        self.spans.append(root)
        self._stack.append(root)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **labels) -> Span:
        """Open a stack-parented span; use as a context manager."""
        parent = self._stack[-1].sid if self._stack else None
        span = Span(
            self, next(self._sids), parent, name, self.clock(),
            {k: str(v) for k, v in labels.items()},
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def begin(self, name: str, **labels) -> Span:
        """Open a span *outside* the stack; close it with ``.close()``.

        For stages that outlive one code block -- ``sched_wait`` opens
        at submit and closes at first dispatch, while other spans open
        and close in between.
        """
        parent = self._stack[0].sid if self._stack else None
        span = Span(
            self, next(self._sids), parent, name, self.clock(),
            {k: str(v) for k, v in labels.items()},
        )
        self.spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        if span.end is None:
            span.end = self.clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def adopt(self, span_dicts, parent: Span) -> None:
        """Graft spans from another process under ``parent``.

        ``span_dicts`` is another trace's :meth:`spans_absolute`
        output; sids are re-issued locally and the foreign root is
        re-parented onto ``parent``, so worker-side spans rejoin the
        request's tree.
        """
        mapping = {d["sid"]: next(self._sids) for d in span_dicts}
        for d in span_dicts:
            foreign_parent = d.get("parent")
            parent_sid = mapping.get(foreign_parent, parent.sid)
            span = Span(
                self, mapping[d["sid"]], parent_sid, d["name"], d["start"],
                dict(d.get("labels") or {}),
            )
            span.end = d["end"]
            span.counters.update(d.get("counters") or {})
            self.spans.append(span)

    # ------------------------------------------------------------------
    # Lifecycle / serialization
    # ------------------------------------------------------------------
    def finish(self, status: str = "ok") -> None:
        """Seal the trace (idempotent) and hand it to the tracer."""
        if self.t_end is not None:
            return
        now = self.clock()
        for span in self.spans:
            if span.end is None:
                span.end = now
        self._stack.clear()
        self.status = status
        self.t_end = now
        self.tracer._finished(self)

    @property
    def duration(self) -> float:
        return (self.t_end if self.t_end is not None else self.clock()) - self.t_start

    def to_dict(self) -> dict:
        """One JSON-lines trace record (times relative to trace start)."""
        record = {"trace": self.trace_id}
        record.update(self.labels)
        record["status"] = self.status
        record["duration"] = round(self.duration, 6)
        record["spans"] = [s.to_dict(self.t_start) for s in self.spans]
        return record

    def spans_absolute(self) -> list[dict]:
        """Span dicts with *absolute* clock times, for :meth:`adopt`."""
        out = []
        for s in self.spans:
            d = {
                "sid": s.sid,
                "parent": s.parent,
                "name": s.name,
                "start": s.start,
                "end": s.end if s.end is not None else s.start,
            }
            if s.counters:
                d["counters"] = dict(s.counters)
            if s.labels:
                d["labels"] = dict(s.labels)
            out.append(d)
        return out


class Tracer:
    """Factory and terminus of traces; owns the registry and the sinks.

    Parameters
    ----------
    sink:
        Anything with ``write(record: dict)`` -- normally a
        :class:`~repro.obs.sinks.JsonlTraceSink`; every finished trace
        is written to it.
    slow_log:
        A :class:`~repro.obs.sinks.SlowQueryLog`; finished traces are
        offered to it and captured when over its latency threshold.
    registry:
        The :class:`MetricsRegistry` span timings and counted ops are
        fed into (one is created when omitted).
    clock:
        Time source (injectable for tests; defaults to
        :func:`time.perf_counter`, which shard workers also use, so
        cross-process spans share an axis).
    """

    enabled = True

    def __init__(
        self,
        sink=None,
        slow_log=None,
        registry: MetricsRegistry | None = None,
        clock=perf_counter,
    ) -> None:
        self.sink = sink
        self.slow_log = slow_log
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock
        self.finished = 0
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def start_trace(self, **labels) -> Trace:
        trace_id = f"t-{next(self._ids)}"
        return Trace(self, trace_id, {k: v for k, v in labels.items()})

    def trace_request(self, request) -> Trace:
        """Start a trace labelled with a serve request's identity."""
        return self.start_trace(
            id=request.id, client=request.client, kind=request.kind
        )

    def _finished(self, trace: Trace) -> None:
        reg = self.registry
        reg.inc("traces_total", 1, status=trace.status)
        reg.observe("request_seconds", trace.duration, stage="request")
        for span in trace.spans:
            if span.sid == 0:
                continue  # the root span duplicates request_seconds
            stage = span.name.split(":", 1)[0]
            labels = {
                k: v for k, v in span.labels.items() if k in _HISTOGRAM_LABELS
            }
            reg.observe("span_seconds", span.duration, stage=stage, **labels)
            for op, value in span.counters.items():
                reg.inc("span_ops_total", value, stage=stage, op=op)
        record = None
        if self.sink is not None or self.slow_log is not None:
            record = trace.to_dict()
        if self.sink is not None:
            self.sink.write(record)
        if self.slow_log is not None:
            self.slow_log.offer(record)
        with self._lock:
            self.finished += 1


# ----------------------------------------------------------------------
# The zero-overhead default: every operation is a shared no-op
# ----------------------------------------------------------------------

class NullSpan:
    """The do-nothing span; one shared instance serves every call site."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def close(self) -> None:
        pass

    def count(self, **counters) -> None:
        pass

    def add_stats(self, stats) -> None:
        pass

    def annotate(self, **labels) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTrace:
    """The do-nothing trace handed out when tracing is off."""

    enabled = False

    __slots__ = ()

    def span(self, name, **labels) -> NullSpan:
        return NULL_SPAN

    def begin(self, name, **labels) -> NullSpan:
        return NULL_SPAN

    def adopt(self, span_dicts, parent) -> None:
        pass

    def finish(self, status: str = "ok") -> None:
        pass


NULL_TRACE = NullTrace()


class NullTracer:
    """Default tracer: no traces, but still a live (absorb-only) registry.

    The ``stats`` request kind returns the unified registry snapshot
    whether or not tracing is on, so the null tracer owns a registry
    the server's absorb pass can populate; it just never receives
    span-sourced samples.
    """

    enabled = False

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = None
        self.slow_log = None
        self.finished = 0

    def start_trace(self, **labels) -> NullTrace:
        return NULL_TRACE

    def trace_request(self, request) -> NullTrace:
        return NULL_TRACE
