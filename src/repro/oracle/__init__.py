"""Multi-backend distance oracles and the cost-based query planner.

The package turns "which algorithm answers this query" from a
hard-wired choice into a per-query decision:

* :class:`DistanceOracle` -- the interface every backend implements
  (``distance``, ``anchored_distance``, ``knn``, capability info,
  ``save``/``load``);
* :class:`SILCOracle` -- the paper's browsing path (shortest-path
  quadtrees + best-first refinement), extracted behavior-preserving;
* :class:`PrunedLabellingOracle` -- 2-hop pruned landmark labels:
  microsecond exact point-to-point distances, higher build cost;
* :class:`INEOracle` -- incremental network expansion, no precompute;
* :class:`DijkstraOracle` -- the reference backend property tests
  compare against, and the default engine of IER refinement;
* :class:`QueryPlanner` -- routes each query to the backend the
  calibrated cost model expects to answer cheapest, with a
  forced-backend override and counted :class:`PlannerStats`.
"""

from repro.oracle.base import (
    ORACLE_CHOICES,
    DijkstraOracle,
    DistanceOracle,
    OracleInfo,
)
from repro.oracle.labelling import (
    LABEL_COLUMNS,
    LABELS_SUBDIR,
    LabellingBuildStats,
    PrunedLabellingOracle,
)
from repro.oracle.planner import (
    COST_MODEL_FILE,
    PLANNABLE,
    CostConstants,
    PlannerStats,
    QueryPlanner,
    counted_ops,
)
from repro.oracle.silc import INEOracle, SILCOracle

__all__ = [
    "ORACLE_CHOICES",
    "PLANNABLE",
    "LABEL_COLUMNS",
    "LABELS_SUBDIR",
    "COST_MODEL_FILE",
    "DistanceOracle",
    "OracleInfo",
    "DijkstraOracle",
    "SILCOracle",
    "INEOracle",
    "PrunedLabellingOracle",
    "LabellingBuildStats",
    "QueryPlanner",
    "PlannerStats",
    "CostConstants",
    "counted_ops",
]
