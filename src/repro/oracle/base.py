"""The :class:`DistanceOracle` interface every query backend implements.

The paper's SILC encoding is one point in the distance-oracle design
space: it trades O(N^1.5) precomputed storage for incremental,
progressively refinable browsing.  Pruned-labelling indexes (Farhan et
al., arXiv:1812.02363; hop-doubling labels, arXiv:1403.0779) occupy a
different point -- exact point-to-point distances in a handful of
label scans, at a higher build cost and with no incremental-browsing
capability.  INE needs no precomputation at all and pays a full
Dijkstra ball per query.

This module pins down the surface the rest of the stack (``QueryEngine``,
the serving layer, the CLI) programs against, so backends are
interchangeable per query:

* ``distance(u, v)`` -- exact vertex-to-vertex network distance;
* ``anchored_distance(src_anchors, t_anchors)`` -- the location-aware
  generalization every kNN refinement step actually needs (a query
  part-way along an edge reduces to weighted anchor vertices);
* ``knn(query, k)`` -- the k nearest objects of the oracle's bound
  object index;
* a capability/cost descriptor (:class:`OracleInfo`) the planner's
  cost model reads;
* ``save``/``load`` for oracles with persistent state.

:class:`DijkstraOracle` is the degenerate backend: no precomputed
state, distances by (multi-seed, early-exit) Dijkstra.  It is both the
reference implementation the property tests compare against and the
engine behind IER refinement when no better oracle is loaded.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.network.dijkstra import IncrementalDijkstra
from repro.query.results import KNNResult
from repro.query.stats import QueryStats

#: Backend names accepted everywhere a caller selects an oracle
#: (engine ctor, ``Request.oracle``, the ``--oracle`` CLI flag).
#: ``auto`` routes each query through the cost-based planner.
ORACLE_CHOICES = ("auto", "silc", "labels", "ine")


@dataclass(frozen=True)
class OracleInfo:
    """Capability/cost descriptor of one backend.

    ``op_unit`` names the backend's counted unit of work -- the unit
    its per-op calibration constant is measured in, and the unit the
    crossover benchmark compares (SILC: refinements; labels: label
    scans; INE: settled vertices).  ``incremental`` marks backends
    that can browse neighbors one at a time without restarting
    (SILC's selling point for large k); ``precomputed`` marks backends
    with build-time state worth persisting.
    """

    name: str
    exact: bool
    op_unit: str
    incremental: bool
    precomputed: bool


class DistanceOracle(ABC):
    """One interchangeable network-distance backend.

    Implementations are bound to one network (and, for ``knn``, one
    object index) at construction.  All distances are in
    network-weight units; unreachable pairs return ``math.inf``.
    """

    #: Filled by subclasses.
    info: OracleInfo

    @property
    def name(self) -> str:
        return self.info.name

    @abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Exact network distance between two vertices (inf if unreachable)."""

    @abstractmethod
    def knn(self, query: Any, k: int, **kwargs: Any) -> KNNResult:
        """The k nearest objects of the bound object index."""

    def anchored_distance(
        self,
        src_anchors: Sequence[tuple[int, float]],
        t_anchors: Sequence[tuple[int, float]],
        best: float = math.inf,
        stats: QueryStats | None = None,
        storage: Any = None,
    ) -> float:
        """Exact location-to-location distance via anchor decomposition.

        ``src_anchors``/``t_anchors`` are ``(vertex, offset)`` pairs
        (see :mod:`repro.query.location`); ``best`` seeds the minimum
        with an already-known bound (the same-edge direct segment).
        The default implementation takes the minimum of
        ``distance(u, v)`` over all anchor pairs; backends with a
        cheaper batched form (multi-seed Dijkstra) override it.
        ``storage``/``stats`` let overrides charge their page traffic
        and work counters exactly as the historical in-place code did.
        """
        for sv, s_off in src_anchors:
            for tv, t_off in t_anchors:
                if s_off + t_off >= best:
                    continue
                d = 0.0 if sv == tv else self.distance(sv, tv)
                if math.isfinite(d):
                    best = min(best, s_off + d + t_off)
        return best

    # ------------------------------------------------------------------
    # Persistence (only precomputed oracles override)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        raise NotImplementedError(f"{self.name!r} oracle has no persistent state")

    @classmethod
    def load(cls, path: str | Path, network: Any, mmap: bool = False) -> DistanceOracle:
        raise NotImplementedError(f"{cls.__name__} has no persistent state")


class DijkstraOracle(DistanceOracle):
    """The no-precomputation reference backend.

    ``distance`` runs an early-exit point-to-point Dijkstra;
    ``anchored_distance`` runs ONE multi-seed expansion that settles
    every target anchor (cheaper than an expansion per anchor pair,
    and byte-for-byte the computation IER refinement has always
    performed).  ``knn`` is intentionally unsupported -- INE *is* the
    Dijkstra kNN and lives in :class:`~repro.oracle.silc.INEOracle`.
    """

    info = OracleInfo(
        name="dijkstra",
        exact=True,
        op_unit="settled",
        incremental=False,
        precomputed=False,
    )

    def __init__(self, network: Any) -> None:
        self.network = network

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        expansion = IncrementalDijkstra(self.network, source=source)
        while not expansion.is_settled(target):
            if expansion.settle_next() is None:
                return math.inf
        return expansion.dist[target]

    def anchored_distance(
        self,
        src_anchors: Sequence[tuple[int, float]],
        t_anchors: Sequence[tuple[int, float]],
        best: float = math.inf,
        stats: QueryStats | None = None,
        storage: Any = None,
    ) -> float:
        expansion = IncrementalDijkstra(self.network, seeds=src_anchors)
        remaining = {tv for tv, _ in t_anchors}
        while remaining:
            settled = expansion.settle_next()
            if settled is None:
                break
            if storage is not None:
                storage.touch_vertex(settled[0])
            remaining.discard(settled[0])
        if stats is not None:
            stats.settled += expansion.stats.settled
            stats.relaxed += expansion.stats.relaxed
        for tv, t_off in t_anchors:
            if math.isfinite(expansion.dist[tv]):
                best = min(best, expansion.dist[tv] + t_off)
        return best

    def knn(self, query: Any, k: int, **kwargs: Any) -> KNNResult:
        raise NotImplementedError(
            "DijkstraOracle answers distances only; use INEOracle for kNN"
        )
