"""Pruned-landmark 2-hop labelling: the second distance oracle.

The pruned-labelling family (Akiba et al., SIGMOD 2013; pruned
highway labelling, Farhan et al., arXiv:1812.02363; hop-doubling,
arXiv:1403.0779) answers exact point-to-point distances by
intersecting two sorted label arrays -- microseconds per query --
at a build cost of one *pruned* Dijkstra per vertex.  On the
small-k / repeated-pair workloads where SILC browsing must still pay
a best-first search per query, labels win outright; on large-k
incremental browsing SILC wins.  The planner arbitrates.

Structure (directed 2-hop cover): every vertex ``u`` carries

* ``label_out[u]`` -- sorted ``(hub_rank, dist(u -> hub))`` pairs,
* ``label_in[u]``  -- sorted ``(hub_rank, dist(hub -> u))`` pairs,

and ``dist(u, v) = min over common hubs h of out[u][h] + in[v][h]``.
Hubs are processed in degree order (busiest intersections first); a
label entry is added only when the hubs already processed cannot
certify the distance -- the pruning that keeps labels small (a few
dozen entries per vertex on road-like networks, against the naive
O(N) of full landmark tables).

Storage follows the PR-4 :class:`~repro.silc.store.FlatStore` idiom:
six flat numpy columns (per-side offsets + concatenated hub/dist
arrays), saved as one ``.npy`` each so ``load(..., mmap=True)`` is an
O(1) cold start off the same directory layout as the SILC index.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Sequence

import numpy as np

from repro.integrity import atomic_directory, checked_load, verify_manifest
from repro.network.graph import SpatialNetwork
from repro.oracle.base import DistanceOracle, OracleInfo
from repro.query.results import KNNResult
from repro.query.stats import QueryStats, counted_clock

#: Column files of one saved labelling, in canonical order.
LABEL_COLUMNS = (
    "out_offsets", "out_hubs", "out_dists",
    "in_offsets", "in_hubs", "in_dists",
)

LABEL_DTYPES = {
    "out_offsets": np.int64,
    "out_hubs": np.int32,
    "out_dists": np.float64,
    "in_offsets": np.int64,
    "in_hubs": np.int32,
    "in_dists": np.float64,
}

#: Subdirectory name the labelling columns live in when persisted
#: alongside a directory-layout SILC index.
LABELS_SUBDIR = "labels"


@dataclass(frozen=True)
class LabellingBuildStats:
    """Recorded at build time; the planner's cost model reads the sizes."""

    entries_out: int
    entries_in: int
    mean_out: float
    mean_in: float
    build_seconds: float


class PrunedLabellingOracle(DistanceOracle):
    """Exact 2-hop labelling distances behind :class:`DistanceOracle`.

    Construct with :meth:`build` (pruned Dijkstra from degree-ordered
    hubs) or :meth:`load` (flat columns off disk, optionally
    memory-mapped).  ``knn`` answers through labelling-backed IER:
    objects scanned in Euclidean order, each candidate's exact network
    distance resolved by label intersection instead of a Dijkstra
    search -- the oracle must be bound to an object index first
    (:meth:`bind_objects`, done automatically by ``QueryEngine``).
    """

    info = OracleInfo(
        name="labels",
        exact=True,
        op_unit="label_scans",
        incremental=False,
        precomputed=True,
    )

    def __init__(
        self,
        network: SpatialNetwork,
        columns: dict[str, np.ndarray],
        object_index=None,
        build_stats: LabellingBuildStats | None = None,
    ) -> None:
        n = network.num_vertices
        for name in LABEL_COLUMNS:
            if name not in columns:
                raise ValueError(f"missing labelling column {name!r}")
        if columns["out_offsets"].shape != (n + 1,) or columns[
            "in_offsets"
        ].shape != (n + 1,):
            raise ValueError(
                f"labelling offsets do not match the network "
                f"({n} vertices)"
            )
        self.network = network
        self.out_offsets = columns["out_offsets"]
        self.out_hubs = columns["out_hubs"]
        self.out_dists = columns["out_dists"]
        self.in_offsets = columns["in_offsets"]
        self.in_hubs = columns["in_hubs"]
        self.in_dists = columns["in_dists"]
        self.object_index = object_index
        self.build_stats = build_stats

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: SpatialNetwork,
        object_index=None,
        progress: Callable[[int, int], None] | None = None,
    ) -> PrunedLabellingOracle:
        """Run the pruned-landmark precompute.

        One forward and one backward pruned Dijkstra per vertex, in
        descending degree order.  Unlike the SILC build this does NOT
        require strong connectivity: unreachable pairs simply share no
        hub and answer ``inf``.
        """
        t0 = counted_clock()
        n = network.num_vertices
        order = sorted(
            range(n),
            key=lambda v: (
                -(len(network.neighbors(v)) + len(network.in_neighbors(v))),
                v,
            ),
        )
        # Per-vertex labels as parallel rank/dist lists; ranks are
        # appended in increasing order (hub i is processed before hub
        # i+1), so every list stays sorted by construction.
        out_rank: list[list[int]] = [[] for _ in range(n)]
        out_dist: list[list[float]] = [[] for _ in range(n)]
        in_rank: list[list[int]] = [[] for _ in range(n)]
        in_dist: list[list[float]] = [[] for _ in range(n)]
        # Scratch: hub-rank -> distance table of the current hub's own
        # labels, for O(|label|) prune tests.
        tmp = [math.inf] * n

        def pruned_sssp(hub_rank, hub, hub_label_r, hub_label_d,
                        settle_r, settle_d, neighbors):
            """One pruned Dijkstra; adds (hub_rank, d) to settle_* labels."""
            for r, d in zip(hub_label_r, hub_label_d, strict=True):
                tmp[r] = d
            dist = {hub: 0.0}
            done = set()
            heap = [(0.0, hub)]
            while heap:
                d, u = heapq.heappop(heap)
                if u in done:
                    continue
                done.add(u)
                pruned = False
                for r, dr in zip(settle_r[u], settle_d[u], strict=True):
                    if tmp[r] + dr <= d:
                        pruned = True
                        break
                if pruned:
                    continue
                settle_r[u].append(hub_rank)
                settle_d[u].append(d)
                for v, w in neighbors(u):
                    nd = d + w
                    if nd < dist.get(v, math.inf):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            for r in hub_label_r:
                tmp[r] = math.inf

        for i, h in enumerate(order):
            # Forward run: d(h -> u) lands in label_in[u]; the prune
            # test asks whether out[h] /\ in[u] already covers it.
            pruned_sssp(i, h, out_rank[h], out_dist[h],
                        in_rank, in_dist, network.neighbors)
            # Backward run: d(u -> h) lands in label_out[u].
            pruned_sssp(i, h, in_rank[h], in_dist[h],
                        out_rank, out_dist, network.in_neighbors)
            if progress is not None:
                progress(i + 1, n)

        def flatten(ranks, dists, prefix):
            sizes = np.array([len(r) for r in ranks], dtype=np.int64)
            offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
            hubs = np.fromiter(
                (r for rs in ranks for r in rs),
                dtype=LABEL_DTYPES[f"{prefix}_hubs"],
                count=int(sizes.sum()),
            )
            flat = np.fromiter(
                (d for ds in dists for d in ds),
                dtype=np.float64,
                count=int(sizes.sum()),
            )
            return {
                f"{prefix}_offsets": offsets,
                f"{prefix}_hubs": hubs,
                f"{prefix}_dists": flat,
            }

        columns = flatten(out_rank, out_dist, "out")
        columns.update(flatten(in_rank, in_dist, "in"))
        e_out = int(columns["out_hubs"].size)
        e_in = int(columns["in_hubs"].size)
        stats = LabellingBuildStats(
            entries_out=e_out,
            entries_in=e_in,
            mean_out=e_out / n,
            mean_in=e_in / n,
            build_seconds=counted_clock() - t0,
        )
        return cls(network, columns, object_index=object_index, build_stats=stats)

    def bind_objects(self, object_index) -> PrunedLabellingOracle:
        """Attach the object index ``knn`` answers over (returns self)."""
        self.object_index = object_index
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _merge(self, source: int, target: int) -> tuple[float, int]:
        """Label intersection: ``(distance, entries scanned)``."""
        i = int(self.out_offsets[source])
        i_end = int(self.out_offsets[source + 1])
        j = int(self.in_offsets[target])
        j_end = int(self.in_offsets[target + 1])
        out_hubs, out_dists = self.out_hubs, self.out_dists
        in_hubs, in_dists = self.in_hubs, self.in_dists
        best = math.inf
        scanned = 0
        while i < i_end and j < j_end:
            scanned += 1
            a = out_hubs[i]
            b = in_hubs[j]
            if a == b:
                total = out_dists[i] + in_dists[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return best, scanned

    def distance(self, source: int, target: int) -> float:
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return 0.0
        return self._merge(source, target)[0]

    def anchored_distance(
        self,
        src_anchors: Sequence[tuple[int, float]],
        t_anchors: Sequence[tuple[int, float]],
        best: float = math.inf,
        stats: QueryStats | None = None,
        storage=None,
    ) -> float:
        scanned_total = 0
        for sv, s_off in src_anchors:
            for tv, t_off in t_anchors:
                if s_off + t_off >= best:
                    continue
                if sv == tv:
                    d = 0.0
                else:
                    d, scanned = self._merge(sv, tv)
                    scanned_total += scanned
                if math.isfinite(d):
                    best = min(best, s_off + d + t_off)
        if stats is not None:
            stats.label_scans += scanned_total
        return best

    def knn(self, query, k: int, **kwargs) -> KNNResult:
        """Labelling-backed IER (``variant``/``exact`` knobs ignored:
        the answer is always exact and sorted)."""
        if self.object_index is None:
            raise RuntimeError(
                "PrunedLabellingOracle.knn needs an object index; call "
                "bind_objects(object_index) first"
            )
        from repro.query.ier import ier_knn

        return ier_knn(self.object_index, query, k, oracle=self)

    # ------------------------------------------------------------------
    # Introspection (the planner's cost terms)
    # ------------------------------------------------------------------
    def mean_label_size(self) -> float:
        """Mean out+in label entries per vertex (scans per merge bound)."""
        n = self.network.num_vertices
        return float(self.out_hubs.size + self.in_hubs.size) / n

    def column_arrays(self) -> dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in LABEL_COLUMNS}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the label columns as one ``.npy`` per column.

        ``path`` is a directory (created if missing) -- conventionally
        the ``labels/`` subdirectory of a directory-layout SILC index,
        so one index directory carries both backends side by side.

        The write is crash-safe: columns are staged in a temporary
        sibling, a checksum ``MANIFEST.json`` is written last, and the
        directory is published atomically with ``os.replace`` -- an
        interrupted ``repro build-labels`` leaves the previous
        labelling (or nothing), never a half-written one.
        """
        with atomic_directory(path) as tmp:
            for name, array in self.column_arrays().items():
                np.save(tmp / f"{name}.npy", array)

    @classmethod
    def load(
        cls, path, network: SpatialNetwork, mmap: bool = False
    ) -> PrunedLabellingOracle:
        """Restore a saved labelling for the same network.

        ``mmap=True`` memory-maps the hub/dist columns so cold start
        touches O(num_vertices) offset bytes and label pages fault in
        on first scan -- the same contract as
        :meth:`SILCIndex.load(mmap=True) <repro.silc.SILCIndex.load>`.

        The saved manifest is verified first (sizes always, checksums
        on eager loads); a truncated or corrupted column raises
        :class:`~repro.errors.CorruptIndexError` naming it before any
        query can run.
        """
        directory = Path(path)
        mode = "r" if mmap else None
        verify_manifest(directory, deep=not mmap)
        columns = {
            name: checked_load(directory, f"{name}.npy", mmap_mode=mode)
            for name in LABEL_COLUMNS
        }
        return cls(network, columns)

    @staticmethod
    def saved_at(path) -> bool:
        """True when ``path`` holds a complete saved labelling."""
        directory = Path(path)
        return all(
            (directory / f"{name}.npy").exists() for name in LABEL_COLUMNS
        )
