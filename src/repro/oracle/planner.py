"""Cost-based query planning across distance-oracle backends.

Per query, the planner picks the backend expected to answer cheapest.
The model is the classic "measured constants x analytical shape"
split (a database optimizer in miniature):

* **Measured per-op constants** -- seconds per counted unit of work
  (SILC: one refinement; labels: one label-entry scan; INE: one
  settled vertex), recorded by :meth:`QueryPlanner.calibrate` from
  real sample queries against the live index, object set and storage
  simulator, persistable as JSON alongside the labelling columns.
* **Analytical query-shape terms** -- a per-backend linear counted-op
  model ``ops(k) = base + per_k * k`` fitted at calibration time.
  Object density enters through the fit (calibration runs against the
  serving object index, so the constants absorb the density the
  backend actually faces); ``k`` enters per query.
* **Cache state** -- when the engine's storage simulator is attached,
  SILC's predicted cost is scaled by the excess of the current miss
  rate over the calibration-time miss rate, so a cold page cache
  pushes the planner toward the backends that never touch index pages.

Every decision is counted in :class:`PlannerStats` (per-backend picks,
forced overrides, calibration cost), the same counted-first
methodology as the rest of the benchmark suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.integrity import atomic_write_text
from repro.oracle.base import DistanceOracle
from repro.query.stats import QueryStats

#: File name the calibrated constants persist under (inside the
#: ``labels/`` subdirectory of an index).
COST_MODEL_FILE = "cost_model.json"

#: Deterministic tie-break / iteration order of plannable backends.
PLANNABLE = ("silc", "labels", "ine")

#: Calibration k values the linear ops(k) model is fitted through.
CALIBRATION_KS = (1, 8)


def counted_ops(backend: str, stats: QueryStats) -> int:
    """The backend's counted unit of work accumulated in ``stats``.

    SILC counts refinement steps (including exactness
    post-refinements); labels count label-entry scans; INE counts
    settled vertices.  These are the units the per-op calibration
    constants are measured in.
    """
    if backend == "silc":
        return stats.refinements + stats.extras.get("post_refinements", 0)
    if backend == "labels":
        return stats.label_scans
    if backend == "ine":
        return stats.settled
    raise ValueError(f"unknown backend {backend!r}")


@dataclass(frozen=True)
class CostConstants:
    """The calibrated model: per-backend op counts and op seconds.

    ``op_model[b] = (base, per_k)`` predicts counted ops for one
    query at ``k``; ``op_seconds[b]`` is the measured wall-clock
    (including simulated I/O time, when a storage simulator was
    attached during calibration) per counted op.
    """

    op_model: dict[str, tuple[float, float]]
    op_seconds: dict[str, float]
    miss_rate: float = 0.0

    def predicted_ops(self, backend: str, k: int) -> float:
        base, per_k = self.op_model[backend]
        return base + per_k * k

    def predicted_cost(self, backend: str, k: int) -> float:
        return self.predicted_ops(backend, k) * self.op_seconds[backend]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        payload = {
            "op_model": {b: list(v) for b, v in self.op_model.items()},
            "op_seconds": self.op_seconds,
            "miss_rate": self.miss_rate,
        }
        path = Path(directory) / COST_MODEL_FILE
        atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, directory) -> CostConstants | None:
        path = Path(directory) / COST_MODEL_FILE
        if not path.exists():
            return None
        payload = json.loads(path.read_text())
        return cls(
            op_model={b: tuple(v) for b, v in payload["op_model"].items()},
            op_seconds=dict(payload["op_seconds"]),
            miss_rate=float(payload.get("miss_rate", 0.0)),
        )


@dataclass
class PlannerStats:
    """Counted per-decision accounting of one planner."""

    #: backend name -> queries routed to it by the cost model.
    decisions: dict[str, int] = field(default_factory=dict)
    #: Queries answered under a forced-backend override.
    forced: int = 0
    #: Calibration runs and the queries they spent.
    calibrations: int = 0
    calibration_queries: int = 0

    def record(self, backend: str, forced: bool = False) -> None:
        if forced:
            self.forced += 1
        else:
            self.decisions[backend] = self.decisions.get(backend, 0) + 1

    @property
    def planned(self) -> int:
        return sum(self.decisions.values())


class QueryPlanner:
    """Pick a kNN backend per query from the calibrated cost model.

    Parameters
    ----------
    oracles:
        Backend name -> bound :class:`DistanceOracle`.  Only names in
        :data:`PLANNABLE` participate; at least one is required.
    constants:
        A previously calibrated :class:`CostConstants` (e.g. loaded
        from the labelling directory).  When omitted, the planner
        calibrates itself lazily on the first ``choose`` call.
    force:
        Forced-backend override: every ``choose`` returns this name
        and only :attr:`PlannerStats.forced` is incremented.  The
        operational escape hatch when the model misjudges a workload.
    storage:
        The engine's storage simulator, read for the cache-state term.
    calibration_queries:
        Sample query vertices for lazy calibration (defaults to a
        deterministic spread of the network's vertices).
    """

    def __init__(
        self,
        oracles: dict[str, DistanceOracle],
        constants: CostConstants | None = None,
        force: str | None = None,
        storage=None,
        calibration_queries=None,
    ) -> None:
        self.oracles = {
            name: oracles[name] for name in PLANNABLE if name in oracles
        }
        if not self.oracles:
            raise ValueError(
                f"no plannable backend given; expected one of {PLANNABLE}"
            )
        if force is not None and force not in self.oracles:
            raise ValueError(
                f"cannot force unavailable backend {force!r}; "
                f"have {tuple(self.oracles)}"
            )
        self.constants = constants
        self.force = force
        self.storage = storage
        self.stats = PlannerStats()
        self._calibration_queries = calibration_queries

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _default_queries(self, samples: int = 4) -> list[int]:
        some = next(iter(self.oracles.values()))
        network = getattr(some, "network", None)
        if network is None:
            network = some.object_index.network
        n = network.num_vertices
        step = max(1, n // samples)
        return [(i * step + step // 3) % n for i in range(samples)]

    def calibrate(self, queries=None, ks=CALIBRATION_KS) -> CostConstants:
        """Measure per-op constants and fit the ops(k) model.

        Runs ``len(queries) * len(ks)`` real queries per backend
        against the live index/object set (exact answers, so every
        backend does comparable work) and records, per backend, the
        mean counted ops at each ``k`` (fitting the linear model) and
        the mean seconds per op.  The calibration queries warm the
        storage simulator exactly as real traffic would; the observed
        miss rate is recorded for the cache-state term.
        """
        if queries is None:
            queries = self._calibration_queries or self._default_queries()
        queries = list(queries)
        op_model: dict[str, tuple[float, float]] = {}
        op_seconds: dict[str, float] = {}
        for backend, oracle in self.oracles.items():
            mean_ops: list[float] = []
            total_ops = 0
            total_seconds = 0.0
            for k in ks:
                ops_at_k = 0
                for q in queries:
                    t0 = perf_counter()
                    result = oracle.knn(q, k, exact=True)
                    elapsed = perf_counter() - t0
                    ops = counted_ops(backend, result.stats)
                    ops_at_k += ops
                    total_ops += ops
                    total_seconds += elapsed + result.stats.io_time
                mean_ops.append(ops_at_k / len(queries))
            k1, k2 = ks[0], ks[-1]
            if k2 > k1:
                per_k = max(0.0, (mean_ops[-1] - mean_ops[0]) / (k2 - k1))
            else:
                per_k = 0.0
            base = max(0.0, mean_ops[0] - per_k * k1)
            op_model[backend] = (base, per_k)
            op_seconds[backend] = total_seconds / max(1, total_ops)
        self.constants = CostConstants(
            op_model=op_model,
            op_seconds=op_seconds,
            miss_rate=self._miss_rate(),
        )
        self.stats.calibrations += 1
        self.stats.calibration_queries += (
            len(queries) * len(ks) * len(self.oracles)
        )
        return self.constants

    def _miss_rate(self) -> float:
        if self.storage is None:
            return 0.0
        stats = self.storage.stats
        accesses = getattr(stats, "accesses", 0)
        if not accesses:
            return 0.0
        return getattr(stats, "misses", 0) / accesses

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def predicted_costs(self, k: int) -> dict[str, float]:
        """Per-backend predicted seconds for one query at ``k``."""
        if self.constants is None:
            self.calibrate()
        costs: dict[str, float] = {}
        cold_excess = max(0.0, self._miss_rate() - self.constants.miss_rate)
        for backend in self.oracles:
            cost = self.constants.predicted_cost(backend, k)
            if backend == "silc" and cold_excess > 0.0:
                # Colder cache than calibration saw: each SILC op pays
                # proportionally more simulated I/O.
                cost *= 1.0 + cold_excess
            costs[backend] = cost
        return costs

    def choose(self, query, k: int) -> str:
        """The backend name this query should run on."""
        if self.force is not None:
            self.stats.record(self.force, forced=True)
            return self.force
        costs = self.predicted_costs(k)
        best = min(costs, key=lambda b: (costs[b], PLANNABLE.index(b)))
        self.stats.record(best)
        return best

    def explain(self, k: int) -> str:
        """One-line decision trace for logs and the runbook."""
        costs = self.predicted_costs(k)
        parts = ", ".join(
            f"{b}={c * 1e6:.1f}us" for b, c in sorted(costs.items())
        )
        winner = min(costs, key=lambda b: (costs[b], PLANNABLE.index(b)))
        return f"k={k}: {parts} -> {winner}"
