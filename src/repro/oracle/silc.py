"""The paper's backends behind the :class:`DistanceOracle` interface.

:class:`SILCOracle` wraps a built :class:`~repro.silc.SILCIndex` plus
the best-first kNN search -- the exact code path ``QueryEngine`` has
always run, extracted behind the shared interface so the planner can
weigh it against other backends.  :class:`INEOracle` wraps the paper's
Incremental Network Expansion baseline: no precomputed state, kNN by a
growing Dijkstra ball, distances by point-to-point Dijkstra.
"""

from __future__ import annotations

import math

from repro.objects.index import ObjectIndex
from repro.oracle.base import DijkstraOracle, DistanceOracle, OracleInfo
from repro.query.bestfirst import best_first_knn
from repro.query.ine import ine_knn
from repro.query.results import KNNResult
from repro.silc.index import SILCIndex


class SILCOracle(DistanceOracle):
    """SILC browsing: shortest-path quadtrees + best-first refinement.

    Behavior-preserving extraction of the historical
    ``best_first_knn``/``SILCIndex.distance`` path: every parameter
    (``variant``, ``exact``, ``max_distance``) threads through
    untouched, and the attached storage simulator keeps accounting
    page traffic exactly as before.
    """

    info = OracleInfo(
        name="silc",
        exact=True,
        op_unit="refinements",
        incremental=True,
        precomputed=True,
    )

    def __init__(self, index: SILCIndex, object_index: ObjectIndex) -> None:
        self.index = index
        self.object_index = object_index

    def distance(self, source: int, target: int) -> float:
        return self.index.distance(source, target)

    def knn(
        self,
        query,
        k: int,
        variant: str = "knn",
        exact: bool = False,
        max_distance: float = math.inf,
    ) -> KNNResult:
        return best_first_knn(
            self.index, self.object_index, query, k,
            variant=variant, exact=exact, max_distance=max_distance,
        )

    def save(self, path) -> None:
        self.index.save(path)


class INEOracle(DistanceOracle):
    """Incremental Network Expansion: Dijkstra as a kNN backend.

    No precomputed state -- its selling point (always available,
    always exact) and its per-query cost (visits every edge closer
    than the k-th neighbor).  The planner picks it when the expected
    Dijkstra ball is small: high object density, small k.
    """

    info = OracleInfo(
        name="ine",
        exact=True,
        op_unit="settled",
        incremental=True,
        precomputed=False,
    )

    def __init__(self, object_index: ObjectIndex, storage=None) -> None:
        self.object_index = object_index
        self.storage = storage
        self._p2p = DijkstraOracle(object_index.network)

    def distance(self, source: int, target: int) -> float:
        return self._p2p.distance(source, target)

    def anchored_distance(self, *args, **kwargs) -> float:
        return self._p2p.anchored_distance(*args, **kwargs)

    def knn(self, query, k: int, **kwargs) -> KNNResult:
        # ``variant``/``exact`` are SILC knobs; INE is always exact and
        # has no variants, so they are accepted and ignored.
        return ine_knn(self.object_index, query, k, storage=self.storage)
