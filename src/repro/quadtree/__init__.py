"""Quadtrees: Morton-block tables, region builds, and the object index.

* :class:`BlockTable` / :class:`MortonBlock` -- the columnar storage
  format of shortest-path quadtrees,
* :func:`build_region_blocks` -- colored region-quadtree construction,
* :class:`PMRQuadtree` -- the spatial index over the object set ``S``.
"""

from repro.quadtree.blocks import BlockTable, MortonBlock
from repro.quadtree.region import build_region_blocks, next_different
from repro.quadtree.pmr import PMRNode, PMRQuadtree

__all__ = [
    "BlockTable",
    "MortonBlock",
    "build_region_blocks",
    "next_different",
    "PMRQuadtree",
    "PMRNode",
]
