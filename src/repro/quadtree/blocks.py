"""Sorted Morton-block tables.

A shortest-path quadtree is stored as a flat table of disjoint Morton
blocks sorted by code.  Each block carries the *color* (the first-hop
vertex shared by every vertex in the block) and the ``[lambda_min,
lambda_max]`` interval of network/Euclidean distance ratios the paper
attaches to every block for progressive refinement.

The table is columnar (parallel numpy arrays) because a SILC index
holds one table per vertex -- tens of thousands of tables -- and
Python object overhead per block would dwarf the actual data.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from repro.geometry.morton import block_cells


@dataclass(frozen=True, slots=True)
class MortonBlock:
    """One decoded block row, for inspection and tests."""

    code: int
    level: int
    color: int
    lam_min: float
    lam_max: float

    @property
    def cells(self) -> int:
        return block_cells(self.level)

    @property
    def code_end(self) -> int:
        return self.code + self.cells


def compute_ends(codes: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """Exclusive end code of each block: ``code + 4**level``."""
    return codes + (np.int64(1) << (2 * levels.astype(np.int64)))


class BlockTable:
    """Immutable sorted collection of disjoint Morton blocks.

    Supports the two operations the SILC framework performs at query
    time: point location of a vertex's grid cell (binary search) and
    retrieval of every block overlapping a code range (for bounding
    object-index blocks).

    A table either owns its five columns (the validating constructor)
    or is a zero-copy *view* over slices of a shared columnar store
    (:meth:`view`, used by :class:`repro.silc.store.FlatStore` so tens
    of thousands of per-vertex tables share one set of arrays).
    """

    __slots__ = (
        "codes",
        "levels",
        "colors",
        "lam_min",
        "lam_max",
        "_ends",
        "_codes_list",
        "_ends_list",
        "_colors_list",
        "_lam_min_list",
        "_lam_max_list",
    )

    def __init__(
        self,
        codes: np.ndarray,
        levels: np.ndarray,
        colors: np.ndarray,
        lam_min: np.ndarray,
        lam_max: np.ndarray,
    ) -> None:
        self.codes = np.asarray(codes, dtype=np.int64)
        self.levels = np.asarray(levels, dtype=np.int8)
        self.colors = np.asarray(colors, dtype=np.int32)
        self.lam_min = np.asarray(lam_min, dtype=np.float64)
        self.lam_max = np.asarray(lam_max, dtype=np.float64)
        n = self.codes.size
        if not (
            self.levels.size == n
            and self.colors.size == n
            and self.lam_min.size == n
            and self.lam_max.size == n
        ):
            raise ValueError("block table columns must have equal length")
        self._ends = compute_ends(self.codes, self.levels)
        if n > 1:
            if not np.all(np.diff(self.codes) > 0):
                raise ValueError("block codes must be strictly increasing")
            if not np.all(self._ends[:-1] <= self.codes[1:]):
                raise ValueError("blocks must be disjoint")
        # Lazily built plain-list mirrors: bisect on a Python list is
        # several times faster than np.searchsorted on the tiny arrays
        # involved, and locate() is the hottest operation in the
        # library (one call per refinement step).
        self._codes_list: list[int] | None = None
        self._ends_list: list[int] | None = None
        self._colors_list: list[int] | None = None
        self._lam_min_list: list[float] | None = None
        self._lam_max_list: list[float] | None = None

    @classmethod
    def view(
        cls,
        codes: np.ndarray,
        levels: np.ndarray,
        colors: np.ndarray,
        lam_min: np.ndarray,
        lam_max: np.ndarray,
        ends: np.ndarray | None = None,
    ) -> BlockTable:
        """Trusted zero-copy construction over pre-validated columns.

        Skips dtype coercion and the sortedness/disjointness checks --
        the columns must already satisfy the invariants (they come out
        of :func:`repro.quadtree.region.build_region_blocks` or a
        round-tripped save).  ``ends`` may pass a precomputed end-code
        slice; when omitted it is derived lazily on first probe, which
        keeps mmap-backed loads from faulting in every column page.
        """
        self = object.__new__(cls)
        self.codes = codes
        self.levels = levels
        self.colors = colors
        self.lam_min = lam_min
        self.lam_max = lam_max
        self._ends = ends
        self._codes_list = None
        self._ends_list = None
        self._colors_list = None
        self._lam_min_list = None
        self._lam_max_list = None
        return self

    @property
    def ends(self) -> np.ndarray:
        """Exclusive end codes, derived lazily for view tables."""
        if self._ends is None:
            self._ends = compute_ends(self.codes, self.levels)
        return self._ends

    def _lists(self) -> tuple[list[int], list[int]]:
        if self._codes_list is None:
            # Build every mirror into locals first and publish
            # ``_codes_list`` last: concurrent query workers may race
            # into this lazy initialization, and the guard must not
            # become true while sibling mirrors are still ``None``.
            codes_list = self.codes.tolist()
            ends_list = self.ends.tolist()
            self._colors_list = self.colors.tolist()
            self._lam_min_list = self.lam_min.tolist()
            self._lam_max_list = self.lam_max.tolist()
            self._ends_list = ends_list
            self._codes_list = codes_list
        return self._codes_list, self._ends_list

    def lookup(self, cell_code: int) -> tuple[int, float, float, int] | None:
        """Fused point location: ``(color, lam_min, lam_max, row)``.

        The single-call form of :meth:`locate` used on the query hot
        path; returns plain Python scalars, or ``None`` when no block
        contains the cell.
        """
        codes, ends = self._lists()
        i = bisect_right(codes, cell_code) - 1
        if i >= 0 and cell_code < ends[i]:
            return (
                self._colors_list[i],
                self._lam_min_list[i],
                self._lam_max_list[i],
                i,
            )
        return None

    def __len__(self) -> int:
        return int(self.codes.size)

    def block(self, index: int) -> MortonBlock:
        """Decode row ``index`` into a :class:`MortonBlock`."""
        return MortonBlock(
            code=int(self.codes[index]),
            level=int(self.levels[index]),
            color=int(self.colors[index]),
            lam_min=float(self.lam_min[index]),
            lam_max=float(self.lam_max[index]),
        )

    def iter_blocks(self):
        """Yield every row as a :class:`MortonBlock`."""
        for i in range(len(self)):
            yield self.block(i)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def locate(self, cell_code: int) -> int:
        """Index of the block containing ``cell_code``, or ``-1``.

        Binary search over the sorted starts; the disjointness
        invariant makes the candidate unique.
        """
        codes, ends = self._lists()
        i = bisect_right(codes, cell_code) - 1
        if i >= 0 and cell_code < ends[i]:
            return i
        return -1

    def overlapping(self, lo: int, hi: int) -> range:
        """Row indices of blocks intersecting the code range ``[lo, hi)``.

        Disjoint sorted blocks intersecting an interval form a
        contiguous run, so the result is a :class:`range`.
        """
        if hi <= lo:
            return range(0)
        codes, ends = self._lists()
        start = bisect_right(codes, lo) - 1
        if start < 0 or ends[start] <= lo:
            start += 1
        end = bisect_left(codes, hi)
        return range(start, end)

    def total_cells(self) -> int:
        """Grid cells covered by all blocks (coverage diagnostics)."""
        return int((self.ends - self.codes).sum())

    def storage_bytes(self, record_bytes: int = 16) -> int:
        """Simulated on-disk footprint of the table."""
        return len(self) * record_bytes
