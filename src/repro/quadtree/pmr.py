"""A bucket PMR-style quadtree over the object set ``S``.

The paper keeps the query-object domain *decoupled* from the network:
objects (restaurants, gas stations, ...) live in their own spatial
index -- a PMR quadtree -- which the kNN algorithm traverses
best-first, expanding NONLEAF blocks into children and LEAF blocks
into objects.  This module supplies that index.

Splitting follows the bucket discipline: a leaf that exceeds its
capacity splits into the four quadrants (recursively, until the
capacity holds or single-cell resolution is reached, where overflow is
tolerated -- the PMR analogue of its bounded-splitting rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.geometry.grid import GridEmbedding
from repro.geometry.morton import block_cells, morton_encode
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass
class PMRNode:
    """One quadtree block: a leaf bucket or an internal split."""

    code: int
    level: int
    children: list[PMRNode] | None = None
    entries: list[tuple[int, int, Point]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def object_ids(self) -> list[int]:
        return [oid for oid, _, _ in self.entries]


class PMRQuadtree:
    """Quadtree index over identified points.

    Parameters
    ----------
    embedding:
        Grid embedding shared with the SILC index, so PMR blocks and
        shortest-path-quadtree blocks live on the same Morton grid and
        can be intersected by code arithmetic alone.
    capacity:
        Bucket size before a leaf splits.
    """

    def __init__(self, embedding: GridEmbedding, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("bucket capacity must be at least 1")
        self.embedding = embedding
        self.capacity = capacity
        self.root = PMRNode(code=0, level=embedding.order)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, oid: int, point: Point) -> None:
        """Insert an identified point; duplicates of ``oid`` are allowed."""
        cx, cy = self.embedding.cell_of(point)
        cell = morton_encode(cx, cy)
        node = self.root
        while not node.is_leaf:
            node = self._child_for(node, cell)
        node.entries.append((oid, cell, point))
        self._size += 1
        self._split_if_needed(node)

    def _child_for(self, node: PMRNode, cell: int) -> PMRNode:
        assert node.children is not None
        step = block_cells(node.level - 1)
        idx = (cell - node.code) // step
        return node.children[int(idx)]

    def _split_if_needed(self, node: PMRNode) -> None:
        while len(node.entries) > self.capacity and node.level > 0:
            step = block_cells(node.level - 1)
            node.children = [
                PMRNode(code=node.code + i * step, level=node.level - 1)
                for i in range(4)
            ]
            for oid, cell, point in node.entries:
                child = node.children[int((cell - node.code) // step)]
                child.entries.append((oid, cell, point))
            node.entries = []
            # Only one child can still overflow past capacity when the
            # others received nothing; recurse into the fullest child.
            node = max(node.children, key=lambda c: len(c.entries))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_rect(self, node: PMRNode) -> Rect:
        """World-space rectangle of a node's block."""
        return self.embedding.block_world_rect(node.code, node.level)

    def iter_nodes(self) -> Iterator[PMRNode]:
        """Depth-first iteration over every node."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.children is not None:
                stack.extend(node.children)

    def num_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Maximum split depth below the root."""
        root_level = self.root.level
        return max(root_level - n.level for n in self.iter_nodes())

    def all_entries(self) -> list[tuple[int, int, Point]]:
        """Every stored ``(oid, cell, point)`` triple."""
        out: list[tuple[int, int, Point]] = []
        for node in self.iter_nodes():
            if node.is_leaf:
                out.extend(node.entries)
        return out
