"""Region-quadtree construction over colored grid points.

This is the paper's core compression step: given every vertex's grid
cell, a *color* per vertex (its first hop from some source) and a
*value* per vertex (its network/Euclidean distance ratio), produce the
maximal aligned Morton blocks in which all vertices share one color --
the shortest-path quadtree, annotated with min/max values per block.

The builder never materializes a pointer tree.  Vertices are presorted
by Morton code once per network; each per-source build walks an
explicit stack of (block, slice) pairs, splitting only blocks whose
slice is color-mixed.  Splits locate child slices with binary search,
so the per-source cost is ``O(B log N + N)`` for ``B`` output blocks.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.morton import MAX_ORDER, block_cells
from repro.quadtree.blocks import BlockTable


def next_different(labels: np.ndarray) -> np.ndarray:
    """For each index, the next index whose label differs.

    ``nd[i] = min{j > i : labels[j] != labels[i]}`` (or ``len(labels)``
    when no such ``j``).  A slice ``[i, j)`` is single-colored iff
    ``nd[i] >= j`` -- the O(1) purity test that makes the quadtree
    build linear.
    """
    labels = np.asarray(labels)
    n = labels.size
    nd = np.empty(n, dtype=np.int64)
    if n == 0:
        return nd
    change = np.flatnonzero(labels[1:] != labels[:-1]) + 1
    boundaries = np.concatenate([change, [n]])
    starts = np.concatenate([[0], change])
    for s, b in zip(starts, boundaries, strict=True):
        nd[s:b] = b
    return nd


def build_region_blocks(
    sorted_codes: np.ndarray,
    colors: np.ndarray,
    values: np.ndarray,
    grid_order: int,
) -> BlockTable:
    """Build the maximal single-color Morton blocks.

    Parameters
    ----------
    sorted_codes:
        Morton codes of the points, **strictly increasing** (each point
        in its own grid cell -- the SILC index enforces this).
    colors:
        Integer color per point, aligned with ``sorted_codes``.
    values:
        Float value per point; each block records the min and max over
        its points (the lambda interval).
    grid_order:
        The grid spans ``4**grid_order`` cells: the root block.

    Returns
    -------
    A :class:`BlockTable` whose blocks are disjoint, cover every input
    point, and are *maximal*: the four children of any coarser aligned
    block would mix colors (or the block is the root).
    """
    codes = np.asarray(sorted_codes, dtype=np.int64)
    colors = np.asarray(colors)
    values = np.asarray(values, dtype=np.float64)
    n = codes.size
    if colors.size != n or values.size != n:
        raise ValueError("codes, colors and values must be aligned")
    if not (0 < grid_order <= MAX_ORDER):
        raise ValueError(f"grid_order must be in (0, {MAX_ORDER}]")
    if n == 0:
        empty = np.empty(0)
        return BlockTable(empty, empty, empty, empty, empty)
    if n > 1 and not np.all(np.diff(codes) > 0):
        raise ValueError("codes must be strictly increasing (one point per cell)")
    root_cells = block_cells(grid_order)
    if int(codes[-1]) >= root_cells:
        raise ValueError("a code lies outside the root block")

    nd = next_different(colors)

    out_codes: list[int] = []
    out_levels: list[int] = []
    out_colors: list[int] = []
    out_lmin: list[float] = []
    out_lmax: list[float] = []

    # Stack entries: (block_code, level, lo, hi) with points[lo:hi]
    # inside the block.  Children are pushed in reverse Z order so the
    # emitted blocks come out already sorted by code.
    stack: list[tuple[int, int, int, int]] = [(0, grid_order, 0, n)]
    while stack:
        code, level, lo, hi = stack.pop()
        if hi <= lo:
            continue
        if nd[lo] >= hi:
            seg = values[lo:hi]
            out_codes.append(code)
            out_levels.append(level)
            out_colors.append(int(colors[lo]))
            out_lmin.append(float(seg.min()))
            out_lmax.append(float(seg.max()))
            continue
        # Mixed colors: split.  level > 0 is guaranteed because a
        # single cell holds exactly one point (strictly increasing
        # codes), which is trivially pure.
        step = block_cells(level - 1)
        cut1 = lo + int(np.searchsorted(codes[lo:hi], code + step))
        cut2 = lo + int(np.searchsorted(codes[lo:hi], code + 2 * step))
        cut3 = lo + int(np.searchsorted(codes[lo:hi], code + 3 * step))
        stack.append((code + 3 * step, level - 1, cut3, hi))
        stack.append((code + 2 * step, level - 1, cut2, cut3))
        stack.append((code + step, level - 1, cut1, cut2))
        stack.append((code, level - 1, lo, cut1))

    return BlockTable(
        np.array(out_codes, dtype=np.int64),
        np.array(out_levels, dtype=np.int8),
        np.array(out_colors, dtype=np.int32),
        np.array(out_lmin),
        np.array(out_lmax),
    )
