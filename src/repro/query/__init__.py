"""Query processing: the paper's kNN algorithm, variants and baselines.

Public entry points (all return a :class:`KNNResult`):

* :func:`knn`    -- the non-incremental best-first algorithm (p.23),
* :func:`inn`    -- the incremental variant,
* :func:`knn_i`  -- pruning with the one-shot estimate ``D0k``,
* :func:`knn_m`  -- refinement-minimizing variant (unsorted output),
* :func:`ine_knn` -- Incremental Network Expansion baseline,
* :func:`ier_knn` -- Incremental Euclidean Restriction baseline.
"""

from repro.query.bestfirst import VARIANTS, best_first_knn
from repro.query.browsing import (
    aggregate_nn,
    approximate_knn,
    browse,
    distance_join,
    range_query,
)
from repro.query.distances import ObjectDistanceState, QueryHandle
from repro.query.ier import ier_knn
from repro.query.ine import ine_knn
from repro.query.location import (
    resolve_location,
    same_edge_direct,
    source_anchors,
    target_anchors,
)
from repro.query.results import KNNResult, Neighbor
from repro.query.stats import QueryStats


def knn(index, object_index, query, k, exact=False):
    """k nearest neighbors with the paper's base kNN algorithm."""
    return best_first_knn(index, object_index, query, k, variant="knn", exact=exact)


def inn(index, object_index, query, k, exact=False):
    """k nearest neighbors with the incremental (INN) variant."""
    return best_first_knn(index, object_index, query, k, variant="inn", exact=exact)


def knn_i(index, object_index, query, k, exact=False):
    """k nearest neighbors with the D0k-pruned (kNN-I) variant."""
    return best_first_knn(index, object_index, query, k, variant="knn_i", exact=exact)


def knn_m(index, object_index, query, k, exact=False):
    """k nearest neighbors with the KMINDIST (kNN-M) variant.

    Output membership is exact but unsorted (``result.ordered`` is
    False) -- the cost of skipping total-ordering refinements.
    """
    return best_first_knn(index, object_index, query, k, variant="knn_m", exact=exact)


#: Name -> callable map used by the benchmark harness.
SILC_ALGORITHMS = {
    "knn": knn,
    "inn": inn,
    "knn_i": knn_i,
    "knn_m": knn_m,
}

__all__ = [
    "knn",
    "inn",
    "knn_i",
    "knn_m",
    "ine_knn",
    "ier_knn",
    "best_first_knn",
    "browse",
    "range_query",
    "approximate_knn",
    "aggregate_nn",
    "distance_join",
    "VARIANTS",
    "SILC_ALGORITHMS",
    "KNNResult",
    "Neighbor",
    "QueryStats",
    "QueryHandle",
    "ObjectDistanceState",
    "resolve_location",
    "source_anchors",
    "target_anchors",
    "same_edge_direct",
]
