"""The paper's best-first k-nearest-neighbor algorithm and variants.

One engine implements the non-incremental best-first search of p.23
and its three published variants through small policy differences:

=========  =====================================================
``knn``    the base algorithm: result queue ``L`` maintained
           continuously, the pruning distance ``Dk`` (max distance
           bound of the k-th candidate) prunes enqueues and halts
           the search.
``inn``    the incremental variant: no ``L``, no ``Dk``; neighbors
           are confirmed one at a time until k are reported.
``knn_i``  computes the one-shot estimate ``D0k`` from the first k
           objects encountered and prunes with it, avoiding the
           continuous ``L`` maintenance of ``knn``.
``knn_m``  additionally tracks KMINDIST (a sound lower bound on
           the k-th neighbor distance) and accepts any object whose
           upper bound falls below it *without further refinement*
           -- fewer refinements, unsorted output.
=========  =====================================================

Correctness invariant shared by all variants (the paper's Theorem 1):
an object popped from ``Q`` whose distance interval does not collide
with the head of ``Q`` can be reported, because interval lower bounds
are monotone under refinement, so nothing still queued can ever beat
it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import bisect_left, insort

from repro.errors import DeadlineExceeded
from repro.objects.index import ObjectIndex
from repro.objects.model import NetworkPosition
from repro.query.distances import ObjectDistanceState, QueryHandle
from repro.query.location import resolve_location
from repro.query.results import KNNResult, Neighbor
from repro.query.stats import QueryStats, counted_clock
from repro.silc.index import SILCIndex
from repro.silc.refinement import RefinementCounter

_NODE = 0
_OBJECT = 1

VARIANTS = ("knn", "inn", "knn_i", "knn_m")


class _ResultQueue:
    """The paper's ``L``: candidates ordered by distance upper bound.

    ``dk(k)`` is the k-th smallest upper bound -- the pruning distance.
    Every operation is counted and timed so the kNN-PQ overhead series
    of fig p.38 can be reported.
    """

    __slots__ = ("entries", "_where", "_seq", "stats")

    def __init__(self, stats: QueryStats) -> None:
        self.entries: list[tuple[float, int, int]] = []  # (hi, seq, oid)
        self._where: dict[int, tuple[float, int, int]] = {}  # oid -> entry
        self._seq = itertools.count()
        self.stats = stats

    def add(self, oid: int, hi: float) -> None:
        start = counted_clock()
        entry = (hi, next(self._seq), oid)
        insort(self.entries, entry)
        self._where[oid] = entry
        self.stats.l_ops += 1
        self.stats.l_time += counted_clock() - start

    def update(self, oid: int, hi: float) -> None:
        start = counted_clock()
        # The oid -> entry map turns the former linear scan into one
        # binary search (entries are unique tuples, so bisect lands
        # exactly on the stale entry).
        old = self._where.get(oid)
        if old is not None:
            i = bisect_left(self.entries, old)
            if i < len(self.entries) and self.entries[i] is old:
                del self.entries[i]
        entry = (hi, next(self._seq), oid)
        insort(self.entries, entry)
        self._where[oid] = entry
        self.stats.l_ops += 1
        self.stats.l_time += counted_clock() - start

    def dk(self, k: int) -> float:
        start = counted_clock()
        value = self.entries[k - 1][0] if len(self.entries) >= k else math.inf
        self.stats.l_ops += 1
        self.stats.l_time += counted_clock() - start
        return value


class _KMinDistTracker:
    """Sound lower bound on the k-th neighbor distance (kNN-M).

    Every object is either *seen* (its interval lower bound is in
    ``lows``) or hidden under an unexpanded block of the queue (its
    distance is at least that block's bound, hence at least
    ``min_block``).  The k-th neighbor distance therefore never falls
    below ``min(k-th smallest seen bound, smallest queued block
    bound)`` -- and any object whose *upper* bound is below that value
    is certainly one of the k nearest.
    """

    __slots__ = ("lows", "blocks", "k")

    def __init__(self, k: int) -> None:
        self.lows: list[float] = []
        self.blocks: list[float] = []
        self.k = k

    def add(self, lo: float) -> None:
        insort(self.lows, lo)

    def replace(self, old: float, new: float) -> None:
        i = bisect_left(self.lows, old)
        if i < len(self.lows) and self.lows[i] == old:
            del self.lows[i]
        insort(self.lows, new)

    def block_pushed(self, bound: float) -> None:
        insort(self.blocks, bound)

    def block_popped(self, bound: float) -> None:
        i = bisect_left(self.blocks, bound)
        if i < len(self.blocks) and self.blocks[i] == bound:
            del self.blocks[i]

    def value(self) -> float:
        min_block = self.blocks[0] if self.blocks else math.inf
        if len(self.lows) < self.k:
            return min_block
        return min(self.lows[self.k - 1], min_block)


def best_first_knn(
    index: SILCIndex,
    object_index: ObjectIndex,
    query,
    k: int,
    variant: str = "knn",
    exact: bool = False,
    max_distance: float = math.inf,
    time_budget: float | None = None,
) -> KNNResult:
    """Find the ``k`` network-nearest objects to ``query``.

    Parameters
    ----------
    index:
        A built :class:`SILCIndex` over the network.
    object_index:
        The spatial index over the (decoupled) object set.
    query:
        A vertex id, a :class:`NetworkPosition`, or a free
        :class:`Point` (snapped to the nearest vertex).
    k:
        Number of neighbors; fewer are returned when the object set is
        smaller.
    variant:
        One of ``knn``, ``inn``, ``knn_i``, ``knn_m`` (see module
        docstring).
    exact:
        When True, fully refine the reported neighbors so that
        ``Neighbor.distance`` is the exact network distance.  The
        extra refinements are recorded separately in
        ``stats.extras['post_refinements']``.
    max_distance:
        External pruning cap in network-weight units: the search may
        omit any object whose network distance strictly exceeds it, and
        stops as soon as nothing closer remains -- so a cap far below
        the local Dk makes the query cheap.  Objects at exactly
        ``max_distance`` are still reported.  The sharded partition
        router passes its current global k-th distance here, turning
        visits to far shards into near no-ops.  ``inf`` (the default)
        disables the cap.
    time_budget:
        Remaining wall-clock budget in seconds for this search.  When
        it runs out -- in the main loop, the exact-refinement pass, or
        the fallback fill -- :class:`~repro.errors.DeadlineExceeded`
        is raised so the caller never receives a late (or partially
        refined) result.  ``None`` (the default) disables the cap and
        keeps the historical behavior byte-for-byte: the deadline is
        only ever *checked*, never used to alter the search order, so
        a query that finishes within budget returns the identical
        answer it would have without one.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if k < 1:
        raise ValueError("k must be at least 1")
    # The loop breaks at ``lo >= prune_bound()``; nudging the cap one
    # ulp up keeps objects at exactly max_distance reportable.
    cap = math.nextafter(max_distance, math.inf)

    t_start = counted_clock()
    deadline = None if time_budget is None else t_start + time_budget

    def check_deadline(confirmed_count: int) -> None:
        if deadline is not None and counted_clock() > deadline:
            raise DeadlineExceeded(
                f"kNN search exceeded its {time_budget:.4f}s budget "
                f"({confirmed_count} of {k} neighbors confirmed)"
            )

    if time_budget is not None and time_budget <= 0:
        raise DeadlineExceeded(
            f"kNN search started with no remaining budget "
            f"({time_budget:.4f}s)"
        )
    stats = QueryStats()
    counter = RefinementCounter()
    position: NetworkPosition = resolve_location(index.network, query)
    handle = QueryHandle(index, object_index, position, counter)
    io_before = index.storage.snapshot() if index.storage is not None else None

    seq = itertools.count()
    heap: list[tuple[float, int, int, object]] = []

    use_dk = variant == "knn"
    use_d0k = variant in ("knn_i", "knn_m")
    result_queue = _ResultQueue(stats) if use_dk else None
    kmin_tracker = _KMinDistTracker(k) if variant == "knn_m" else None

    d0k = math.inf
    first_k_his: list[float] = []
    states: dict[int, ObjectDistanceState] = {}
    confirmed: list[ObjectDistanceState] = []

    def prune_bound() -> float:
        if use_dk:
            return min(result_queue.dk(k), cap)
        if use_d0k:
            return min(d0k, cap)
        return cap

    def push(lo: float, kind: int, payload: object) -> None:
        heapq.heappush(heap, (lo, next(seq), kind, payload))
        stats.queue_pushes += 1
        if kind == _NODE and kmin_tracker is not None:
            kmin_tracker.block_pushed(lo)
        if len(heap) > stats.max_queue:
            stats.max_queue = len(heap)

    root = object_index.root
    if not (root.is_leaf and not root.entries):
        push(handle.block_bound(root), _NODE, root)

    while heap and len(confirmed) < k:
        check_deadline(len(confirmed))
        lo, _, kind, payload = heapq.heappop(heap)
        if kind == _NODE and kmin_tracker is not None:
            kmin_tracker.block_popped(lo)
        if lo >= prune_bound():
            break  # nothing remaining can enter the k nearest
        if kind == _NODE:
            node = payload
            if node.is_leaf:
                stats.leaf_expansions += 1
                bound = prune_bound()
                # First pass: register every object of the leaf, so the
                # KMINDIST tracker sees all siblings before any accept
                # decision (accepting against a partially registered
                # leaf would overestimate the k-th neighbor bound).
                fresh: list[ObjectDistanceState] = []
                for oid, _, _ in node.entries:
                    if oid in states:
                        # Extent objects are indexed once per part;
                        # only the first encounter creates a state.
                        continue
                    state = handle.object_state(object_index.get(oid))
                    stats.objects_seen += 1
                    states[oid] = state
                    fresh.append(state)
                    interval = state.interval
                    if use_d0k and len(first_k_his) < k:
                        first_k_his.append(interval.hi)
                        if len(first_k_his) == k:
                            d0k = max(first_k_his)
                            stats.d0k = d0k
                    if use_dk:
                        result_queue.add(oid, interval.hi)
                    if kmin_tracker is not None:
                        kmin_tracker.add(interval.lo)
                # Second pass: accept certain members outright (kNN-M)
                # or enqueue survivors of the pruning bound.
                for state in fresh:
                    interval = state.interval
                    if (
                        kmin_tracker is not None
                        and len(confirmed) < k
                        and interval.hi <= kmin_tracker.value()
                    ):
                        stats.kmindist_accepts += 1
                        stats.confirmations += 1
                        confirmed.append(state)
                        continue
                    if interval.lo < bound:
                        push(interval.lo, _OBJECT, state)
            else:
                stats.nonleaf_expansions += 1
                bound = prune_bound()
                for child in node.children:
                    if child.is_leaf and not child.entries:
                        continue
                    child_bound = handle.block_bound(child)
                    if child_bound < bound:
                        push(child_bound, _NODE, child)
            continue

        state: ObjectDistanceState = payload
        interval = state.interval
        top_lo = heap[0][0] if heap else math.inf
        if interval.hi <= top_lo:
            # No collision: reporting is safe (Theorem 1).
            stats.confirmations += 1
            confirmed.append(state)
            continue
        stats.collisions += 1
        if kmin_tracker is not None:
            kmindist = kmin_tracker.value()
            if interval.hi <= kmindist:
                # Certain member of the k nearest: accept unrefined.
                stats.kmindist_accepts += 1
                stats.confirmations += 1
                confirmed.append(state)
                continue
        old_lo = interval.lo
        state.refine()
        new_interval = state.interval
        if use_dk:
            result_queue.update(state.oid, new_interval.hi)
        if kmin_tracker is not None:
            kmin_tracker.replace(old_lo, new_interval.lo)
        if new_interval.lo < prune_bound():
            push(new_interval.lo, _OBJECT, state)

    stats.refinements = counter.count

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    result_states = confirmed[:k]
    if len(result_states) < k and len(states) >= len(result_states):
        # Boundary ties (or k > |S|): fall back to the tightest
        # remaining candidates, resolved exactly for safety.
        confirmed_oids = {s.oid for s in result_states}
        # Candidates past the external cap are omittable by contract
        # (their distance exceeds every answer the caller can use).
        remaining = [
            s
            for s in states.values()
            if s.oid not in confirmed_oids and s.interval.lo <= max_distance
        ]
        remaining.sort(key=lambda s: s.interval.lo)
        fill = remaining[: k - len(result_states)]
        for s in fill:
            check_deadline(len(result_states))
            s.refine_fully()
        fill.sort(key=lambda s: s.interval.lo)
        result_states.extend(fill)
        stats.extras["fallback_fill"] = len(fill)

    post_refinements = 0
    if exact:
        before = counter.count
        for s in result_states:
            check_deadline(len(result_states))
            s.refine_fully()
        post_refinements = counter.count - before
        stats.extras["post_refinements"] = post_refinements
        stats.refinements = counter.count - post_refinements
        if variant != "knn_m":
            result_states.sort(key=lambda s: s.interval.lo)

    neighbors = [
        Neighbor(
            oid=s.oid,
            interval=s.interval,
            distance=s.interval.lo if s.interval.is_exact else None,
        )
        for s in result_states
    ]

    if neighbors:
        his = sorted(n.interval.hi for n in neighbors)
        stats.dk_final = his[min(k, len(his)) - 1]
    if kmin_tracker is not None:
        stats.kmindist_final = kmin_tracker.value()

    if io_before is not None and index.storage is not None:
        # stats_since reads the calling thread's counters on sharded
        # simulators, so concurrent queries never pollute each other's
        # per-query I/O accounting.
        delta = index.storage.stats_since(io_before)
        stats.io_accesses = delta.accesses
        stats.io_misses = delta.misses
        stats.io_time = delta.io_time(index.storage.miss_latency)

    stats.elapsed = counted_clock() - t_start
    return KNNResult(
        neighbors=neighbors, stats=stats, ordered=(variant != "knn_m")
    )
