"""Further query operators on the SILC primitives.

The paper positions SILC as "a general framework for query processing
in spatial networks -- not restricted to nearest neighbor queries"
(p.40) and lists new query types as future work (p.42).  This module
supplies the operators that follow directly from distance intervals +
progressive refinement:

* :func:`browse` -- **incremental distance browsing**, the title
  operation: a generator yielding objects one at a time in increasing
  network distance, refining only as far as each emission requires;
* :func:`range_query` -- all objects within network distance ``r``,
  refining an object only until its in/out status is decided;
* :func:`approximate_knn` -- epsilon-relaxed kNN ("approximate query
  processing on spatial networks", p.42): neighbors within a
  ``(1 + epsilon)`` factor of optimal, for fewer refinements;
* :func:`aggregate_nn` -- aggregate nearest neighbors over several
  query locations (best meeting point by sum or max of distances);
* :func:`distance_join` -- the k closest pairs between two object
  sets (the incremental distance join the paper cites from Hjaltason
  & Samet 1998), run on interval arithmetic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Iterator, Sequence

from repro.objects.index import ObjectIndex
from repro.query.distances import ObjectDistanceState, QueryHandle
from repro.query.location import resolve_location
from repro.query.results import KNNResult, Neighbor
from repro.query.stats import QueryStats, counted_clock
from repro.silc.index import SILCIndex
from repro.silc.intervals import DistanceInterval
from repro.silc.refinement import RefinementCounter

_NODE = 0
_OBJECT = 1


class _Frontier:
    """A best-first frontier over the object index (shared machinery)."""

    def __init__(
        self,
        index: SILCIndex,
        object_index: ObjectIndex,
        handles: list[QueryHandle],
        stats: QueryStats,
        combine,
    ) -> None:
        self.object_index = object_index
        self.handles = handles
        self.stats = stats
        self.combine = combine
        self._seq = itertools.count()
        self.heap: list[tuple[float, int, int, object]] = []
        self.seen: set[int] = set()
        root = object_index.root
        if not (root.is_leaf and not root.entries):
            self.push(self.block_bound(root), _NODE, root)

    def block_bound(self, node) -> float:
        return self.combine([h.block_bound(node) for h in self.handles])

    def push(self, lo: float, kind: int, payload: object) -> None:
        heapq.heappush(self.heap, (lo, next(self._seq), kind, payload))
        self.stats.queue_pushes += 1
        if len(self.heap) > self.stats.max_queue:
            self.stats.max_queue = len(self.heap)

    def top_lo(self) -> float:
        return self.heap[0][0] if self.heap else math.inf

    def expand_node(self, node, bound: float) -> None:
        """Replace a popped node with its children or object states."""
        if node.is_leaf:
            self.stats.leaf_expansions += 1
            for oid, _, _ in node.entries:
                if oid in self.seen:
                    continue  # extent parts index the same object twice
                self.seen.add(oid)
                state = _MultiState(
                    oid,
                    [h.object_state(self.object_index.get(oid)) for h in self.handles],
                    self.combine,
                )
                self.stats.objects_seen += 1
                if state.interval.lo < bound:
                    self.push(state.interval.lo, _OBJECT, state)
        else:
            self.stats.nonleaf_expansions += 1
            for child in node.children:
                if child.is_leaf and not child.entries:
                    continue
                child_bound = self.block_bound(child)
                if child_bound < bound:
                    self.push(child_bound, _NODE, child)


class _MultiState:
    """Aggregate distance state over one object and several handles.

    For a single handle this is a thin wrapper; for aggregate queries
    ``combine`` folds the per-source intervals (sum or max) and
    :meth:`refine` advances the loosest component.
    """

    __slots__ = ("oid", "parts", "combine", "_interval")

    def __init__(self, oid: int, parts: list[ObjectDistanceState], combine) -> None:
        self.oid = oid
        self.parts = parts
        self.combine = combine
        self._interval = self._fold()

    def _fold(self) -> DistanceInterval:
        lo = self.combine([p.interval.lo for p in self.parts])
        hi = self.combine([p.interval.hi for p in self.parts])
        return DistanceInterval(lo, hi)

    @property
    def interval(self) -> DistanceInterval:
        return self._interval

    @property
    def is_exact(self) -> bool:
        return self._interval.is_exact

    def refine(self) -> bool:
        widest = None
        width = 0.0
        for p in self.parts:
            w = p.interval.width
            if w > width:
                width = w
                widest = p
        if widest is None:
            return False
        progressed = widest.refine()
        if not progressed:
            # The widest alternative resolved internally; refold anyway.
            pass
        fresh = self._fold()
        self._interval = (
            fresh if fresh.is_exact else fresh.intersection(self._interval)
        )
        return progressed

    def refine_fully(self) -> float:
        for p in self.parts:
            p.refine_fully()
        self._interval = self._fold()
        return self._interval.lo


def _single(values: list[float]) -> float:
    return values[0]


def browse(
    index: SILCIndex, object_index: ObjectIndex, query
) -> Iterator[Neighbor]:
    """Yield objects in increasing network distance, incrementally.

    The "distance browsing" operation of the paper's title: consumers
    pull as many neighbors as they need; refinement work is spent only
    to certify each emission (no k must be chosen in advance).
    Emitted ``Neighbor.interval`` values are certified not to overlap
    any later emission's lower bound.
    """
    stats = QueryStats()
    counter = RefinementCounter()
    position = resolve_location(index.network, query)
    handle = QueryHandle(index, object_index, position, counter)
    frontier = _Frontier(index, object_index, [handle], stats, _single)

    while frontier.heap:
        lo, _, kind, payload = heapq.heappop(frontier.heap)
        if kind == _NODE:
            frontier.expand_node(payload, math.inf)
            continue
        state: _MultiState = payload
        interval = state.interval
        if interval.hi <= frontier.top_lo():
            stats.confirmations += 1
            yield Neighbor(
                oid=state.oid,
                interval=interval,
                distance=interval.lo if interval.is_exact else None,
            )
            continue
        stats.collisions += 1
        state.refine()
        frontier.push(state.interval.lo, _OBJECT, state)


def range_query(
    index: SILCIndex, object_index: ObjectIndex, query, radius: float
) -> KNNResult:
    """All objects within network distance ``radius`` of the query.

    Refinement stops per object as soon as its interval falls entirely
    inside or outside the radius; results are sorted by lower bound.
    Boundary objects (interval straddling after full refinement) are
    included when their exact distance is <= radius.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    t_start = counted_clock()
    stats = QueryStats()
    counter = RefinementCounter()
    position = resolve_location(index.network, query)
    handle = QueryHandle(index, object_index, position, counter)
    frontier = _Frontier(index, object_index, [handle], stats, _single)

    hits: list[_MultiState] = []
    while frontier.heap:
        lo, _, kind, payload = heapq.heappop(frontier.heap)
        if lo > radius:
            break  # everything remaining is certainly outside
        if kind == _NODE:
            # Children beyond the radius are pruned at push time.
            frontier.expand_node(payload, radius + _radius_pad(radius))
            continue
        state: _MultiState = payload
        interval = state.interval
        if interval.hi <= radius:
            stats.confirmations += 1
            hits.append(state)
        elif interval.lo <= radius:
            stats.collisions += 1
            state.refine()
            frontier.push(state.interval.lo, _OBJECT, state)
        # else: certainly outside; drop.

    stats.refinements = counter.count
    hits.sort(key=lambda s: s.interval.lo)
    neighbors = [
        Neighbor(
            oid=s.oid,
            interval=s.interval,
            distance=s.interval.lo if s.interval.is_exact else None,
        )
        for s in hits
    ]
    stats.elapsed = counted_clock() - t_start
    return KNNResult(neighbors=neighbors, stats=stats, ordered=True)


def _radius_pad(radius: float) -> float:
    """Tolerance so boundary objects are examined rather than dropped."""
    return max(1e-9, radius * 1e-12)


def approximate_knn(
    index: SILCIndex,
    object_index: ObjectIndex,
    query,
    k: int,
    epsilon: float,
) -> KNNResult:
    """kNN with a ``(1 + epsilon)`` approximation guarantee.

    An object is reported once its distance upper bound is within
    ``(1 + epsilon)`` of the best lower bound still queued, so wide
    intervals need fewer refinements.  Guarantee: the i-th reported
    distance is at most ``(1 + epsilon)`` times the true i-th nearest
    distance.  ``epsilon = 0`` degenerates to exact kNN.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if k < 1:
        raise ValueError("k must be at least 1")
    t_start = counted_clock()
    stats = QueryStats()
    counter = RefinementCounter()
    position = resolve_location(index.network, query)
    handle = QueryHandle(index, object_index, position, counter)
    frontier = _Frontier(index, object_index, [handle], stats, _single)

    confirmed: list[_MultiState] = []
    while frontier.heap and len(confirmed) < k:
        lo, _, kind, payload = heapq.heappop(frontier.heap)
        if kind == _NODE:
            frontier.expand_node(payload, math.inf)
            continue
        state: _MultiState = payload
        interval = state.interval
        if interval.hi <= frontier.top_lo() * (1.0 + epsilon):
            stats.confirmations += 1
            confirmed.append(state)
            continue
        stats.collisions += 1
        state.refine()
        frontier.push(state.interval.lo, _OBJECT, state)

    stats.refinements = counter.count
    neighbors = [
        Neighbor(
            oid=s.oid,
            interval=s.interval,
            distance=s.interval.lo if s.interval.is_exact else None,
        )
        for s in confirmed
    ]
    stats.elapsed = counted_clock() - t_start
    return KNNResult(neighbors=neighbors, stats=stats, ordered=True)


def aggregate_nn(
    index: SILCIndex,
    object_index: ObjectIndex,
    queries: Sequence,
    k: int,
    agg: str = "sum",
) -> KNNResult:
    """The k best objects by aggregate distance from several locations.

    ``agg='sum'`` finds minimum-total-travel meeting points (optimal
    for a group that all travel); ``agg='max'`` minimizes the worst
    member's travel.  Exact: results are fully refined.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if agg not in ("sum", "max"):
        raise ValueError(f"unknown aggregate {agg!r}")
    if not queries:
        raise ValueError("at least one query location required")
    combine = sum if agg == "sum" else max
    t_start = counted_clock()
    stats = QueryStats()
    counter = RefinementCounter()
    handles = [
        QueryHandle(index, object_index, resolve_location(index.network, q), counter)
        for q in queries
    ]
    frontier = _Frontier(index, object_index, handles, stats, combine)

    confirmed: list[_MultiState] = []
    while frontier.heap and len(confirmed) < k:
        lo, _, kind, payload = heapq.heappop(frontier.heap)
        if kind == _NODE:
            frontier.expand_node(payload, math.inf)
            continue
        state: _MultiState = payload
        if state.interval.hi <= frontier.top_lo():
            stats.confirmations += 1
            confirmed.append(state)
            continue
        stats.collisions += 1
        state.refine()
        frontier.push(state.interval.lo, _OBJECT, state)

    stats.refinements = counter.count
    for s in confirmed:
        s.refine_fully()
    neighbors = [
        Neighbor(oid=s.oid, interval=s.interval, distance=s.interval.lo)
        for s in confirmed
    ]
    stats.elapsed = counted_clock() - t_start
    return KNNResult(neighbors=neighbors, stats=stats, ordered=True)


def distance_join(
    index: SILCIndex,
    left_index: ObjectIndex,
    right_index: ObjectIndex,
    k: int,
) -> list[tuple[int, int, float]]:
    """The k closest (left, right) object pairs by network distance.

    An incremental distance join on interval arithmetic: every left
    object opens a best-first stream into the right index; streams are
    merged on their next-candidate lower bounds, so only pairs that
    can still enter the top k are ever refined.  Returns
    ``(left_oid, right_oid, distance)`` sorted by exact distance.

    Left objects must be vertex-positioned (their vertices seed the
    per-stream SILC handles).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    from repro.objects.model import VertexPosition

    counter = RefinementCounter()
    seq = itertools.count()
    # Heap entries: (lo, tiebreak, left_oid, right_oid, exact?, stream)
    heap: list[tuple[float, int, int, int, bool, Iterator[Neighbor]]] = []

    def exact_distance(left_oid: int, right_oid: int) -> float:
        handle = QueryHandle(
            index,
            right_index,
            resolve_location(index.network, left_index.get(left_oid).position),
            counter,
        )
        return handle.object_state(right_index.get(right_oid)).refine_fully()

    def push_head(left_oid: int, stream: Iterator[Neighbor]) -> None:
        head = next(stream, None)
        if head is not None:
            heapq.heappush(
                heap,
                (head.interval.lo, next(seq), left_oid, head.oid, False, stream),
            )

    for obj in left_index.objects:
        if not isinstance(obj.position, VertexPosition):
            raise ValueError("distance_join requires vertex-positioned left objects")
        push_head(obj.oid, browse(index, right_index, obj.position.vertex))

    results: list[tuple[int, int, float]] = []
    while heap and len(results) < k:
        lo, _, left_oid, right_oid, is_exact, stream = heapq.heappop(heap)
        if is_exact:
            # Exact heads pop in true distance order: emit and advance
            # the owning stream.
            results.append((left_oid, right_oid, lo))
            push_head(left_oid, stream)
            continue
        # Interval head: resolve it exactly and requeue.  Its browse
        # stream certified it as the closest remaining pair of its own
        # stream; exactness settles the cross-stream order.
        d = exact_distance(left_oid, right_oid)
        heapq.heappush(heap, (d, next(seq), left_oid, right_oid, True, stream))

    return results
