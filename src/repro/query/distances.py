"""Query-to-object distance machinery built on SILC refinement.

:class:`ObjectDistanceState` is what the kNN priority queues actually
hold for an object: the combined, progressively refinable distance
interval from the query location to the object over all anchor pairs.
:class:`QueryHandle` bundles the per-query state (anchors, bounds) the
best-first engine needs.
"""

from __future__ import annotations

import math

from repro.objects.index import ObjectIndex
from repro.objects.model import NetworkPosition, SpatialObject
from repro.query.location import (
    location_point,
    same_edge_direct,
    source_anchors,
    target_anchors,
)
from repro.quadtree.pmr import PMRNode
from repro.silc.index import SILCIndex
from repro.silc.intervals import DistanceInterval
from repro.silc.refinement import RefinableDistance, RefinementCounter


class ObjectDistanceState:
    """Refinable network distance from a query location to one object.

    The true distance is the minimum over the anchor-pair components
    (each a :class:`RefinableDistance`) and the optional direct
    same-edge segment.  ``interval`` is the interval of that minimum;
    :meth:`refine` advances the component currently defining the lower
    bound, so the interval tightens as fast as one refinement per call
    can manage.
    """

    __slots__ = ("oid", "components", "direct", "_interval")

    def __init__(
        self,
        oid: int,
        components: list[RefinableDistance],
        direct: float | None = None,
    ) -> None:
        if not components and direct is None:
            raise ValueError("an object distance needs at least one alternative")
        self.oid = oid
        self.components = components
        self.direct = direct
        self._interval = self._combine()

    def _combine(self) -> DistanceInterval:
        lo = math.inf
        hi = math.inf
        for comp in self.components:
            ci = comp.interval
            lo = min(lo, ci.lo)
            hi = min(hi, ci.hi)
        if self.direct is not None:
            lo = min(lo, self.direct)
            hi = min(hi, self.direct)
        return DistanceInterval(lo, hi)

    @property
    def interval(self) -> DistanceInterval:
        return self._interval

    @property
    def is_exact(self) -> bool:
        return self._interval.is_exact

    def refine(self) -> bool:
        """One refinement step on the component defining the lower bound.

        Returns False when the interval can no longer improve (the
        minimum is resolved).
        """
        hi = self._interval.hi
        best: RefinableDistance | None = None
        best_lo = math.inf
        for comp in self.components:
            if comp.is_exact:
                continue
            ci = comp.interval
            if ci.lo <= hi and ci.lo < best_lo:
                best = comp
                best_lo = ci.lo
        if best is None:
            # Every alternative cheaper than the current upper bound is
            # exact: the minimum is decided.
            self._interval = DistanceInterval.exact(self._interval.lo)
            return False
        best.refine()
        combined = self._combine()
        self._interval = (
            combined if combined.is_exact else combined.intersection(self._interval)
        )
        return True

    def refine_fully(self) -> float:
        while not self.is_exact:
            if not self.refine():
                break
        return self._interval.lo


class QueryHandle:
    """Everything the best-first engine needs about one query location."""

    def __init__(
        self,
        index: SILCIndex,
        object_index: ObjectIndex,
        position: NetworkPosition,
        counter: RefinementCounter | None = None,
    ) -> None:
        self.index = index
        self.object_index = object_index
        self.position = position
        self.counter = counter if counter is not None else RefinementCounter()
        network = index.network
        self.network = network
        self.anchors = source_anchors(network, position)
        self.point = location_point(network, position)
        # Global lower-bound slope for the Euclidean fallback bound:
        # any network path is at least this multiple of straight-line
        # distance (see SpatialNetwork.min_euclidean_ratio).
        self._euclid_slope = min(network.min_euclidean_ratio(), float("inf"))

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def object_state(self, obj: SpatialObject) -> ObjectDistanceState:
        """The refinable distance from the query to ``obj``."""
        components = []
        for sv, s_off in self.anchors:
            for tv, t_off in target_anchors(self.network, obj.position):
                components.append(
                    self.index.refinable(
                        sv, tv, counter=self.counter, offset=s_off + t_off
                    )
                )
        direct = same_edge_direct(self.network, self.position, obj.position)
        return ObjectDistanceState(obj.oid, components, direct)

    # ------------------------------------------------------------------
    # Block bounds
    # ------------------------------------------------------------------
    def block_bound(self, node: PMRNode) -> float:
        """Sound lower bound on the distance to any object under ``node``.

        Vertex objects get the tight lambda bound through the SILC
        quadtrees; subtrees containing edge objects fall back to the
        global-slope Euclidean bound, and pure-vertex subtrees use the
        better of the two.
        """
        rect = self.object_index.node_rect(node)
        euclid = self._euclid_slope * rect.min_distance_to_point(self.point)
        lam = math.inf
        for av, a_off in self.anchors:
            bound = self.index.block_lower_bound(av, node.code, node.level)
            lam = min(lam, a_off + bound)
        if self.object_index.has_edge_objects(node):
            return min(lam, euclid)
        if math.isinf(lam):
            # No network vertex in the block: with only vertex objects
            # allowed here, the subtree must be empty of objects too.
            return math.inf
        return max(lam, euclid)
