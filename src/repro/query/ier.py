"""IER: Incremental Euclidean Restriction (Papadias et al., VLDB 2003).

The second baseline (p.25): scan objects in increasing *Euclidean*
distance, compute each one's exact network distance with a separate
shortest-path search, and stop once the next Euclidean distance
exceeds the current k-th network distance.  Correct because network
distance never undercuts Euclidean distance on metric road networks
(the generators guarantee edge weight >= edge length; validated here).

The paper finds IER consistently slowest: every candidate pays a full
point-to-point search, and Euclidean order is a poor proxy for network
order (the whole motivation of the paper).

The refinement stage now runs through the shared
:class:`~repro.oracle.DistanceOracle` interface: by default a
:class:`~repro.oracle.DijkstraOracle` (the historical multi-seed
Dijkstra, unchanged), but any loaded oracle -- in particular a
:class:`~repro.oracle.PrunedLabellingOracle` -- transparently
accelerates every candidate's exact distance from a Dijkstra ball to
a label merge.
"""

from __future__ import annotations

import math

from repro.network.astar import astar_path
from repro.objects.index import ObjectIndex
from repro.query.location import (
    location_point,
    resolve_location,
    same_edge_direct,
    source_anchors,
    target_anchors,
)
from repro.query.results import KNNResult, Neighbor
from repro.query.stats import QueryStats, counted_clock
from repro.silc.intervals import DistanceInterval


def _network_distance(
    network,
    src_anchors,
    position,
    obj_position,
    stats: QueryStats,
    engine: str,
    storage=None,
    oracle=None,
) -> float:
    """Exact network distance from the query to one object.

    Routed through ``oracle.anchored_distance`` -- the shared
    :class:`~repro.oracle.DistanceOracle` surface -- except for the
    A* engine, whose goal-directed point-to-point search has no
    anchored batch form.
    """
    best = math.inf
    direct = same_edge_direct(network, position, obj_position)
    if direct is not None:
        best = direct
    t_anchors = target_anchors(network, obj_position)
    stats.nd_computations += 1
    if engine == "astar" and len(src_anchors) == 1 and src_anchors[0][1] == 0.0:
        source = src_anchors[0][0]
        for tv, t_off in t_anchors:
            if source == tv:
                best = min(best, t_off)
                continue
            _, dist, search_stats = astar_path(network, source, tv)
            stats.settled += search_stats.settled
            stats.relaxed += search_stats.relaxed
            best = min(best, dist + t_off)
        return best
    return oracle.anchored_distance(
        src_anchors, t_anchors, best=best, stats=stats, storage=storage
    )


def ier_knn(
    object_index: ObjectIndex,
    query,
    k: int,
    engine: str = "dijkstra",
    storage=None,
    oracle=None,
) -> KNNResult:
    """The k nearest objects by incremental Euclidean restriction.

    ``engine`` selects the point-to-point solver for the refinement
    stage: ``"dijkstra"`` (the paper's choice) or ``"astar"``.  The
    ``storage`` page model, when given, charges each settled vertex a
    page access (dijkstra engine only).  ``oracle`` overrides the
    refinement backend with any :class:`~repro.oracle.DistanceOracle`
    -- pass a loaded :class:`~repro.oracle.PrunedLabellingOracle` and
    every candidate's exact distance costs a label merge instead of a
    Dijkstra ball.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if engine not in ("dijkstra", "astar"):
        raise ValueError(f"unknown engine {engine!r}")
    if oracle is None:
        from repro.oracle.base import DijkstraOracle

        oracle = DijkstraOracle(object_index.network)
    else:
        engine = "oracle"
    t_start = counted_clock()
    stats = QueryStats()
    network = object_index.network
    io_before = storage.snapshot() if storage is not None else None
    if network.min_euclidean_ratio() < 1.0 - 1e-12:
        raise ValueError(
            "IER requires edge weights >= Euclidean edge lengths; this "
            "network violates the lower-bounding property"
        )
    position = resolve_location(network, query)
    src_anchors = source_anchors(network, position)
    origin = location_point(network, position)

    results: list[tuple[float, int]] = []

    def kth() -> float:
        return results[k - 1][0] if len(results) >= k else math.inf

    seen: set[int] = set()
    for oid, euclid in object_index.iter_euclidean(origin):
        if euclid > kth():
            break
        if oid in seen:
            continue  # extent objects are indexed once per part
        seen.add(oid)
        obj = object_index.get(oid)
        dist = _network_distance(
            network, src_anchors, position, obj.position, stats, engine,
            storage, oracle,
        )
        results.append((dist, oid))
        results.sort()
        del results[k:]

    neighbors = [
        Neighbor(oid=oid, interval=DistanceInterval.exact(d), distance=d)
        for d, oid in results
    ]
    if io_before is not None:
        delta = storage.stats.delta_since(io_before)
        stats.io_accesses = delta.accesses
        stats.io_misses = delta.misses
        stats.io_time = delta.io_time(storage.miss_latency)
    stats.elapsed = counted_clock() - t_start
    if neighbors:
        stats.dk_final = neighbors[-1].distance
    return KNNResult(neighbors=neighbors, stats=stats, ordered=True)
