"""INE: Incremental Network Expansion (Papadias et al., VLDB 2003).

The paper's principal baseline (p.25): "really Dijkstra's algorithm
with a buffer L containing the k nearest neighbors seen so far in
terms of network distance".  The search ball grows around the query
until the unexplored frontier lies farther than the current k-th
neighbor, at which point the buffer is provably complete.

Its worst case -- and the reason SILC wins -- is that it must visit
*every edge closer to the query than the k-th neighbor* (p.26), and
probes the object index at each settled vertex.
"""

from __future__ import annotations

import math

from repro.network.dijkstra import IncrementalDijkstra
from repro.objects.index import ObjectIndex
from repro.objects.model import EdgePosition, position_parts
from repro.query.location import resolve_location, same_edge_direct, source_anchors
from repro.query.results import KNNResult, Neighbor
from repro.query.stats import QueryStats, counted_clock
from repro.silc.intervals import DistanceInterval


def ine_knn(object_index: ObjectIndex, query, k: int, storage=None) -> KNNResult:
    """The k nearest objects by incremental network expansion.

    Exact distances, sorted output.  Needs only the network and the
    object index -- no precomputed structure (that is its selling
    point, and its per-query cost).  Pass a
    :class:`~repro.storage.NetworkStorageModel` as ``storage`` to
    charge each settled vertex a page access through the LRU buffer,
    as in the paper's disk-resident setup.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    t_start = counted_clock()
    stats = QueryStats()
    network = object_index.network
    position = resolve_location(network, query)
    io_before = storage.snapshot() if storage is not None else None

    # Edge(-part) objects become reachable when either endpoint settles.
    edge_candidates: dict[int, list[tuple[int, float]]] = {}
    for obj in object_index.objects:
        for pos in position_parts(obj.position):
            if not isinstance(pos, EdgePosition):
                continue
            w_fwd = network.edge_weight(pos.a, pos.b)
            edge_candidates.setdefault(pos.a, []).append(
                (obj.oid, pos.fraction * w_fwd)
            )
            if network.has_edge(pos.b, pos.a):
                w_rev = network.edge_weight(pos.b, pos.a)
                edge_candidates.setdefault(pos.b, []).append(
                    (obj.oid, (1.0 - pos.fraction) * w_rev)
                )

    best: dict[int, float] = {}
    for obj in object_index.objects:
        direct = same_edge_direct(network, position, obj.position)
        if direct is not None:
            best[obj.oid] = min(best.get(obj.oid, math.inf), direct)

    def kth_best() -> float:
        if len(best) < k:
            return math.inf
        return sorted(best.values())[k - 1]

    expansion = IncrementalDijkstra(network, seeds=source_anchors(network, position))
    while True:
        frontier = expansion.next_frontier_distance()
        if frontier > kth_best() or math.isinf(frontier):
            break
        settled = expansion.settle_next()
        if settled is None:
            break
        vertex, dist = settled
        if storage is not None:
            storage.touch_vertex(vertex)
        stats.index_probes += 1
        for oid in object_index.objects_at_vertex(vertex):
            if dist < best.get(oid, math.inf):
                best[oid] = dist
        for oid, extra in edge_candidates.get(vertex, ()):
            if dist + extra < best.get(oid, math.inf):
                best[oid] = dist + extra

    stats.settled = expansion.stats.settled
    stats.relaxed = expansion.stats.relaxed
    stats.max_queue = stats.settled  # frontier heap scales with the ball

    ranked = sorted(best.items(), key=lambda item: (item[1], item[0]))[:k]
    neighbors = [
        Neighbor(oid=oid, interval=DistanceInterval.exact(d), distance=d)
        for oid, d in ranked
    ]
    if io_before is not None:
        delta = storage.stats.delta_since(io_before)
        stats.io_accesses = delta.accesses
        stats.io_misses = delta.misses
        stats.io_time = delta.io_time(storage.miss_latency)
    stats.elapsed = counted_clock() - t_start
    if neighbors:
        stats.dk_final = neighbors[-1].distance
    return KNNResult(neighbors=neighbors, stats=stats, ordered=True)
