"""Query locations and their network anchors.

A query can start from a vertex, from a position along an edge, or
from an arbitrary point (snapped to the nearest vertex).  All query
algorithms reduce the location to *anchors*: pairs ``(vertex,
offset)`` such that every path out of the location passes through one
of the anchor vertices after traveling ``offset``.

Objects reduce symmetrically to *target anchors*: every path into the
object passes through an anchor vertex and then travels ``offset``
more.  Distances between a location and an object are minima over
anchor pairs (plus the degenerate same-edge segment, handled by
:func:`same_edge_direct`).
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.network.graph import SpatialNetwork
from repro.objects.model import (
    EdgePosition,
    ExtentPosition,
    NetworkPosition,
    VertexPosition,
    position_point,
)

QueryLocation = "int | NetworkPosition | Point"


def resolve_location(
    network: SpatialNetwork, query: int | NetworkPosition | Point
) -> NetworkPosition:
    """Normalize any accepted query form to a network position."""
    if isinstance(query, int):
        network.check_vertex(query)
        return VertexPosition(query)
    if isinstance(query, (VertexPosition, EdgePosition)):
        return query
    if isinstance(query, Point):
        return VertexPosition(network.nearest_vertex(query))
    raise TypeError(f"unsupported query location: {query!r}")


def source_anchors(
    network: SpatialNetwork, position: NetworkPosition
) -> list[tuple[int, float]]:
    """``(vertex, offset)`` pairs through which every outgoing path passes.

    Extent positions are not supported as query locations: a traveler
    occupies one point, not a region.
    """
    if isinstance(position, ExtentPosition):
        raise TypeError("a query location must be a single vertex/edge position")
    if isinstance(position, VertexPosition):
        return [(position.vertex, 0.0)]
    anchors = [(position.b, (1.0 - position.fraction) * network.edge_weight(position.a, position.b))]
    if network.has_edge(position.b, position.a):
        anchors.append(
            (position.a, position.fraction * network.edge_weight(position.b, position.a))
        )
    return anchors


def target_anchors(
    network: SpatialNetwork, position: NetworkPosition
) -> list[tuple[int, float]]:
    """``(vertex, offset)`` pairs through which every incoming path passes.

    For extents: the union over parts (reaching any part reaches the
    object).
    """
    if isinstance(position, ExtentPosition):
        anchors: list[tuple[int, float]] = []
        for part in position.parts:
            anchors.extend(target_anchors(network, part))
        return anchors
    if isinstance(position, VertexPosition):
        return [(position.vertex, 0.0)]
    anchors = [(position.a, position.fraction * network.edge_weight(position.a, position.b))]
    if network.has_edge(position.b, position.a):
        anchors.append(
            (position.b, (1.0 - position.fraction) * network.edge_weight(position.b, position.a))
        )
    return anchors


def same_edge_direct(
    network: SpatialNetwork, source: NetworkPosition, target: NetworkPosition
) -> float | None:
    """Length of the direct along-edge segment, when one exists.

    Covers the cases anchor decomposition misses: source and target on
    the same directed edge with the target downstream, or a vertex
    source at the tail of the target's edge (that one is also covered
    by anchors, but the direct value is exact and free).
    """
    if isinstance(target, ExtentPosition):
        candidates = [
            d
            for part in target.parts
            if (d := same_edge_direct(network, source, part)) is not None
        ]
        return min(candidates) if candidates else None
    if isinstance(source, VertexPosition) and isinstance(target, VertexPosition):
        if source.vertex == target.vertex:
            return 0.0
        return None
    if isinstance(source, EdgePosition) and isinstance(target, EdgePosition):
        if (source.a, source.b) == (target.a, target.b) and (
            target.fraction >= source.fraction
        ):
            w = network.edge_weight(source.a, source.b)
            return (target.fraction - source.fraction) * w
        if (source.b, source.a) == (target.a, target.b) and network.has_edge(
            target.a, target.b
        ):
            # Opposite orientations of the same undirected segment.
            sf = 1.0 - source.fraction  # source's fraction along (b, a)
            if target.fraction >= sf:
                w = network.edge_weight(target.a, target.b)
                return (target.fraction - sf) * w
        return None
    return None


def location_point(network: SpatialNetwork, position: NetworkPosition) -> Point:
    """Spatial point of a location (delegates to the object model)."""
    return position_point(network, position)
