"""Result types shared by every k-nearest-neighbor algorithm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.stats import QueryStats
from repro.silc.intervals import DistanceInterval


@dataclass(frozen=True, slots=True)
class Neighbor:
    """One reported neighbor.

    ``interval`` always contains the true network distance.
    ``distance`` is the exact value when the algorithm resolved it
    (baselines always do; SILC algorithms only when asked, or when the
    interval happens to collapse during search).
    """

    oid: int
    interval: DistanceInterval
    distance: float | None = None

    @property
    def best_estimate(self) -> float:
        """The exact distance if known, else the interval midpoint."""
        if self.distance is not None:
            return self.distance
        return (self.interval.lo + self.interval.hi) / 2.0


@dataclass(frozen=True)
class KNNResult:
    """The answer to one k-nearest-neighbor query.

    ``ordered`` is False for kNN-M, whose KMINDIST fast path trades
    the sortedness of the output for fewer refinements (p.36).
    """

    neighbors: list[Neighbor]
    stats: QueryStats
    ordered: bool = True

    def __len__(self) -> int:
        return len(self.neighbors)

    def ids(self) -> list[int]:
        return [n.oid for n in self.neighbors]

    def distances(self) -> list[float]:
        """Best-estimate distances, in reported order."""
        return [n.best_estimate for n in self.neighbors]
