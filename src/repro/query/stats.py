"""Per-query work counters.

Every figure in the paper's evaluation is a plot of one of these
counters (or of wall-clock/I/O time), so the query algorithms record
everything the benchmark harness needs in a single dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

#: The single sanctioned wall-clock hook for the counted kernels.
#:
#: The reproduction measures query work in *counted operations*
#: (machine-independent); the kernels still need a clock for deadline
#: checks and the supplementary ``*_time`` stats.  They must take it
#: from here -- ``repro check`` (rule RPR004) flags any direct
#: ``time``/``datetime`` use inside a kernel module, so this alias is
#: the one auditable place where wall-clock enters the hot path.
counted_clock = perf_counter


@dataclass
class QueryStats:
    """Counters accumulated while answering one query.

    SILC-family counters
    --------------------
    refinements:
        Progressive-refinement steps (fig p.35's unit).
    max_queue:
        Peak size of the main priority queue ``Q`` (fig p.34's unit).
    l_ops / l_time:
        Operations on (and seconds spent in) the result queue ``L``
        and its ``Dk`` bookkeeping -- the paper's "kNN-PQ" series
        (fig p.38).
    kmindist_accepts:
        Objects accepted directly against KMINDIST without further
        refinement (fig p.36's unit; kNN-M only).
    d0k / kmindist_final / dk_final:
        The estimator values at termination (fig p.37's units).
    io_accesses / io_misses / io_time:
        Simulated page traffic, when a storage simulator is attached.

    Baseline counters
    -----------------
    settled / relaxed:
        Dijkstra work (INE and IER).
    index_probes:
        Object-index lookups (INE probes one per settled vertex).
    nd_computations:
        Point-to-point network-distance computations (IER).
    label_scans:
        Label entries scanned by 2-hop labelling distance merges
        (:class:`~repro.oracle.PrunedLabellingOracle`'s counted unit).
    """

    # SILC family
    refinements: int = 0
    max_queue: int = 0
    queue_pushes: int = 0
    objects_seen: int = 0
    leaf_expansions: int = 0
    nonleaf_expansions: int = 0
    collisions: int = 0
    confirmations: int = 0
    kmindist_accepts: int = 0
    l_ops: int = 0
    l_time: float = 0.0
    d0k: float | None = None
    kmindist_final: float | None = None
    dk_final: float | None = None
    # storage
    io_accesses: int = 0
    io_misses: int = 0
    io_time: float = 0.0
    # baselines
    settled: int = 0
    relaxed: int = 0
    index_probes: int = 0
    nd_computations: int = 0
    label_scans: int = 0
    # wall clock
    elapsed: float = 0.0

    extras: dict = field(default_factory=dict)

    def merge(self, other: QueryStats) -> QueryStats:
        """Sum counters across queries (for workload averages)."""
        merged = QueryStats()
        for name in (
            "refinements",
            "max_queue",
            "queue_pushes",
            "objects_seen",
            "leaf_expansions",
            "nonleaf_expansions",
            "collisions",
            "confirmations",
            "kmindist_accepts",
            "l_ops",
            "settled",
            "relaxed",
            "index_probes",
            "nd_computations",
            "label_scans",
            "io_accesses",
            "io_misses",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.l_time = self.l_time + other.l_time
        merged.io_time = self.io_time + other.io_time
        merged.elapsed = self.elapsed + other.elapsed
        return merged
