"""The asyncio serving layer: from library to service.

Everything needed to stand a long-lived server on top of one built
SILC index: a typed request/response protocol, per-client fair
scheduling, token-bucket + in-flight admission control, an awaitable
engine facade, and latency/shed metrics.  See
:class:`~repro.serve.server.SILCServer` for the orchestration and the
``repro serve`` CLI subcommand for the JSON-lines front end.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.engine import AsyncEngine
from repro.serve.metrics import MetricsSnapshot, ServerMetrics, percentile
from repro.serve.protocol import (
    KINDS,
    Completed,
    Expired,
    Failed,
    Rejected,
    Request,
    Response,
    request_from_dict,
    response_to_dict,
)
from repro.serve.scheduler import Chunk, FairScheduler
from repro.serve.server import SILCServer, serve_jsonl

__all__ = [
    "KINDS",
    "Request",
    "Response",
    "Completed",
    "Rejected",
    "Expired",
    "Failed",
    "request_from_dict",
    "response_to_dict",
    "FairScheduler",
    "Chunk",
    "AdmissionController",
    "TokenBucket",
    "AsyncEngine",
    "ServerMetrics",
    "MetricsSnapshot",
    "percentile",
    "SILCServer",
    "serve_jsonl",
]
