"""Admission control: shed load explicitly instead of queueing it.

Two independent gates, both checked at submit time:

* a per-client **token bucket** (``rate`` tokens/second, ``burst``
  capacity, one token per engine query) that bounds each client's
  sustained throughput; and
* a **global in-flight cap** on engine queries admitted but not yet
  completed, which bounds the server's total queue no matter how many
  clients show up.

A request that fails either gate is *rejected now* with a computed
``retry_after`` rather than parked in an unbounded queue -- the
backpressure contract the ISSUE asks for.  Time is injected (any
``clock`` callable) so tests and benchmarks can drive the bucket
deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable

from repro.serve.protocol import Request


@dataclass
class TokenBucket:
    """A classic token bucket: ``rate`` per second, ``burst`` capacity."""

    rate: float
    burst: float
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("rate and burst must be positive")
        self._tokens = float(self.burst)
        self._stamp = self.clock()

    def _refill(self) -> None:
        now = self.clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> tuple[bool, float]:
        """Take ``n`` tokens if available; else ``(False, retry_after)``."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True, 0.0
        return False, (n - self._tokens) / self.rate


class AdmissionController:
    """Token-bucket rate limits per client plus a global in-flight cap.

    Parameters
    ----------
    max_in_flight:
        Engine queries admitted but not yet released; a knn_batch of
        500 queries counts as 500.  ``None`` disables the cap.
    rate / burst:
        Default per-client token bucket (one token per engine query).
        ``rate=None`` disables rate limiting for unconfigured clients.
    clock:
        Injected time source shared by every bucket.
    """

    def __init__(
        self,
        max_in_flight: int | None = 1024,
        rate: float | None = None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1 (or None)")
        # Validate eagerly: a bad rate must fail at construction, not
        # blow up inside admit() on the first request of some client.
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if burst is not None and burst <= 0:
            raise ValueError("burst must be positive (or None to default to rate)")
        self.max_in_flight = max_in_flight
        self._default_rate = rate
        self._default_burst = burst if burst is not None else (rate if rate else None)
        self.clock = clock
        self._buckets: dict[str, TokenBucket | None] = {}
        self.in_flight = 0
        self.shed_count = 0

    # ------------------------------------------------------------------
    # Per-client configuration
    # ------------------------------------------------------------------
    def configure_client(self, client: str, rate: float | None, burst: float | None = None) -> None:
        """Give one client its own bucket (``rate=None``: unlimited)."""
        if rate is None:
            self._buckets[client] = None
        else:
            self._buckets[client] = TokenBucket(rate, burst if burst is not None else rate, self.clock)

    def _bucket(self, client: str) -> TokenBucket | None:
        if client not in self._buckets:
            if self._default_rate is None:
                self._buckets[client] = None
            else:
                self._buckets[client] = TokenBucket(
                    self._default_rate, self._default_burst, self.clock
                )
        return self._buckets[client]

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def admit(self, request: Request) -> tuple[bool, float, str]:
        """Check both gates; returns ``(admitted, retry_after, reason)``.

        On success the request's cost is charged against the in-flight
        budget; the caller owes one :meth:`release` per admitted
        request once its response is produced.

        A request whose cost alone can *never* fit -- larger than the
        in-flight cap, or than its bucket's burst -- is rejected with
        the terminal reason ``request_too_large`` and ``retry_after``
        0: retrying cannot help, the client must split the batch.
        """
        cost = request.cost
        bucket = self._bucket(request.client)
        too_large_for_cap = self.max_in_flight is not None and cost > self.max_in_flight
        if too_large_for_cap or (bucket is not None and cost > bucket.burst):
            self.shed_count += 1
            return False, 0.0, "request_too_large"
        if self.max_in_flight is not None and self.in_flight + cost > self.max_in_flight:
            self.shed_count += 1
            # The server can't know when in-flight work completes ahead
            # of time; advertise a nominal backoff proportional to how
            # oversubscribed the request is.
            over = (self.in_flight + cost) / self.max_in_flight
            return False, min(1.0, 0.05 * over), "in_flight_cap"
        if bucket is not None:
            ok, retry_after = bucket.try_acquire(cost)
            if not ok:
                self.shed_count += 1
                return False, retry_after, "rate_limited"
        self.in_flight += cost
        return True, 0.0, ""

    def release(self, request: Request) -> None:
        """Return an admitted request's cost to the in-flight budget."""
        self.in_flight = max(0, self.in_flight - request.cost)
