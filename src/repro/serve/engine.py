"""Awaitable facade over :class:`~repro.engine.QueryEngine`.

``AsyncEngine`` gives the serving layer non-blocking access to the
synchronous query engine: every call runs on a bounded
``ThreadPoolExecutor`` so the asyncio event loop keeps accepting and
scheduling requests while a query grinds through refinement steps.

With ``max_workers == 1`` (the default) the engine behaves as before:
one warm thread, queries strictly serialized.

With ``max_workers > 1`` queries genuinely execute in parallel.  The
historical blocker was the shared
:class:`~repro.storage.StorageSimulator`: its single LRU is not safe
to interleave and the per-query attach/restore handshake mutates
``index.storage``.  The facade therefore

* upgrades the engine's simulator to a
  :class:`~repro.storage.ShardedStorageSimulator` (per-thread LRU
  shards and counters, merged on read) unless it already is one, and
* attaches it to the index for the facade's lifetime, so the
  per-query attach handshake becomes a no-op read instead of a
  mutation.

After that, no lock guards query execution at all: per-query state is
local, the location cache locks internally, and storage accounting is
thread-sharded.  True CPU parallelism is still GIL-bound for the
pure-Python search, but everything that *releases* the GIL -- numpy
column scans and, in the I/O-simulating benchmark regime, real
per-fault latency -- now overlaps across workers.

With ``shards > 1`` the facade goes one step further and runs kNN
queries on the spatially-sharded *process* tier
(:class:`~repro.shard.ShardGroup`): the index is partitioned by
Morton-key ranges, one worker process serves each shard's slice of
the store and objects, and a partition router prunes shards by
distance bound before scatter-gathering candidates.  kNN answers are
then always exact; ``path``/``distance`` requests keep running on the
local engine (they are single index walks with nothing to shard).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Iterable

from repro.engine import BatchResult, QueryEngine
from repro.query.results import KNNResult
from repro.storage.concurrent import ShardedStorageSimulator


class AsyncEngine:
    """``await``-able kNN/path/distance queries over one shared engine.

    Parameters
    ----------
    engine:
        The synchronous engine whose caches and storage are shared.
    max_workers:
        Executor threads.  With more than one, the engine's storage is
        upgraded to per-thread shards (see module docstring) and
        queries run without any global lock.

        The upgrade **rebinds** ``engine.storage`` when it was a plain
        serial simulator: a reference you held to the original object
        stops seeing traffic, and its accumulated counters and cache
        warmth are not carried over (shards start cold).  Read
        ``engine.storage`` after construction for the live simulator,
        or pass a :class:`ShardedStorageSimulator` yourself to keep
        control of the object.
    shards:
        Spatial shard *processes* for kNN execution.  ``1`` (the
        default) keeps everything in-process; with more, construction
        partitions the engine's index and objects, writes the sharded
        store layout, and spawns one worker process per populated
        shard (see :class:`~repro.shard.ShardGroup`).  The executor is
        widened to at least ``shards`` threads so that many sharded
        queries can be in flight at once -- that concurrency is what
        the worker processes turn into parallelism.
    shard_dir:
        Directory for the sharded store layout (default: a private
        temporary directory, removed on :meth:`close`).
    on_shard_failure / max_retries / fault_injector:
        Shard-tier fault handling, forwarded to
        :meth:`~repro.shard.ShardGroup.from_engine`:
        ``on_shard_failure`` picks the supervision policy (``respawn``
        / ``failover`` / ``degrade`` / ``error``), ``max_retries``
        bounds respawn+replay attempts per request, and
        ``fault_injector`` plugs a deterministic
        :class:`~repro.faults.FaultInjector` into the worker request
        path for chaos tests.  All ignored when ``shards == 1``.
    """

    def __init__(
        self,
        engine: QueryEngine,
        max_workers: int = 1,
        shards: int = 1,
        shard_dir=None,
        on_shard_failure: str = "respawn",
        max_retries: int = 2,
        fault_injector=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.engine = engine
        self.max_workers = max_workers
        self.shards = shards
        self._executor = ThreadPoolExecutor(
            max_workers=max(max_workers, shards),
            thread_name_prefix="repro-serve",
        )
        self._attached = False
        self._previous_storage = None
        if max_workers > 1:
            self._prepare_parallel()
        self.shard_group = None
        if shards > 1:
            from repro.shard import ShardGroup

            self.shard_group = ShardGroup.from_engine(
                engine, shards, directory=shard_dir,
                on_failure=on_shard_failure, max_retries=max_retries,
                fault_injector=fault_injector,
            )
        self._closed = False

    def _prepare_parallel(self) -> None:
        """Make shared state safe for lock-free parallel queries."""
        engine = self.engine
        if engine.storage is not None and not getattr(
            engine.storage, "concurrent_safe", False
        ):
            engine.storage = ShardedStorageSimulator.from_simulator(engine.storage)
        index = engine.index
        if engine.storage is not None:
            # Pre-attach for the facade's lifetime: QueryEngine._attach
            # then sees ``index.storage is self.storage`` on every query
            # and never mutates shared state mid-flight.
            self._previous_storage = index.storage
            index.attach_storage(engine.storage)
            self._attached = True
        elif index.storage is not None and not getattr(
            index.storage, "concurrent_safe", False
        ):
            raise ValueError(
                "AsyncEngine(max_workers > 1) needs a concurrency-safe "
                "storage simulator; the index has a serial StorageSimulator "
                "attached directly. Attach a ShardedStorageSimulator (or "
                "give the engine its own storage) instead."
            )

    async def _run(self, fn, *args, **kwargs):
        # No lock in either mode: a single-worker executor serializes
        # inherently, and the parallel mode's shared state was made
        # safe up front by _prepare_parallel.
        if self._closed:
            raise RuntimeError("AsyncEngine is closed")
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, lambda: fn(*args, **kwargs)
        )

    def _effective_oracle(self, oracle: str | None) -> str:
        """The backend a request would run on before planning.

        ``None`` falls back to the engine's default, so a shard-tier
        deployment started with ``--oracle labels`` does not silently
        route unlabelled requests back to SILC shards.
        """
        return oracle if oracle is not None else getattr(self.engine, "oracle", "silc")

    # ------------------------------------------------------------------
    # Queries (mirror QueryEngine's surface)
    # ------------------------------------------------------------------
    async def knn(
        self,
        query,
        k: int,
        variant: str = "knn",
        exact: bool = False,
        oracle: str | None = None,
        trace=None,
        time_cap: float | None = None,
    ) -> KNNResult:
        if self.shard_group is not None and self._effective_oracle(oracle) == "silc":
            # The sharded tier always refines to exact distances (the
            # router merges candidates by comparing them), so `exact`
            # is subsumed rather than forwarded.  Its router prunes by
            # SILC block bounds, so a non-SILC oracle request bypasses
            # the shard tier and runs on the local engine instead.
            return await self._run(
                self.shard_group.knn, query, k, variant=variant, trace=trace,
                time_cap=time_cap,
            )
        return await self._run(
            self.engine.knn, query, k, variant=variant, exact=exact, oracle=oracle,
            trace=trace, time_cap=time_cap,
        )

    async def knn_batch(
        self,
        queries: Iterable,
        k: int,
        variant: str = "knn",
        exact: bool = False,
        oracle: str | None = None,
        trace=None,
        time_cap: float | None = None,
    ) -> BatchResult:
        if self.shard_group is not None and self._effective_oracle(oracle) == "silc":
            return await self._run(
                self.shard_group.knn_batch, queries, k, variant=variant,
                trace=trace, time_cap=time_cap,
            )
        return await self._run(
            self.engine.knn_batch, queries, k, variant=variant, exact=exact,
            oracle=oracle, trace=trace, time_cap=time_cap,
        )

    async def path(self, source: int, target: int) -> list[int]:
        return await self._run(self.engine.index.path, source, target)

    async def distance(self, source: int, target: int) -> float:
        return await self._run(self.engine.index.distance, source, target)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the executor down; pending calls finish first."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)
            if self.shard_group is not None:
                self.shard_group.close()
            if self._attached:
                self._attached = False
                index = self.engine.index
                if self._previous_storage is None:
                    index.detach_storage()
                else:
                    index.attach_storage(self._previous_storage)

    async def __aenter__(self) -> AsyncEngine:
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()
