"""Awaitable facade over :class:`~repro.engine.QueryEngine`.

``AsyncEngine`` gives the serving layer non-blocking access to the
synchronous query engine: every call runs on a bounded
``ThreadPoolExecutor`` so the asyncio event loop keeps accepting and
scheduling requests while a query grinds through refinement steps.

The wrapped engine's serving state stays *shared*: one warm
:class:`~repro.storage.StorageSimulator` and one resolved-location
cache across every task that awaits on the facade.  Because the
engine's storage attach/restore protocol mutates ``index.storage``
and is not safe to interleave from two threads, all engine calls are
serialized through one lock -- the executor buys event-loop
liveness, not CPU parallelism (which the GIL precludes for this
pure-Python workload anyway).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from repro.engine import BatchResult, QueryEngine
from repro.query.results import KNNResult


class AsyncEngine:
    """``await``-able kNN/path/distance queries over one shared engine.

    Parameters
    ----------
    engine:
        The synchronous engine whose caches and storage are shared.
    max_workers:
        Executor threads.  More than one only helps once query
        execution releases the GIL; the default keeps one warm thread.
    """

    def __init__(self, engine: QueryEngine, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.engine = engine
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        # Serializes QueryEngine calls: the storage attach/restore
        # handshake around each query must not interleave across
        # threads, or one query's restore detaches another's simulator
        # mid-flight.
        self._lock = threading.Lock()
        self._closed = False

    async def _run(self, fn, *args, **kwargs):
        if self._closed:
            raise RuntimeError("AsyncEngine is closed")

        def call():
            with self._lock:
                return fn(*args, **kwargs)

        return await asyncio.get_running_loop().run_in_executor(self._executor, call)

    # ------------------------------------------------------------------
    # Queries (mirror QueryEngine's surface)
    # ------------------------------------------------------------------
    async def knn(self, query, k: int, variant: str = "knn", exact: bool = False) -> KNNResult:
        return await self._run(self.engine.knn, query, k, variant=variant, exact=exact)

    async def knn_batch(
        self, queries: Iterable, k: int, variant: str = "knn", exact: bool = False
    ) -> BatchResult:
        return await self._run(
            self.engine.knn_batch, queries, k, variant=variant, exact=exact
        )

    async def path(self, source: int, target: int) -> list[int]:
        return await self._run(self.engine.index.path, source, target)

    async def distance(self, source: int, target: int) -> float:
        return await self._run(self.engine.index.distance, source, target)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the executor down; pending calls finish first."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()
