"""Server-side observability: latency percentiles and work counters.

:class:`ServerMetrics` accumulates per-response observations --
wall-clock latency, counted scheduling delay (engine queries that ran
ahead while the request waited; see
:mod:`repro.serve.scheduler`), shed/expired/failed outcomes, and the
merged :class:`~repro.query.stats.QueryStats` of everything executed
-- and renders an immutable :class:`MetricsSnapshot` on demand.

Per-request samples (latencies, delays) live in sliding windows of
the most recent :data:`DEFAULT_WINDOW` observations, so a long-lived
server's metrics memory stays flat; the scalar counters remain exact
over the full lifetime.  The set of *clients* tracked for delay
percentiles is LRU-bounded too (:data:`DEFAULT_MAX_CLIENTS`): an open
server fed ever-fresh client ids keeps flat memory, at the price of
forgetting the delay history of clients idle past the cap.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.obs.registry import percentiles
from repro.query.stats import QueryStats

#: Samples kept per sliding window (percentiles reflect recent load).
DEFAULT_WINDOW = 4096

#: Clients whose delay windows are retained (LRU eviction past this).
DEFAULT_MAX_CLIENTS = 256


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of a sample.

    One-point convenience over :func:`repro.obs.registry.percentiles`;
    callers needing several points of the same sample should call that
    directly -- it sorts once for all of them.
    """
    return percentiles(list(values), (q,))[0]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One immutable reading of the server's counters.

    ``deadline_aborts`` counts the subset of ``expired`` whose budget
    ran out *mid-execution* (the engine's time cap stopped the
    search); ``degraded`` counts completed responses answered around a
    down shard under the ``degrade`` fault policy.
    """

    served: int
    shed: int
    expired: int
    failed: int
    p50: float
    p95: float
    p99: float
    queue_depths: dict[str, int]
    in_flight: int
    stats: QueryStats
    deadline_aborts: int = 0
    degraded: int = 0

    def format(self) -> str:
        lines = [
            f"served {self.served}  shed {self.shed}  expired {self.expired}  "
            f"(aborted {self.deadline_aborts})  failed {self.failed}  "
            f"degraded {self.degraded}  in-flight {self.in_flight}",
            f"latency p50 {self.p50 * 1e3:.2f} ms  p95 {self.p95 * 1e3:.2f} ms  "
            f"p99 {self.p99 * 1e3:.2f} ms",
            f"engine work: {self.stats.refinements} refinements, "
            f"{self.stats.io_misses} page faults",
        ]
        if self.queue_depths:
            depths = "  ".join(f"{c}={d}" for c, d in sorted(self.queue_depths.items()))
            lines.append(f"queue depth: {depths}")
        return "\n".join(lines)


@dataclass
class ServerMetrics:
    """Mutable accumulator the server feeds; snapshot() to read.

    ``window`` bounds every per-request sample series (a deque of the
    most recent observations) and ``max_clients`` bounds how many
    clients' delay windows are kept (least-recently-active evicted
    first), keeping a long-lived server's metrics memory flat on both
    axes.
    """

    served: int = 0
    shed: int = 0
    expired: int = 0
    failed: int = 0
    deadline_aborts: int = 0
    degraded: int = 0
    window: int = DEFAULT_WINDOW
    max_clients: int = DEFAULT_MAX_CLIENTS
    latencies: deque = field(default_factory=deque)
    #: Counted scheduling delays per client (engine queries that ran
    #: between a request's submit and its first dispatch), most
    #: recently active client last.
    sched_delays: OrderedDict = field(default_factory=OrderedDict)
    stats: QueryStats = field(default_factory=QueryStats)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be at least 1 sample")
        if self.max_clients < 1:
            raise ValueError("max_clients must be at least 1 client")
        self.latencies = deque(self.latencies, maxlen=self.window)
        self.sched_delays = OrderedDict(self.sched_delays)

    def record_completed(self, client: str, latency: float, sched_delay: int, stats: QueryStats | None = None) -> None:
        self.served += 1
        self.latencies.append(latency)
        delays = self.sched_delays.get(client)
        if delays is None:
            delays = self.sched_delays[client] = deque(maxlen=self.window)
        else:
            self.sched_delays.move_to_end(client)
        delays.append(sched_delay)
        while len(self.sched_delays) > self.max_clients:
            self.sched_delays.popitem(last=False)
        if stats is not None:
            self.stats = self.stats.merge(stats)

    def record_shed(self) -> None:
        self.shed += 1

    def record_expired(self, aborted: bool = False) -> None:
        """``aborted=True``: the deadline stopped an *executing* query
        (engine time cap), not one still queued."""
        self.expired += 1
        if aborted:
            self.deadline_aborts += 1

    def record_degraded(self) -> None:
        """A completed response was answered around a down shard."""
        self.degraded += 1

    def record_failed(self) -> None:
        self.failed += 1

    def delay_percentile(self, client: str, q: float) -> float:
        """Percentile of one client's counted scheduling delays."""
        return percentile([float(d) for d in self.sched_delays.get(client, [])], q)

    def snapshot(self, queue_depths: dict[str, int] | None = None, in_flight: int = 0) -> MetricsSnapshot:
        # One sort yields all three latency percentiles.
        p50, p95, p99 = percentiles(self.latencies, (50.0, 95.0, 99.0))
        return MetricsSnapshot(
            served=self.served,
            shed=self.shed,
            expired=self.expired,
            failed=self.failed,
            p50=p50,
            p95=p95,
            p99=p99,
            queue_depths=dict(queue_depths or {}),
            in_flight=in_flight,
            stats=self.stats,
            deadline_aborts=self.deadline_aborts,
            degraded=self.degraded,
        )
