"""Typed request/response protocol for the serving layer.

The serving layer speaks a small, explicit vocabulary: four query
kinds (``knn``, ``knn_batch``, ``path``, ``distance``) plus the
``stats`` monitoring kind (answers immediately with the unified
metrics-registry snapshot; bypasses admission and scheduling so it
works *especially* when the server is overloaded), each carried
by a :class:`Request` tagged with the submitting client and an
optional deadline, and answered by exactly one of four responses --
:class:`Completed`, :class:`Rejected` (admission control shed the
request; retry after the indicated delay), :class:`Expired` (the
deadline passed before the request reached the engine) or
:class:`Failed` (the query raised).

Every type round-trips through plain dicts (:func:`request_from_dict`
/ :func:`response_to_dict`), which is what the ``repro serve``
JSON-lines loop ships over stdin/stdout.

Client-side retry contract
--------------------------
A :class:`Rejected` response is an explicit backpressure signal, not
an error: the server *names the earliest useful resubmission time* in
``retry_after`` (seconds).  Well-behaved clients

1. wait at least ``retry_after`` before resubmitting (resubmitting
   sooner is guaranteed to be shed again and only adds load);
2. on repeated rejections, back off exponentially from that base --
   ``retry_after * 2**(attempt-1)`` capped at a few seconds -- so a
   fleet of rejected clients de-synchronizes instead of stampeding;
3. give up after a bounded number of attempts and surface the
   rejection.

:class:`Expired` responses are terminal for that request: the
deadline was the client's own budget, so resubmission only makes
sense with a fresh (larger) deadline.  ``aborted=True`` means the
budget ran out *mid-execution* (the engine stopped the search; no
partial result is returned); ``aborted=False`` means it ran out while
the request was still queued.  :class:`Failed` responses are not
retried -- the query itself raised and will raise again.
``examples/serve_demo.py`` implements this contract.

A :class:`Completed` response with ``degraded=True`` is a *partial*
answer: one or more shards were down and skipped under the
``degrade`` fault policy, so neighbors owned solely by those shards
may be missing.  Clients that need completeness should retry after
the shard tier heals (the stats probe exposes respawn progress);
clients that prefer availability use the answer as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: The request kinds the server understands (four query kinds plus
#: the ``stats`` monitoring probe).
KINDS = ("knn", "knn_batch", "path", "distance", "stats")


@dataclass(frozen=True)
class Request:
    """One unit of work submitted to the server.

    Parameters
    ----------
    id:
        Caller-chosen correlation id, echoed on the response.
    client:
        Lane key for fair scheduling and per-client rate limiting.
    kind:
        One of :data:`KINDS`.
    queries:
        Query locations: one vertex id for ``knn``, a tuple of them
        for ``knn_batch``, and ``(source, target)`` for ``path`` and
        ``distance``.
    k / variant / exact:
        Passed through to the kNN engine (ignored by path/distance).
        ``exact`` defaults to True on both the dataclass and the wire
        -- a serving client reading ``distances`` off the response
        expects real network distances, not interval midpoints.
    oracle:
        Optional per-request backend override
        (``auto``/``silc``/``labels``/``ine``); ``None`` defers to
        the serving engine's default.
    deadline:
        Optional budget in seconds from submission; a request still
        queued when it runs out is answered with :class:`Expired`
        instead of being executed.
    """

    id: int | str
    client: str
    kind: str
    queries: tuple = ()
    k: int = 1
    variant: str = "knn"
    exact: bool = True
    oracle: str | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}; expected one of {KINDS}")
        if self.oracle is not None:
            from repro.oracle.base import ORACLE_CHOICES

            if self.oracle not in ORACLE_CHOICES:
                raise ValueError(
                    f"unknown oracle {self.oracle!r}; "
                    f"expected one of {ORACLE_CHOICES}"
                )
        if self.kind in ("path", "distance") and len(self.queries) != 2:
            raise ValueError(f"{self.kind} requests need (source, target), got {self.queries!r}")
        if self.kind in ("knn", "knn_batch") and not self.queries:
            raise ValueError(f"{self.kind} requests need at least one query location")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be a positive budget in seconds")

    @property
    def cost(self) -> int:
        """Admission/scheduling cost: the number of engine queries."""
        if self.kind == "stats":
            return 0  # monitoring probes never consume query budget
        if self.kind == "knn_batch":
            return len(self.queries)
        return 1


@dataclass(frozen=True)
class Response:
    """Base class: every response echoes the request id and client."""

    id: int | str
    client: str

    status = "response"


@dataclass(frozen=True)
class Completed(Response):
    """The request ran; ``result`` holds the kind-specific payload.

    ``knn``: ``{"ids": [...], "distances": [...]}``;
    ``knn_batch``: ``{"ids": [[...], ...], "distances": [[...], ...]}``;
    ``path``: ``{"path": [...], "distance": float}``;
    ``distance``: ``{"distance": float}``;
    ``stats``: ``{"metrics": <registry snapshot>}``.

    ``degraded=True`` flags a partial kNN answer: a shard was down
    (``degrade`` fault policy) and its objects are missing from the
    result.  See the module docstring's retry contract.
    """

    result: dict = field(default_factory=dict)
    latency: float = 0.0
    sched_delay: int = 0
    degraded: bool = False

    status = "ok"


@dataclass(frozen=True)
class Rejected(Response):
    """Admission control shed the request instead of queueing it."""

    retry_after: float = 0.0
    reason: str = "overloaded"

    status = "rejected"


@dataclass(frozen=True)
class Expired(Response):
    """The deadline ran out -- while queued, or mid-execution.

    ``aborted=False`` (the historical case): the budget expired while
    the request was still queued and it was never dispatched.
    ``aborted=True``: the budget expired *during execution* -- the
    engine's time cap stopped the search and no (late) result was
    produced.  Either way the client gets this answer promptly
    instead of a result it can no longer use.
    """

    waited: float = 0.0
    aborted: bool = False

    status = "expired"


@dataclass(frozen=True)
class Failed(Response):
    """The query raised; ``error`` carries the exception text."""

    error: str = ""

    status = "error"


# ----------------------------------------------------------------------
# Wire format (dicts; the CLI adds the JSON framing)
# ----------------------------------------------------------------------

def request_from_dict(obj: dict) -> Request:
    """Build a :class:`Request` from one decoded JSON-lines record."""
    if not isinstance(obj, dict):
        raise ValueError(f"request must be an object, got {type(obj).__name__}")
    kind = obj.get("kind")
    if kind not in KINDS:
        raise ValueError(f"unknown request kind {kind!r}; expected one of {KINDS}")
    if kind in ("path", "distance"):
        queries = (obj["source"], obj["target"])
    elif kind == "knn_batch":
        queries = tuple(obj["queries"])
    elif kind == "stats":
        queries = ()
    else:
        queries = (obj["query"],)
    return Request(
        id=obj.get("id", 0),
        client=str(obj.get("client", "default")),
        kind=kind,
        queries=queries,
        k=int(obj.get("k", 1)),
        variant=obj.get("variant", "knn"),
        exact=bool(obj.get("exact", True)),
        oracle=obj.get("oracle"),
        deadline=obj.get("deadline"),
    )


def response_to_dict(response: Response) -> dict:
    """Flatten any response to one JSON-serializable record."""
    out: dict[str, Any] = {
        "id": response.id,
        "client": response.client,
        "status": response.status,
    }
    if isinstance(response, Completed):
        out.update(response.result)
        out["latency"] = round(response.latency, 6)
        # The counted scheduling delay (engine queries that ran while
        # this request waited) -- the unit the fairness contract is
        # measured in; scripted clients need it as much as in-process
        # ones.
        out["sched_delay"] = response.sched_delay
        # Fault-path flags ride the wire only when set, so the happy
        # path's records are byte-identical to the pre-fault protocol.
        if response.degraded:
            out["degraded"] = True
    elif isinstance(response, Rejected):
        out["retry_after"] = round(response.retry_after, 6)
        out["reason"] = response.reason
    elif isinstance(response, Expired):
        out["waited"] = round(response.waited, 6)
        if response.aborted:
            out["aborted"] = True
    elif isinstance(response, Failed):
        out["error"] = response.error
    return out
