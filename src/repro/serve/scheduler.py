"""Per-client fair scheduling: FIFO lanes served deficit-round-robin.

A synchronous queue discipline (the asyncio server wraps it): each
client gets one FIFO *lane*, and :meth:`FairScheduler.next_chunk`
sweeps the lanes round-robin, letting each lane dispatch up to
``weight`` chunks per sweep (deficit round-robin with a per-sweep
quantum).  Large batch requests are transparently split into
scheduler-sized :class:`Chunk`\\ s on submit, so a 10k-query batch
occupies its lane one chunk at a time instead of monopolizing the
server -- the head-of-line-blocking fix the ROADMAP asks for.

Progress is measured in *counted operations*, not wall-clock: the
scheduler keeps a monotone serial of engine queries dispatched, and
every request records the serial at submit and at first dispatch.
The difference -- how many queries from other requests ran while this
one waited -- is the scheduling delay the fairness benchmark asserts
on (wall-clock-free, per the repo's flakiness lessons).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.serve.protocol import Request

#: Queries per scheduler chunk: small enough that an interactive
#: request waits at most a few chunks behind any bulk batch.
DEFAULT_CHUNK_SIZE = 32


@dataclass
class Chunk:
    """A scheduler-sized slice of one request's queries."""

    request: Request
    queries: tuple
    offset: int
    last: bool

    @property
    def cost(self) -> int:
        """Engine queries in this chunk (must agree with Request.cost).

        A path/distance chunk carries ``(source, target)`` but is one
        engine query, not two -- counting it as two would inflate the
        dispatch serial, queue depths, and every sched_delay derived
        from them, and disagree with admission's in-flight accounting.
        """
        if self.request.kind in ("path", "distance"):
            return 1
        return len(self.queries)


@dataclass
class _Lane:
    """One client's FIFO of pending chunks plus its DRR state."""

    client: str
    weight: int = 1
    chunks: deque = field(default_factory=deque)
    credit: int = 0

    @property
    def depth(self) -> int:
        """Pending engine queries in this lane (counted, not chunks)."""
        return sum(c.cost for c in self.chunks)


class FairScheduler:
    """Weighted deficit-round-robin over per-client FIFO lanes.

    Parameters
    ----------
    chunk_size:
        Maximum queries per dispatched chunk; batch requests are split
        into ceil(n / chunk_size) chunks at submit time.
    default_weight:
        Chunks a lane may dispatch per sweep when the client was never
        :meth:`register`\\ ed explicitly.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE, default_weight: int = 1) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if default_weight < 1:
            raise ValueError("default_weight must be at least 1")
        self.chunk_size = chunk_size
        self.default_weight = default_weight
        self._lanes: OrderedDict[str, _Lane] = OrderedDict()
        self._cursor: int = 0
        #: Monotone count of engine queries handed out by next_chunk().
        self.dispatched: int = 0
        #: Serial at which each pending request was submitted.
        self._submit_serial: dict = {}
        #: Per-request scheduling delay, filled at first dispatch.
        self.sched_delays: dict = {}

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def register(self, client: str, weight: int = 1) -> None:
        """Declare a client's priority weight (chunks per DRR sweep)."""
        if weight < 1:
            raise ValueError("weight must be at least 1")
        lane = self._lane(client)
        lane.weight = weight

    def _lane(self, client: str) -> _Lane:
        lane = self._lanes.get(client)
        if lane is None:
            lane = _Lane(client, weight=self.default_weight)
            self._lanes[client] = lane
        return lane

    def depths(self) -> dict[str, int]:
        """Pending engine queries per lane (the metrics queue depth)."""
        return {c: lane.depth for c, lane in self._lanes.items() if lane.chunks}

    def pending(self) -> int:
        """Total engine queries waiting across every lane."""
        return sum(lane.depth for lane in self._lanes.values())

    def __len__(self) -> int:
        return sum(len(lane.chunks) for lane in self._lanes.values())

    # ------------------------------------------------------------------
    # Submit / dispatch
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> int:
        """Enqueue a request, splitting batches; returns the chunk count."""
        lane = self._lane(request.client)
        queries = request.queries
        if request.kind in ("path", "distance"):
            pieces = [queries]  # (source, target) is one unit of work
        else:
            pieces = [
                queries[i : i + self.chunk_size]
                for i in range(0, len(queries), self.chunk_size)
            ]
        for i, piece in enumerate(pieces):
            lane.chunks.append(
                Chunk(
                    request=request,
                    queries=piece,
                    offset=i * self.chunk_size,
                    last=(i == len(pieces) - 1),
                )
            )
        self._submit_serial[id(request)] = self.dispatched
        return len(pieces)

    def next_chunk(self) -> Chunk | None:
        """Dispatch the next chunk under deficit round-robin, or None.

        Each occupied lane is granted ``weight`` chunk credits when the
        sweep reaches it; the cursor only advances once the lane's
        credits are spent or the lane drains, so one sweep serves every
        waiting client proportionally to its weight.
        """
        lanes = [lane for lane in self._lanes.values() if lane.chunks]
        if not lanes:
            self._cursor = 0
            return None
        self._cursor %= len(lanes)
        lane = lanes[self._cursor]
        if lane.credit <= 0:
            lane.credit = lane.weight
        chunk = lane.chunks.popleft()
        lane.credit -= 1
        if lane.credit <= 0 or not lane.chunks:
            lane.credit = 0
            self._cursor = (self._cursor + 1) % len(lanes)
        self.dispatched += chunk.cost
        key = id(chunk.request)
        if key in self._submit_serial:
            # First chunk of this request to dispatch: the scheduling
            # delay is the number of *other* requests' queries that ran
            # in between (this chunk's own cost is excluded).
            self.sched_delays[key] = self.dispatched - chunk.cost - self._submit_serial.pop(key)
        return chunk

    def drain(self) -> Iterator[Chunk]:
        """Dispatch until empty (the synchronous/benchmark driver)."""
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            yield chunk

    def sched_delay(self, request: Request) -> int:
        """Counted scheduling delay of a dispatched request's first chunk."""
        return self.sched_delays.get(id(request), 0)
