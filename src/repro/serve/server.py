"""The serving front end: admission -> fair scheduling -> execution.

:class:`SILCServer` is the asyncio orchestrator that turns the
synchronous :class:`~repro.engine.QueryEngine` into a service.  A
request submitted with :meth:`SILCServer.submit` flows through

1. the :class:`~repro.serve.admission.AdmissionController` -- over the
   in-flight cap or the client's token bucket it is *shed now* with
   :class:`~repro.serve.protocol.Rejected` (bounded queues, explicit
   backpressure);
2. the :class:`~repro.serve.scheduler.FairScheduler` -- batches are
   split into chunks and lanes are served weighted round-robin, so a
   bulk client cannot starve interactive ones;
3. the dispatcher task, which pulls chunks in fair order, honours
   per-request deadlines (:class:`~repro.serve.protocol.Expired`), and
   executes on the :class:`~repro.serve.engine.AsyncEngine`.

The caller simply awaits ``submit``; the response arrives when every
chunk of the request has run (or the request was shed/expired/failed).
:func:`serve_jsonl` wraps a server in the stdin/stdout JSON-lines
loop behind the ``repro serve`` CLI subcommand.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from functools import reduce
from collections.abc import Callable
from typing import TextIO

from repro.errors import DeadlineExceeded
from repro.obs.trace import NullTracer
from repro.query.stats import QueryStats
from repro.serve.admission import AdmissionController
from repro.serve.engine import AsyncEngine
from repro.serve.metrics import MetricsSnapshot, ServerMetrics
from repro.serve.protocol import (
    Completed,
    Expired,
    Failed,
    Rejected,
    Request,
    Response,
    request_from_dict,
    response_to_dict,
)
from repro.serve.scheduler import Chunk, FairScheduler


@dataclass
class _Pending:
    """Per-request assembly state while its chunks move through."""

    request: Request
    submitted: float
    future: asyncio.Future
    ids: list = field(default_factory=list)
    distances: list = field(default_factory=list)
    stats: list = field(default_factory=list)
    # Tracing state (no-op objects when tracing is off).
    trace: object = None
    wait_span: object = None

    @property
    def done(self) -> bool:
        return self.future.done()


class SILCServer:
    """Fairly scheduled, admission-controlled serving of one engine.

    Parameters
    ----------
    engine:
        The :class:`AsyncEngine` queries execute on.
    scheduler / admission / metrics:
        Injectable policy objects; defaults are a chunk-32 fair
        scheduler, a 1024-query in-flight cap with no per-client rate
        limit, and a fresh metrics accumulator.
    tracer:
        A :class:`~repro.obs.trace.Tracer` to produce per-request span
        traces; the default :class:`~repro.obs.trace.NullTracer` makes
        every tracing call a no-op (but still owns the metrics
        registry the ``stats`` request kind snapshots).
    clock:
        Time source for deadlines and latency (injectable for tests).
    """

    def __init__(
        self,
        engine: AsyncEngine,
        scheduler: FairScheduler | None = None,
        admission: AdmissionController | None = None,
        metrics: ServerMetrics | None = None,
        tracer=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler if scheduler is not None else FairScheduler()
        self.admission = admission if admission is not None else AdmissionController()
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.clock = clock
        self._cond: asyncio.Condition | None = None
        self._dispatcher: asyncio.Task | None = None
        self._stopping = False
        # id(request) -> _Pending, for chunks to find their assembly state.
        self._pending_by_request: dict = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._cond = asyncio.Condition()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Drain every queued chunk, then retire the dispatcher."""
        if self._dispatcher is None:
            return
        self._stopping = True
        async with self._cond:
            self._cond.notify_all()
        await self._dispatcher
        self._dispatcher = None

    async def __aenter__(self) -> SILCServer:
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, request: Request) -> Response:
        """Run one request through the full pipeline; await its response."""
        if self._dispatcher is None:
            raise RuntimeError("server not started (use `async with server:`)")
        if request.kind == "stats":
            # Monitoring must answer even (especially) when the server
            # is saturated: bypass admission and scheduling entirely.
            return Completed(
                id=request.id, client=request.client,
                result={"metrics": self.registry_snapshot()},
            )
        trace = self.tracer.trace_request(request)
        with trace.span("admission"):
            admitted, retry_after, reason = self.admission.admit(request)
        if not admitted:
            self.metrics.record_shed()
            trace.finish("rejected")
            return Rejected(
                id=request.id, client=request.client,
                retry_after=retry_after, reason=reason,
            )
        pending = _Pending(
            request=request,
            submitted=self.clock(),
            future=asyncio.get_running_loop().create_future(),
            trace=trace,
            wait_span=trace.begin("sched_wait"),
        )
        async with self._cond:
            self.scheduler.submit(request)
            self._pending_by_request[id(request)] = pending
            self._cond.notify_all()
        try:
            return await pending.future
        finally:
            self._pending_by_request.pop(id(request), None)
            # The response consumed the recorded delay (if any); drop it
            # so a long-lived server's bookkeeping stays flat.
            self.scheduler.sched_delays.pop(id(request), None)
            if not pending.future.done() or pending.future.cancelled():
                # The caller was cancelled while chunks were still
                # queued: _finish will never run for this request, so
                # return its admission budget here.  (Undispatched
                # chunks are dropped by _execute once it sees the
                # pending entry is gone.)
                pending.future.cancel()
                self.admission.release(request)
            # No-op when _finish already sealed the trace.
            trace.finish("cancelled")

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot(
            queue_depths=self.scheduler.depths(),
            in_flight=self.admission.in_flight,
        )

    def registry_snapshot(self) -> dict:
        """The unified metrics registry reading the ``stats`` kind ships.

        Absorbs every live accumulator -- server metrics, the
        planner's decision counts (when a planner exists) and the
        shard router's prune accounting (when sharded) -- into the
        tracer's registry, then snapshots it.  Absorption assigns
        absolutely, so polling any number of times never double
        counts.
        """
        registry = self.tracer.registry
        registry.absorb_server(self.snapshot())
        planner = getattr(self.engine.engine, "planner", None)
        if planner is not None:
            registry.absorb_planner(planner.stats)
        shard_group = getattr(self.engine, "shard_group", None)
        if shard_group is not None:
            registry.absorb_router(shard_group.router.stats)
            supervisor = getattr(shard_group, "supervisor", None)
            if supervisor is not None:
                registry.absorb_supervisor(supervisor.stats)
        slow_log = getattr(self.tracer, "slow_log", None)
        if slow_log is not None:
            registry.set_gauge("slow_queries_captured", slow_log.captured, stage="serve")
        return registry.snapshot()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            async with self._cond:
                while not self._stopping and len(self.scheduler) == 0:
                    await self._cond.wait()
                chunk = self.scheduler.next_chunk()
            if chunk is None:
                if self._stopping:
                    return
                continue
            await self._execute(chunk)

    async def _execute(self, chunk: Chunk) -> None:
        pending = self._pending_by_request.get(id(chunk.request))
        if pending is None or pending.done:
            # Request already expired/failed/cancelled: drop its tail,
            # and with the final chunk drop its delay record too (it
            # was written at first dispatch and has no reader left).
            if chunk.last:
                self.scheduler.sched_delays.pop(id(chunk.request), None)
            return
        request = chunk.request
        now = self.clock()
        waited = now - pending.submitted
        if pending.wait_span is not None:
            # First dispatch of this request: the queueing stage ends
            # here (later chunks of a batch re-enter the scheduler but
            # the fairness contract is counted, not timed).
            pending.wait_span.count(sched_delay=self.scheduler.sched_delay(request))
            pending.wait_span.close()
            pending.wait_span = None
        if request.deadline is not None and waited > request.deadline:
            self._finish(
                pending,
                Expired(id=request.id, client=request.client, waited=waited),
            )
            self.metrics.record_expired()
            return
        # What is left of the deadline after queueing becomes the
        # execution-time cap: it rides through AsyncEngine into the
        # engine/router/worker search loops, so a request that expires
        # mid-execution is aborted instead of finishing late.
        budget = None
        if request.deadline is not None:
            budget = request.deadline - waited
        try:
            with pending.trace.span("execute", kind=request.kind):
                if request.kind == "path":
                    source, target = chunk.queries
                    path = await self.engine.path(source, target)
                    distance = await self.engine.distance(source, target)
                    result = {"path": list(path), "distance": distance}
                elif request.kind == "distance":
                    source, target = chunk.queries
                    result = {"distance": await self.engine.distance(source, target)}
                elif request.kind == "knn":
                    r = await self.engine.knn(
                        chunk.queries[0], request.k,
                        variant=request.variant, exact=request.exact,
                        oracle=request.oracle, trace=pending.trace,
                        time_cap=budget,
                    )
                    pending.stats.append(r.stats)
                    result = {"ids": r.ids(), "distances": r.distances()}
                elif request.kind == "knn_batch":
                    batch = await self.engine.knn_batch(
                        chunk.queries, request.k,
                        variant=request.variant, exact=request.exact,
                        oracle=request.oracle, trace=pending.trace,
                        time_cap=budget,
                    )
                    pending.ids.extend(batch.ids())
                    pending.distances.extend(r.distances() for r in batch.results)
                    pending.stats.append(batch.stats)
                    if not chunk.last:
                        return  # more chunks of this batch still queued
                    result = {"ids": pending.ids, "distances": pending.distances}
                else:
                    # Request validation keeps kind within KINDS; a
                    # kind added there without an arm here fails loudly
                    # (and repro check RPR002 catches it statically).
                    raise ValueError(
                        f"unhandled request kind {request.kind!r}"
                    )
        except DeadlineExceeded:
            waited = self.clock() - pending.submitted
            self.metrics.record_expired(aborted=True)
            self._finish(
                pending,
                Expired(
                    id=request.id, client=request.client,
                    waited=waited, aborted=True,
                ),
            )
            return
        except Exception as exc:  # noqa: BLE001 - queries surface as Failed
            self.metrics.record_failed()
            self._finish(
                pending,
                Failed(id=request.id, client=request.client, error=f"{type(exc).__name__}: {exc}"),
            )
            return
        latency = self.clock() - pending.submitted
        sched_delay = self.scheduler.sched_delay(request)
        # QueryStats.merge drops extras, so the degraded marker must be
        # read off the per-chunk stats before the reduce.
        degraded = any(
            s.extras.get("degraded_shards") for s in pending.stats
        )
        stats = reduce(QueryStats.merge, pending.stats, QueryStats())
        self.metrics.record_completed(request.client, latency, sched_delay, stats)
        if degraded:
            self.metrics.record_degraded()
        self._finish(
            pending,
            Completed(
                id=request.id, client=request.client,
                result=result, latency=latency, sched_delay=sched_delay,
                degraded=degraded,
            ),
        )

    def _finish(self, pending: _Pending, response: Response) -> None:
        if not pending.done:
            self.admission.release(pending.request)
            pending.trace.finish(response.status)
            pending.future.set_result(response)


# ----------------------------------------------------------------------
# The JSON-lines loop behind `repro serve`
# ----------------------------------------------------------------------

async def serve_jsonl(
    server: SILCServer,
    in_stream: TextIO,
    out_stream: TextIO,
) -> MetricsSnapshot:
    """Read request records line by line, write responses as they finish.

    One JSON object per input line (see
    :func:`~repro.serve.protocol.request_from_dict` for the shape);
    responses are written in *completion* order, each echoing the
    request ``id``.  Reading happens on a worker thread so slow
    producers never stall queries already in the pipeline.  Returns
    the final metrics snapshot at EOF.
    """
    loop = asyncio.get_running_loop()

    def emit(record: dict) -> None:
        out_stream.write(json.dumps(record) + "\n")
        out_stream.flush()

    async def handle(request: Request) -> None:
        response = await server.submit(request)
        emit(response_to_dict(response))

    async with server:
        tasks: list[asyncio.Task] = []
        while True:
            line = await loop.run_in_executor(None, in_stream.readline)
            if not line:
                break
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request = request_from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError) as exc:
                emit({"status": "error", "error": f"bad request: {exc}"})
                continue
            tasks.append(asyncio.create_task(handle(request)))
        if tasks:
            await asyncio.gather(*tasks)
    return server.snapshot()
