"""Spatially-sharded process-parallel serving.

The pure-Python best-first search is GIL-bound: thread workers
(:class:`~repro.serve.engine.AsyncEngine` with ``max_workers > 1``)
overlap simulated I/O but never the search itself.  This package
breaks past that with worker *processes* over spatial shards:

* :mod:`repro.shard.partitioner` splits the network into contiguous
  Morton-key ranges and assigns every object to the shard(s) its
  part points fall in;
* :meth:`~repro.silc.SILCIndex.save_sharded` writes per-shard slices
  of the flat columnar store, which each worker process mmap-loads
  (its own slice resident, every other shard's pages shared through
  the OS page cache);
* :mod:`repro.shard.worker` runs one long-lived process per shard,
  speaking a request/response pipe protocol;
* :mod:`repro.shard.router` fronts them with a
  :class:`~repro.shard.router.PartitionRouter` that prunes shards
  whose Morton range provably lies beyond the query's current kNN
  distance bound and scatter-gathers the survivors' candidates into
  one global result heap.

:class:`~repro.shard.worker.ShardGroup` bundles all of the above
behind the two calls the serving layer needs (``knn``/``knn_batch``);
``AsyncEngine(shards=N)`` and ``repro serve --shards N`` wire it in.

Worker processes crash; :mod:`repro.shard.supervisor` owns surviving
them.  A :class:`~repro.shard.supervisor.ShardSupervisor` sits between
the router and the workers, detects deaths (a broken pipe, a failed
liveness check), respawns with exponential backoff, and applies a
configurable :class:`~repro.shard.supervisor.SupervisionPolicy` --
replay on the fresh worker, fail over to the unsharded engine, or
degrade to the surviving shards.
"""

from repro.shard.partitioner import ShardMap, split_objects
from repro.shard.router import PartitionRouter, RouterStats
from repro.shard.supervisor import (
    FAILURE_POLICIES,
    ShardSupervisor,
    SupervisionPolicy,
    SupervisorStats,
)
from repro.shard.worker import ShardGroup, ShardWorker

__all__ = [
    "FAILURE_POLICIES",
    "PartitionRouter",
    "RouterStats",
    "ShardGroup",
    "ShardMap",
    "ShardSupervisor",
    "ShardWorker",
    "SupervisionPolicy",
    "SupervisorStats",
    "split_objects",
]
