"""Partitioning a network into contiguous Morton-key ranges.

A shard is a half-open range of Z-order codes.  Cutting the sorted
vertex codes at ``i * n / N`` yields N ranges with near-equal vertex
counts whose cells are spatially contiguous along the Z curve -- the
classic space-filling-curve declustering.  :class:`ShardMap` owns the
boundaries plus the vertex -> shard assignment, and can summarize any
shard's range as a handful of aligned quadtree blocks
(:meth:`ShardMap.cover_blocks`) so the partition router can intersect
it with shortest-path quadtrees when pruning.

Objects are assigned by :func:`split_objects`: one shard per *part
point* (an extent straddling a boundary lands in every shard it
touches), so whichever shards survive pruning can each answer for the
whole object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import GridEmbedding
from repro.geometry.morton import morton_encode, range_blocks
from repro.network.graph import SpatialNetwork
from repro.objects.model import (
    EdgePosition,
    ObjectSet,
    SpatialObject,
    position_parts,
    position_point,
)


@dataclass(frozen=True)
class ShardMap:
    """N contiguous Morton-code ranges covering the whole grid.

    Parameters
    ----------
    boundaries:
        ``(num_shards + 1,)`` strictly increasing int64 codes with
        ``boundaries[0] == 0`` and ``boundaries[-1] == 4**order``;
        shard ``s`` owns the half-open code range
        ``[boundaries[s], boundaries[s + 1])``.
    assign:
        ``(num_vertices,)`` int64 array mapping each network vertex to
        the shard owning its cell code.
    order:
        Grid order of the embedding the codes live in.
    """

    boundaries: np.ndarray
    assign: np.ndarray
    order: int

    def __post_init__(self) -> None:
        b = np.asarray(self.boundaries, dtype=np.int64)
        object.__setattr__(self, "boundaries", b)
        object.__setattr__(
            self, "assign", np.asarray(self.assign, dtype=np.int64)
        )
        if b.size < 2 or int(b[0]) != 0 or int(b[-1]) != 4**self.order:
            raise ValueError(
                f"boundaries must span [0, 4**{self.order}]: {b.tolist()}"
            )
        if not (np.diff(b) > 0).all():
            raise ValueError("shard boundaries must be strictly increasing")
        object.__setattr__(self, "_cover_cache", {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_codes(
        cls, codes: np.ndarray, num_shards: int, order: int
    ) -> ShardMap:
        """Equal-population cuts of the sorted vertex Morton codes.

        Boundaries are forced strictly increasing, so degenerate inputs
        (many duplicate codes, more shards than distinct codes) produce
        thin -- possibly vertex-empty -- shards rather than failing.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        total = 4**order
        if num_shards > total:
            raise ValueError(f"more shards ({num_shards}) than grid cells")
        ordered = np.sort(codes)
        bounds = [0]
        for i in range(1, num_shards):
            cut = int(ordered[(i * codes.size) // num_shards]) if codes.size else 0
            cut = max(cut, bounds[-1] + 1)
            cut = min(cut, total - (num_shards - i))
            bounds.append(cut)
        bounds.append(total)
        boundaries = np.array(bounds, dtype=np.int64)
        assign = np.searchsorted(boundaries, codes, side="right") - 1
        return cls(boundaries, assign.astype(np.int64), order)

    @classmethod
    def from_index(cls, index, num_shards: int) -> ShardMap:
        """Partition a built :class:`~repro.silc.SILCIndex`'s network."""
        return cls.from_codes(
            index.vertex_codes, num_shards, index.embedding.order
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return int(self.boundaries.size - 1)

    @property
    def num_vertices(self) -> int:
        return int(self.assign.size)

    def shard_of_code(self, code: int) -> int:
        """The shard owning one Morton cell code."""
        if not (0 <= code < 4**self.order):
            raise ValueError(f"code out of grid: {code}")
        return int(np.searchsorted(self.boundaries, code, side="right")) - 1

    def shard_of_point(self, embedding: GridEmbedding, x: float, y: float) -> int:
        """The shard owning the cell a world point falls in."""
        from repro.geometry.point import Point

        cx, cy = embedding.cell_of(Point(x, y))
        return self.shard_of_code(morton_encode(cx, cy))

    def vertices(self, shard: int) -> np.ndarray:
        """Sorted global vertex ids assigned to one shard."""
        return np.flatnonzero(self.assign == shard)

    def cover_blocks(self, shard: int) -> list[tuple[int, int]]:
        """Aligned Morton blocks exactly tiling one shard's code range.

        At most ``~4 * order`` blocks, cached per shard: this is the
        quadtree summary of the shard the router probes shortest-path
        quadtrees with.
        """
        if not (0 <= shard < self.num_shards):
            raise ValueError(f"shard out of range: {shard}")
        cached = self._cover_cache.get(shard)
        if cached is None:
            lo = int(self.boundaries[shard])
            hi = int(self.boundaries[shard + 1])
            cached = range_blocks(lo, hi)
            self._cover_cache[shard] = cached
        return cached


def split_objects(
    network: SpatialNetwork,
    objects: ObjectSet,
    embedding: GridEmbedding,
    shard_map: ShardMap,
) -> tuple[list[list[SpatialObject]], list[bool]]:
    """Assign every object to the shard of each of its part points.

    Returns ``(per_shard_objects, per_shard_has_edge)``.  An object
    whose parts straddle a shard boundary is replicated into every
    shard one of its parts falls in; the router deduplicates by object
    id at merge time, and each replica answers with the object's full
    (all-parts) distance, so results never depend on which replica
    survives pruning.

    ``per_shard_has_edge[s]`` is True when any part assigned to shard
    ``s`` is an edge position -- those shards must be pruned with the
    Euclidean bound only (the quadtree lambda bound is a bound to
    *vertices*, and an edge object can sit closer than any vertex of
    the shard's range).
    """
    per_shard: list[list[SpatialObject]] = [
        [] for _ in range(shard_map.num_shards)
    ]
    has_edge = [False] * shard_map.num_shards
    for obj in objects:
        seen: set[int] = set()
        for part in position_parts(obj.position):
            p = position_point(network, part)
            cx, cy = embedding.cell_of(p)
            shard = shard_map.shard_of_code(morton_encode(cx, cy))
            if isinstance(part, EdgePosition):
                has_edge[shard] = True
            if shard not in seen:
                seen.add(shard)
                per_shard[shard].append(obj)
    return per_shard, has_edge
