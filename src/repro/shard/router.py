"""The partition router: distance-bound shard pruning + scatter-gather.

For one kNN query the router keeps a global candidate heap and visits
shards in ascending *lower bound on the distance to anything the
shard holds*.  Once k candidates are in hand, a shard whose bound
already exceeds the current k-th distance ``Dk`` cannot contribute
and is pruned without touching its worker -- the sharded analog of
the paper's best-first block pruning.

Two bounds, mirroring :meth:`repro.query.distances.QueryHandle.block_bound`:

* **Euclidean**: ``slope * MINDIST(query point, shard cover rects)``
  where ``slope = network.min_euclidean_ratio()``.  Sound for *every*
  object kind (any path is at least ``slope`` times its straight-line
  chord), and free -- no index probes.
* **Lambda**: per cover block,
  ``max(min over anchors of offset + block_lower_bound(anchor, block),
  slope * MINDIST(point, block))`` through the router's own
  (parent-process) shortest-path quadtrees -- the shard is skipped
  when every block's combined bound exceeds ``Dk``.  Tighter than the
  shard-level Euclidean bound, but its lambda term bounds distances to
  *vertices* only, so it applies to shards whose assigned objects are
  all vertex-positioned; shards holding edge parts use the Euclidean
  bound alone.

Soundness of pruning an object's shard: every part of the object lies
in some assigned shard (see
:func:`~repro.shard.partitioner.split_objects`); the bound of that
shard lower-bounds the distance through that part; so if *all* of an
object's shards are pruned, its true distance is ``>= Dk`` and the
global top k is unaffected.  Visited workers return their shard-local
top k with exact distances, so the merged top k is exact.

**Fault handling.**  Worker visits go through the
:class:`~repro.shard.supervisor.ShardSupervisor`; when a shard stays
down past its policy's retries the router degrades per that policy
rather than failing the query:

* ``respawn`` / ``failover`` -- the *whole query* is re-answered on
  the unsharded fallback engine (the same exact search over the full
  object set), so the caller still gets the complete, correct top k.
  The result's ``stats.extras["failover"]`` marks it.
* ``degrade`` -- the dead shard is skipped and the surviving shards'
  merged answer is returned with
  ``stats.extras["degraded_shards"]`` listing the missing shards (the
  serving layer turns that into the response's ``degraded`` flag).
  The answer is exact *over the objects the live shards hold* -- it
  may be missing neighbors owned solely by the dead shard, which is
  precisely what the flag tells the client.
* ``error`` -- :class:`~repro.errors.ShardUnavailable` propagates.

**Deadlines.**  ``time_cap`` is the query's remaining execution
budget in seconds.  The router re-computes the remaining budget
before each shard visit and forwards it down the pipe, so the worker's
own search loop stops at the deadline; an exhausted budget raises
:class:`~repro.errors.DeadlineExceeded` (never a late result).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from functools import reduce
from time import perf_counter
from collections.abc import Iterable

from repro.engine import BatchResult
from repro.errors import DeadlineExceeded, ShardUnavailable
from repro.obs.trace import NULL_TRACE
from repro.query.location import (
    location_point,
    resolve_location,
    source_anchors,
)
from repro.query.results import KNNResult, Neighbor
from repro.query.stats import QueryStats
from repro.silc.intervals import DistanceInterval


@dataclass
class RouterStats:
    """Counted routing operations, accumulated across queries.

    ``shards_considered`` counts every populated shard per query;
    each is then either visited or pruned, so ``shards_visited +
    shards_pruned == shards_considered`` always holds.
    ``bound_probes`` counts lambda-bound quadtree probes (the router's
    extra index work); ``duplicates_merged`` counts candidates
    reported by more than one shard (boundary-straddling objects).
    """

    queries: int = 0
    shards_considered: int = 0
    shards_visited: int = 0
    shards_pruned_euclid: int = 0
    shards_pruned_lambda: int = 0
    bound_probes: int = 0
    candidates: int = 0
    duplicates_merged: int = 0

    @property
    def shards_pruned(self) -> int:
        return self.shards_pruned_euclid + self.shards_pruned_lambda

    @property
    def prune_rate(self) -> float:
        """Fraction of considered shards pruned without a worker visit."""
        if self.shards_considered == 0:
            return 0.0
        return self.shards_pruned / self.shards_considered


class PartitionRouter:
    """Routes kNN queries to shard workers, pruning by distance bound.

    Parameters
    ----------
    index:
        The parent process's full :class:`~repro.silc.SILCIndex`; the
        router probes it (with ``account=False``) for lambda bounds.
    shard_map:
        The :class:`~repro.shard.partitioner.ShardMap` the workers
        were built from.
    supervisor:
        The :class:`~repro.shard.supervisor.ShardSupervisor` owning
        the worker handles; every visit goes through its supervised
        ``knn`` so crashes are detected, respawned and replayed per
        policy.
    has_edge:
        Per-shard flag: True when the shard holds any edge-positioned
        part, which restricts it to the Euclidean bound.
    object_counts:
        Per-shard object counts (reporting only).
    fallback:
        The unsharded :class:`~repro.engine.QueryEngine` used to
        answer whole queries when a shard is unavailable under the
        ``respawn``/``failover`` policies (None disables failover).

    Thread safety: the router holds no per-query mutable state; the
    stats counters are updated under a lock, and each worker handle
    serializes its own pipe.  Any number of serving threads may call
    :meth:`knn` concurrently -- that is precisely how the process
    parallelism is harvested.
    """

    def __init__(
        self,
        index,
        shard_map,
        supervisor,
        has_edge: list[bool],
        object_counts: list[int],
        fallback=None,
    ) -> None:
        self.index = index
        self.network = index.network
        self.embedding = index.embedding
        self.shard_map = shard_map
        self.supervisor = supervisor
        self.fallback = fallback
        self.has_edge = list(has_edge)
        self.object_counts = list(object_counts)
        #: Global lower-bound slope: network distance >= slope * Euclidean.
        self._slope = min(self.network.min_euclidean_ratio(), float("inf"))
        #: The populated shard ids -- fixed at construction; respawns
        #: swap worker *handles*, never the shard set.
        self.shards = sorted(supervisor.workers)
        self._cover_blocks = {
            shard: shard_map.cover_blocks(shard) for shard in self.shards
        }
        self._cover_rects = {
            shard: [
                self.embedding.block_world_rect(code, level)
                for code, level in blocks
            ]
            for shard, blocks in self._cover_blocks.items()
        }
        self.stats = RouterStats()
        self._stats_lock = threading.Lock()

    @property
    def workers(self) -> dict:
        """The live worker handles (delegates to the supervisor)."""
        return self.supervisor.workers

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def euclid_bound(self, shard: int, point) -> float:
        """Euclidean lower bound on the distance to anything in ``shard``."""
        rects = self._cover_rects[shard]
        mindist = min(r.min_distance_to_point(point) for r in rects)
        return self._slope * mindist

    def lambda_prunable(
        self, shard: int, anchors, point, bound: float
    ) -> tuple[bool, int]:
        """Can ``shard`` be skipped given the current k-th distance?

        Per cover block, an object in the block is at least
        ``max(lambda(block), slope * MINDIST(point, block))`` away; the
        shard is prunable when that exceeds ``bound`` for *every*
        block.  Two shortcuts keep this cheap: blocks already past the
        Euclidean bound skip their quadtree probes entirely, and the
        scan stops at the first block that cannot be pruned (the
        common case for nearby shards).  Returns ``(prunable,
        quadtree_probes)``.  Sound only for shards whose objects are
        all vertex-positioned -- the lambda term bounds distances to
        *vertices*.
        """
        probes = 0
        for (code, level), rect in zip(
            self._cover_blocks[shard], self._cover_rects[shard], strict=True
        ):
            if self._slope * rect.min_distance_to_point(point) > bound:
                continue
            lam = math.inf
            for anchor, offset in anchors:
                lam = min(
                    lam,
                    offset
                    + self.index.block_lower_bound(
                        anchor, code, level, account=False
                    ),
                )
                probes += 1
                if lam <= bound:
                    return False, probes
            if lam <= bound:
                return False, probes
        return True, probes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(
        self,
        query,
        k: int,
        variant: str = "knn",
        trace=None,
        time_cap: float | None = None,
    ) -> KNNResult:
        """One exact kNN query over the sharded object set.

        ``query`` accepts the same forms as
        :meth:`repro.engine.QueryEngine.knn` (vertex id, network
        position, or free :class:`~repro.geometry.point.Point`);
        ``variant`` picks each worker's search strategy and never
        changes the answer (workers always refine to exact distances,
        in network-weight units).  The result is sorted by
        ``(distance, oid)``.

        ``trace`` records a ``plan`` span for the shard ordering/prune
        accounting and one ``shard:<id>`` span per *visited* worker
        (pruned shards leave no span), with each worker's own spans
        grafted underneath -- the cross-process half of a request
        trace.  Tracing only observes: the visit order, bounds and
        answers are identical with it on or off.

        ``time_cap`` bounds total execution: the remaining budget is
        forwarded to each visited worker and
        :class:`DeadlineExceeded` is raised the moment it runs out.
        A dead shard is handled per the supervisor's policy (see the
        module docstring); only the ``error`` policy lets
        :class:`ShardUnavailable` escape.
        """
        if trace is None:
            trace = NULL_TRACE
        t_start = perf_counter()
        position = resolve_location(self.network, query)
        point = location_point(self.network, position)
        anchors = source_anchors(self.network, position)

        with trace.span("plan", oracle="silc") as plan_span:
            order = sorted(
                (self.euclid_bound(shard, point), shard) for shard in self.shards
            )
        candidates: dict[int, float] = {}
        worker_stats: list[QueryStats] = []
        degraded_shards: list[int] = []
        visited = pruned_e = pruned_l = probes = duplicates = 0

        def dk() -> float:
            if len(candidates) < k:
                return math.inf
            return sorted(candidates.values())[k - 1]

        def remaining() -> float | None:
            if time_cap is None:
                return None
            left = time_cap - (perf_counter() - t_start)
            if left <= 0:
                raise DeadlineExceeded(
                    f"query exceeded its {time_cap:.3f}s execution budget "
                    f"after visiting {visited} shard(s)"
                )
            return left

        for i, (euclid, shard) in enumerate(order):
            bound = dk()
            if euclid > bound:
                # Bounds are visited in ascending Euclidean order and
                # Dk only shrinks: every remaining shard is pruned too.
                pruned_e += len(order) - i
                break
            if not math.isinf(bound) and not self.has_edge[shard]:
                prunable, n = self.lambda_prunable(shard, anchors, point, bound)
                probes += n
                if prunable:
                    pruned_l += 1
                    continue
            budget = remaining()
            # The current global Dk caps the worker's search: a shard
            # that cannot improve the answer returns almost instantly
            # instead of grinding through a full local search.
            try:
                with trace.span(f"shard:{shard}", shard=shard) as shard_span:
                    pairs, stats, wspans = self.supervisor.knn(
                        shard, position, k, variant, bound,
                        trace=trace, time_cap=budget,
                    )
                    if wspans is not None:
                        trace.adopt(wspans, parent=shard_span)
                    shard_span.add_stats(stats)
            except ShardUnavailable:
                policy = self.supervisor.policy.on_failure
                if policy == "error":
                    raise
                if policy == "degrade":
                    degraded_shards.append(shard)
                    continue
                # respawn (retries exhausted) / failover: answer the
                # whole query on the unsharded engine -- same exact
                # search, full object set, so the answer is complete.
                if self.fallback is None:
                    raise
                return self._failover(
                    query, k, variant, trace, remaining(), len(order)
                )
            visited += 1
            worker_stats.append(stats)
            for oid, distance in pairs:
                if oid in candidates:
                    duplicates += 1
                    candidates[oid] = min(candidates[oid], distance)
                else:
                    candidates[oid] = distance

        # The prune accounting lands on the (already closed) plan span
        # -- the totals are only known after the visit loop, and spans
        # accept counters until the trace is sealed.
        plan_span.count(
            shards_considered=len(order),
            shards_visited=visited,
            shards_pruned=pruned_e + pruned_l,
            bound_probes=probes,
        )
        top = sorted(candidates.items(), key=lambda item: (item[1], item[0]))[:k]
        neighbors = [
            Neighbor(oid, DistanceInterval.exact(d), distance=d)
            for oid, d in top
        ]
        merged = reduce(QueryStats.merge, worker_stats, QueryStats())
        merged.extras["shards_considered"] = len(order)
        merged.extras["shards_visited"] = visited
        merged.extras["shards_pruned"] = pruned_e + pruned_l
        if degraded_shards:
            merged.extras["degraded_shards"] = degraded_shards
            self.supervisor.record(degraded_responses=1)
        with self._stats_lock:
            s = self.stats
            s.queries += 1
            s.shards_considered += len(order)
            s.shards_visited += visited
            s.shards_pruned_euclid += pruned_e
            s.shards_pruned_lambda += pruned_l
            s.bound_probes += probes
            s.candidates += len(candidates)
            s.duplicates_merged += duplicates
        return KNNResult(neighbors=neighbors, stats=merged, ordered=True)

    def _failover(
        self, query, k: int, variant: str, trace, budget, considered: int
    ) -> KNNResult:
        """Answer the whole query on the unsharded fallback engine.

        Used when a shard stays down under the ``respawn``/``failover``
        policies: the fallback runs the identical exact search over
        the *full* object set, so the answer matches what the healthy
        shard tier would have returned -- only latency moves.
        """
        self.supervisor.record(failovers=1)
        with trace.span("failover", oracle="silc"):
            result = self.fallback.knn(
                query, k, variant=variant, exact=True,
                trace=trace, time_cap=budget,
            )
        result.stats.extras["failover"] = True
        with self._stats_lock:
            s = self.stats
            s.queries += 1
            s.shards_considered += considered
            s.candidates += len(result.neighbors)
        return result

    def knn_batch(
        self,
        queries: Iterable,
        k: int,
        variant: str = "knn",
        trace=None,
        time_cap: float | None = None,
    ) -> BatchResult:
        """Answer a batch through :meth:`knn`, merging per-query stats.

        ``time_cap`` bounds the *whole batch*: each query receives the
        budget that remains when it starts.
        """
        t_start = perf_counter()
        results = []
        for query in queries:
            budget = None
            if time_cap is not None:
                budget = time_cap - (perf_counter() - t_start)
                if budget <= 0:
                    raise DeadlineExceeded(
                        f"batch exceeded its {time_cap:.3f}s budget after "
                        f"{len(results)} of its queries"
                    )
            results.append(
                self.knn(query, k, variant=variant, trace=trace, time_cap=budget)
            )
        stats = reduce(QueryStats.merge, (r.stats for r in results), QueryStats())
        return BatchResult(
            results=results, stats=stats, elapsed=perf_counter() - t_start
        )
