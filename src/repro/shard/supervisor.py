"""Shard worker supervision: crash detection, respawn, replay.

The shard tier's workers are real OS processes; real processes die.
Before this module, a worker crash hung the router forever (a
blocking ``conn.recv()`` with nobody on the other end) and the only
recovery was restarting the whole server.  :class:`ShardSupervisor`
makes worker failure a handled event:

* every pipe round trip goes through the poll-with-liveness receive
  of :meth:`~repro.shard.worker.ShardWorker.request`, so a dead
  worker raises :class:`~repro.errors.WorkerDied` instead of hanging;
* under the default ``respawn`` policy the supervisor re-spawns the
  dead worker (exponential backoff + deterministic jitter), pings it,
  and **replays the in-flight request** -- the caller sees a slower
  answer, never a wrong or missing one;
* under ``failover``/``degrade`` the supervisor kicks off the respawn
  in the background and immediately raises
  :class:`~repro.errors.ShardUnavailable`, letting the router answer
  *now* from the unsharded engine or the surviving shards;
* under ``error`` the failure surfaces to the caller unchanged.

Every fault event is counted in :class:`SupervisorStats` (absorbed
into the unified :class:`~repro.obs.registry.MetricsRegistry` by the
serving layer) and -- when the request is traced -- recorded as a
``respawn`` span under the failing shard's span, so ``trace-report``
shows exactly what recovery cost.

Invariant (docs/ARCHITECTURE.md): supervision never changes answers.
A replayed request re-runs the identical search against the identical
on-disk slice; failover runs the same exact query unsharded.  Only
availability and latency move.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import DeadlineExceeded, ShardUnavailable, WorkerDied
from repro.obs.trace import NULL_TRACE

#: Recovery policies, in decreasing order of how hard they try to
#: keep serving exact answers from the shard tier itself.
FAILURE_POLICIES = ("respawn", "failover", "degrade", "error")


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the supervisor reacts when a shard worker dies.

    Parameters
    ----------
    on_failure:
        ``respawn`` -- back off, respawn the worker in-line, replay
        the request (bounded by ``max_retries``); ``failover`` --
        respawn in the background, let the router answer via the
        unsharded engine meanwhile; ``degrade`` -- respawn in the
        background, let the router answer from the surviving shards
        with the response flagged degraded; ``error`` -- surface
        :class:`ShardUnavailable` immediately.
    max_retries:
        In-line respawn+replay attempts per request (``respawn``
        policy), and the background respawner's attempt budget.
    backoff_base / backoff_cap:
        Exponential backoff: attempt ``n`` sleeps
        ``min(cap, base * 2**(n-1))`` seconds before respawning.
    jitter:
        Fractional jitter added to each backoff, derived
        *deterministically* from ``(shard, attempt)`` so chaos tests
        replay identically while concurrent respawns still de-sync.
    """

    on_failure: str = "respawn"
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.on_failure not in FAILURE_POLICIES:
            raise ValueError(
                f"unknown on_failure policy {self.on_failure!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def backoff(self, attempt: int, shard: int) -> float:
        """Backoff before respawn ``attempt`` (1-based) of ``shard``."""
        base = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        # Deterministic jitter: a hash of (shard, attempt) in [0, 1).
        frac = ((shard * 2654435761 + attempt * 40503) % 9973) / 9973.0
        return base * (1.0 + self.jitter * frac)


@dataclass
class SupervisorStats:
    """Counted fault events, accumulated across the supervisor's life.

    ``worker_crashes`` counts detected deaths; ``respawns`` successful
    replacements; ``retries`` in-line request replays; ``failovers``
    and ``degraded_responses`` are incremented by the router when it
    answers around a down shard.  All monotone, so the registry's
    absolute-assignment absorption stays idempotent.
    """

    worker_crashes: int = 0
    respawns: int = 0
    respawn_failures: int = 0
    retries: int = 0
    failovers: int = 0
    degraded_responses: int = 0


class ShardSupervisor:
    """Owns the live worker handles and the recovery machinery.

    Parameters
    ----------
    spawner:
        ``shard_id -> ShardWorker``: spawns a fresh worker process for
        one shard (closes over the saved directory, network and object
        slices -- see :func:`repro.shard.worker.spawn_worker`).
    workers:
        The initially spawned handles.  The supervisor owns this dict
        from here on: respawns swap replacements in, and the router
        reads it live.
    policy / fault_injector:
        Recovery policy and the optional deterministic
        :class:`~repro.faults.FaultInjector` chaos hook (called before
        every pipe send).
    sleep:
        Injectable for tests; backoff sleeps go through it.
    """

    def __init__(
        self,
        spawner: Callable[[int], object],
        workers: dict[int, object],
        policy: SupervisionPolicy | None = None,
        fault_injector=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.spawner = spawner
        self.workers = workers
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.fault_injector = fault_injector
        self._sleep = sleep
        self.stats = SupervisorStats()
        self._stats_lock = threading.Lock()
        #: Per-shard respawn locks: concurrent callers hitting the same
        #: dead worker serialize here and the late ones find it healed.
        self._respawn_locks = {shard: threading.Lock() for shard in workers}
        self._respawning: set[int] = set()
        self._state_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health_check(self) -> dict[int, bool]:
        """Ping every worker; ``{shard: alive-and-answering}``."""
        out: dict[int, bool] = {}
        for shard, worker in list(self.workers.items()):
            try:
                out[shard] = worker.ping() == shard
            except (WorkerDied, RuntimeError):
                out[shard] = False
        return out

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    def record(self, **deltas: int) -> None:
        """Public counter hook: the router records failovers and
        degraded responses here so every fault event lives in one
        :class:`SupervisorStats` (and one registry absorption)."""
        self._count(**deltas)

    # ------------------------------------------------------------------
    # The supervised request path
    # ------------------------------------------------------------------
    def knn(
        self,
        shard: int,
        position,
        k: int,
        variant: str,
        cap: float = math.inf,
        trace=None,
        time_cap: float | None = None,
    ):
        """One shard kNN with crash recovery per the policy.

        Returns ``(pairs, stats, worker_spans_or_None)``.  Raises
        :class:`ShardUnavailable` when the policy gives up (the router
        then degrades), :class:`DeadlineExceeded` when the worker's
        time budget ran out (never retried -- the deadline is global).
        """
        if trace is None:
            trace = NULL_TRACE
        attempt = 0
        while True:
            worker = self.workers.get(shard)
            if worker is None:
                raise ShardUnavailable(
                    f"shard {shard} has no worker", shard=shard
                )
            try:
                if not worker.alive:
                    raise WorkerDied(
                        f"shard worker {shard} found dead before send",
                        shard=shard,
                    )
                if self.fault_injector is not None:
                    self.fault_injector.before_request(shard, worker)
                if trace.enabled:
                    pairs, stats, wspans = worker.knn(
                        position, k, variant, cap, trace=True,
                        time_cap=time_cap,
                    )
                    return pairs, stats, wspans
                pairs, stats = worker.knn(
                    position, k, variant, cap, time_cap=time_cap
                )
                return pairs, stats, None
            except DeadlineExceeded:
                raise
            except WorkerDied as died:
                self._count(worker_crashes=1)
                if self.policy.on_failure == "error":
                    raise ShardUnavailable(
                        f"shard {shard} worker died ({died}); policy is "
                        "'error'",
                        shard=shard,
                    ) from died
                if self.policy.on_failure in ("failover", "degrade"):
                    self.respawn_async(shard)
                    raise ShardUnavailable(
                        f"shard {shard} worker died ({died}); respawning "
                        "in the background",
                        shard=shard,
                    ) from died
                attempt += 1
                if attempt > self.policy.max_retries:
                    raise ShardUnavailable(
                        f"shard {shard} still down after "
                        f"{self.policy.max_retries} respawn attempts",
                        shard=shard,
                    ) from died
                with trace.span("respawn", shard=shard) as span:
                    try:
                        self._respawn(shard, worker, attempt)
                    except ShardUnavailable:
                        raise
                    except (WorkerDied, OSError, EOFError,
                            RuntimeError, ValueError):
                        # Spawn/ping failures; retried by the loop.  A
                        # bug of any other type propagates.
                        continue
                    span.count(respawn_attempt=attempt)
                self._count(retries=1)
                # Loop replays the identical request on the new worker.

    # ------------------------------------------------------------------
    # Respawning
    # ------------------------------------------------------------------
    def _respawn(self, shard: int, dead_worker, attempt: int) -> None:
        """Replace a dead worker (serialized per shard)."""
        lock = self._respawn_locks.setdefault(shard, threading.Lock())
        with lock:
            current = self.workers.get(shard)
            if (
                current is not None
                and current is not dead_worker
                and current.alive
            ):
                return  # another caller already healed this shard
            if self._closed:
                raise ShardUnavailable(
                    f"supervisor closed while shard {shard} was down",
                    shard=shard,
                )
            if current is not None:
                # Make sure the old process is fully gone before its
                # replacement maps the same files.
                current.kill()
            delay = self.policy.backoff(attempt, shard)
            if delay > 0:
                self._sleep(delay)
            try:
                replacement = self.spawner(shard)
                replacement.ping()
            except Exception:
                self._count(respawn_failures=1)
                raise
            self.workers[shard] = replacement
            self._count(respawns=1)

    def respawn_async(self, shard: int) -> None:
        """Heal a shard in the background (failover/degrade policies)."""
        with self._state_lock:
            if self._closed or shard in self._respawning:
                return
            self._respawning.add(shard)
        thread = threading.Thread(
            target=self._respawn_background,
            args=(shard,),
            daemon=True,
            name=f"repro-respawn-{shard}",
        )
        thread.start()

    def _respawn_background(self, shard: int) -> None:
        try:
            for attempt in range(1, max(self.policy.max_retries, 1) + 1):
                if self._closed:
                    return
                dead = self.workers.get(shard)
                try:
                    self._respawn(shard, dead, attempt)
                    return
                except (ShardUnavailable, WorkerDied, OSError, EOFError,
                        RuntimeError, ValueError):
                    # Spawn/ping failures; retried with backoff until
                    # the attempt budget runs out.
                    continue
        finally:
            with self._state_lock:
                self._respawning.discard(shard)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop recovering, then stop every worker (join -> kill)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        # Respawn threads observe _closed and bail; per-shard locks
        # keep a racing respawn from resurrecting a worker mid-close.
        for shard in list(self.workers):
            lock = self._respawn_locks.get(shard)
            if lock is None:
                self.workers[shard].stop()
                continue
            with lock:
                self.workers[shard].stop()
