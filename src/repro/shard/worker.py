"""Long-lived shard worker processes and the group that runs them.

Each shard is served by one worker *process* -- its own interpreter,
so the pure-Python best-first search of different shards genuinely
overlaps (threads cannot do that; they share one GIL).  A worker

* loads the sharded index with its shard as ``primary`` (resident)
  and every other shard memory-mapped -- cross-shard probes fault in
  pages the OS page cache shares with the worker owning them;
* indexes only *its* objects, so its search space is the shard's
  slice of the object set;
* answers a tiny request/response pipe protocol, always with exact
  distances (the router merges candidates by comparing them).

Pipe protocol (one pickled tuple per message, strictly
request/response)::

    ("ping",)                           -> ("pong", shard_id)
    ("knn", position, k, variant, cap)  -> ("ok", [(oid, distance), ...], QueryStats)
    ("knn", position, k, variant, cap, True)
        -> ("ok", [(oid, distance), ...], QueryStats, [span dict, ...])
    ("stop",)                           -> worker exits (no response)
    any failure                         -> ("error", "ExcType: message")

``cap`` is the router's current global k-th distance (``inf`` until k
candidates exist): the worker may omit anything farther, which makes
visits to shards that cannot improve the answer nearly free.

The optional sixth ``knn`` element asks the worker to *trace* the
query: it runs a local :class:`~repro.obs.trace.Tracer` and ships the
resulting spans back (absolute ``perf_counter`` times -- the same
system-wide monotonic clock the parent reads) so the router can graft
them into the request's trace with :meth:`~repro.obs.trace.Trace.adopt`.
Untraced requests keep the exact legacy 5-tuple/3-tuple exchange.

:class:`ShardGroup` bundles partitioning, the sharded save, worker
spawning and the :class:`~repro.shard.router.PartitionRouter` behind
the ``knn``/``knn_batch`` surface the serving layer calls.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Iterable

from repro.objects.index import ObjectIndex
from repro.objects.model import ObjectSet, SpatialObject
from repro.shard.partitioner import ShardMap, split_objects
from repro.shard.router import PartitionRouter

#: Fork keeps the already-parsed network and object payloads shared
#: with the parent; spawn re-pickles them (both work -- the payloads
#: are plain dataclasses).
_START_METHOD = "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _shard_worker_main(
    conn,
    directory: str,
    network,
    shard_id: int,
    objects: list[SpatialObject],
    storage_options: dict | None,
) -> None:
    """Entry point of one shard worker process."""
    from repro.engine import QueryEngine
    from repro.silc.index import SILCIndex

    try:
        index = SILCIndex.load_sharded(
            directory, network, primary=shard_id, mmap=True
        )
        object_index = ObjectIndex(network, ObjectSet(objects), index.embedding)
        storage = None
        if storage_options:
            from repro.storage.concurrent import ShardedStorageSimulator

            storage = ShardedStorageSimulator.for_table_sizes(
                index.store.sizes.tolist(), **storage_options
            )
        engine = QueryEngine(index, object_index, storage=storage)
    except Exception as exc:  # noqa: BLE001 - surfaced to the parent
        try:
            conn.send(
                (
                    "error",
                    f"shard {shard_id} failed to start: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
        finally:
            conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        try:
            if kind == "ping":
                conn.send(("pong", shard_id))
            elif kind == "knn":
                _, position, k, variant, cap = msg[:5]
                want_trace = len(msg) > 5 and msg[5]
                if want_trace:
                    from repro.obs.trace import Tracer

                    tracer = Tracer()
                    trace = tracer.start_trace(shard=shard_id)
                    # Rename the root so adopted spans read as
                    # worker-side work, not a nested request.
                    trace.spans[0].name = "worker"
                    trace.spans[0].labels["shard"] = str(shard_id)
                    result = engine.knn(
                        position, k, variant=variant, exact=True,
                        max_distance=cap, trace=trace,
                    )
                    trace.finish("ok")
                    conn.send(
                        (
                            "ok",
                            [(n.oid, n.distance) for n in result.neighbors],
                            result.stats,
                            trace.spans_absolute(),
                        )
                    )
                else:
                    result = engine.knn(
                        position, k, variant=variant, exact=True,
                        max_distance=cap,
                    )
                    conn.send(
                        (
                            "ok",
                            [(n.oid, n.distance) for n in result.neighbors],
                            result.stats,
                        )
                    )
            else:
                conn.send(("error", f"unknown request kind: {kind!r}"))
        except Exception as exc:  # noqa: BLE001 - surfaced to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class ShardWorker:
    """Parent-side handle of one shard worker process.

    A lock serializes the send/receive pair, so any number of serving
    threads can share the handle; different workers have independent
    locks (and pipes), which is exactly where the parallelism comes
    from.
    """

    def __init__(self, shard_id: int, process, conn) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self._lock = threading.Lock()

    def request(self, message: tuple):
        """One request/response round trip (thread-safe)."""
        with self._lock:
            self.conn.send(message)
            try:
                response = self.conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {self.shard_id} died mid-request"
                ) from None
        if response[0] == "error":
            raise RuntimeError(response[1])
        return response

    def ping(self) -> int:
        """Round trip a ping; returns the worker's shard id."""
        return self.request(("ping",))[1]

    def knn(
        self,
        position,
        k: int,
        variant: str,
        cap: float = float("inf"),
        trace: bool = False,
    ):
        """The shard's k nearest of its own objects, with exact distances.

        ``cap`` lets the worker omit objects farther than the caller's
        current global bound.  Returns
        ``([(oid, distance), ...], QueryStats)``; with ``trace=True``
        the worker traces the query and a third element carries its
        span dicts (absolute times, ready for
        :meth:`~repro.obs.trace.Trace.adopt`).
        """
        if trace:
            response = self.request(("knn", position, k, variant, cap, True))
            return response[1], response[2], response[3]
        response = self.request(("knn", position, k, variant, cap))
        return response[1], response[2]

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the process to exit; escalate to terminate if it won't."""
        try:
            with self._lock:
                self.conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self.conn.close()
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)


class ShardGroup:
    """The sharded serving tier: partition, save, spawn, route.

    Build one with :meth:`from_engine`; then :meth:`knn` and
    :meth:`knn_batch` answer queries through the partition router and
    the worker processes, with results identical to the unsharded
    engine's exact path.  Always close (or use as a context manager):
    the workers are real processes.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        workers: dict[int, ShardWorker],
        router: PartitionRouter,
        directory: Path,
        owns_directory: bool,
    ) -> None:
        self.shard_map = shard_map
        self.workers = workers
        self.router = router
        self.directory = directory
        self._owns_directory = owns_directory
        self._closed = False

    @classmethod
    def from_engine(
        cls,
        engine,
        num_shards: int,
        directory: str | Path | None = None,
        worker_storage: dict | None = None,
    ) -> "ShardGroup":
        """Shard a :class:`~repro.engine.QueryEngine`'s index and objects.

        Partitions the network into ``num_shards`` Morton ranges,
        writes the sharded store layout under ``directory`` (a private
        temporary directory by default, removed on :meth:`close`),
        spawns one worker process per shard that holds objects, pings
        each (so construction only returns once every worker has its
        slice mapped), and fronts them with a
        :class:`~repro.shard.router.PartitionRouter` that prunes with
        the parent's own index.

        ``worker_storage`` (e.g. ``{"cache_fraction": 0.05,
        "sleep_per_miss": 8e-4}``) gives every worker its own storage
        simulator -- the benchmark's disk-resident regime.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        index = engine.index
        network = index.network
        objects = engine.object_index.objects
        shard_map = ShardMap.from_index(index, num_shards)
        owns_directory = directory is None
        if owns_directory:
            directory = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        else:
            directory = Path(directory)
        index.save_sharded(directory, shard_map)
        per_shard, has_edge = split_objects(
            network, objects, index.embedding, shard_map
        )
        ctx = mp.get_context(_START_METHOD)
        workers: dict[int, ShardWorker] = {}
        try:
            for shard in range(num_shards):
                if not per_shard[shard]:
                    continue
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker_main,
                    args=(
                        child_conn,
                        str(directory),
                        network,
                        shard,
                        per_shard[shard],
                        worker_storage,
                    ),
                    daemon=True,
                    name=f"repro-shard-{shard}",
                )
                process.start()
                child_conn.close()
                workers[shard] = ShardWorker(shard, process, parent_conn)
            for worker in workers.values():
                worker.ping()
        except BaseException:
            for worker in workers.values():
                worker.stop()
            if owns_directory:
                shutil.rmtree(directory, ignore_errors=True)
            raise
        router = PartitionRouter(
            index,
            shard_map,
            workers,
            has_edge=has_edge,
            object_counts=[len(objs) for objs in per_shard],
        )
        return cls(shard_map, workers, router, directory, owns_directory)

    # ------------------------------------------------------------------
    # Query surface (mirrors QueryEngine's)
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def stats(self):
        """The router's accumulated :class:`RouterStats`."""
        return self.router.stats

    def knn(self, query, k: int, variant: str = "knn", trace=None):
        """One kNN query, scatter-gathered across the shard workers."""
        return self.router.knn(query, k, variant=variant, trace=trace)

    def knn_batch(self, queries: Iterable, k: int, variant: str = "knn", trace=None):
        """A batch of kNN queries (sequential; parallelism comes from
        concurrent callers, e.g. the serving layer's dispatch threads)."""
        return self.router.knn_batch(queries, k, variant=variant, trace=trace)

    def ping(self) -> list[int]:
        """Round trip every worker; returns the live shard ids."""
        return [worker.ping() for worker in self.workers.values()]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker process and clean up the owned directory."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers.values():
            worker.stop()
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "ShardGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
