"""Long-lived shard worker processes and the group that runs them.

Each shard is served by one worker *process* -- its own interpreter,
so the pure-Python best-first search of different shards genuinely
overlaps (threads cannot do that; they share one GIL).  A worker

* loads the sharded index with its shard as ``primary`` (resident)
  and every other shard memory-mapped -- cross-shard probes fault in
  pages the OS page cache shares with the worker owning them;
* indexes only *its* objects, so its search space is the shard's
  slice of the object set;
* answers a tiny request/response pipe protocol, always with exact
  distances (the router merges candidates by comparing them).

Pipe protocol (one pickled tuple per message, strictly
request/response)::

    ("ping",)                           -> ("pong", shard_id)
    ("knn", position, k, variant, cap)  -> ("ok", [(oid, distance), ...], QueryStats)
    ("knn", position, k, variant, cap, True)
        -> ("ok", [(oid, distance), ...], QueryStats, [span dict, ...])
    ("knn", position, k, variant, cap, trace?, time_budget)
        -> as above, or ("expired", message) when the budget runs out
    ("stop",)                           -> worker exits (no response)
    any failure                         -> ("error", "ExcType: message")

``cap`` is the router's current global k-th distance (``inf`` until k
candidates exist): the worker may omit anything farther, which makes
visits to shards that cannot improve the answer nearly free.

The optional sixth ``knn`` element asks the worker to *trace* the
query: it runs a local :class:`~repro.obs.trace.Tracer` and ships the
resulting spans back (absolute ``perf_counter`` times -- the same
system-wide monotonic clock the parent reads) so the router can graft
them into the request's trace with :meth:`~repro.obs.trace.Trace.adopt`.
The optional seventh element is the query's *remaining deadline
budget* in seconds; the worker passes it into the engine as a time
cap and answers ``("expired", message)`` if the search overruns it
(the parent raises :class:`~repro.errors.DeadlineExceeded`).
Untraced, un-budgeted requests keep the exact legacy exchange.

**Crash safety** (this is the serving tier's availability story): the
parent-side :class:`ShardWorker` never blocks forever on a dead
process.  Receives go through ``poll()`` with a short interval and a
process-liveness check, so a crashed worker surfaces as
:class:`~repro.errors.WorkerDied` within ~one poll interval instead
of hanging the router; ``stop()`` escalates join -> terminate -> kill
so a wedged worker can never zombie the shutdown path.  Recovery --
respawn/backoff/replay -- lives one level up in
:class:`~repro.shard.supervisor.ShardSupervisor`, which rebuilds
workers from their :class:`WorkerSpec` via :func:`spawn_worker`.

:class:`ShardGroup` bundles partitioning, the sharded save, worker
spawning, supervision and the
:class:`~repro.shard.router.PartitionRouter` behind the
``knn``/``knn_batch`` surface the serving layer calls.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing as mp
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable

from repro.errors import DeadlineExceeded, WorkerDied
from repro.objects.index import ObjectIndex
from repro.objects.model import ObjectSet, SpatialObject
from repro.shard.partitioner import ShardMap, split_objects
from repro.shard.router import PartitionRouter
from repro.shard.supervisor import ShardSupervisor, SupervisionPolicy

#: Fork keeps the already-parsed network and object payloads shared
#: with the parent; spawn re-pickles them (both work -- the payloads
#: are plain dataclasses).
_START_METHOD = "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _shard_worker_main(
    conn,
    directory: str,
    network,
    shard_id: int,
    objects: list[SpatialObject],
    storage_options: dict | None,
) -> None:
    """Entry point of one shard worker process."""
    from repro.engine import QueryEngine
    from repro.silc.index import SILCIndex

    try:
        index = SILCIndex.load_sharded(
            directory, network, primary=shard_id, mmap=True
        )
        object_index = ObjectIndex(network, ObjectSet(objects), index.embedding)
        storage = None
        if storage_options:
            from repro.storage.concurrent import ShardedStorageSimulator

            storage = ShardedStorageSimulator.for_table_sizes(
                index.store.sizes.tolist(), **storage_options
            )
        engine = QueryEngine(index, object_index, storage=storage)
    except Exception as exc:  # noqa: BLE001 - surfaced to the parent
        try:
            conn.send(
                (
                    "error",
                    f"shard {shard_id} failed to start: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
        finally:
            conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        try:
            if kind == "ping":
                conn.send(("pong", shard_id))
            elif kind == "knn":
                _, position, k, variant, cap = msg[:5]
                want_trace = len(msg) > 5 and msg[5]
                time_budget = msg[6] if len(msg) > 6 else None
                if want_trace:
                    from repro.obs.trace import Tracer

                    tracer = Tracer()
                    trace = tracer.start_trace(shard=shard_id)
                    # Rename the root so adopted spans read as
                    # worker-side work, not a nested request.
                    trace.spans[0].name = "worker"
                    trace.spans[0].labels["shard"] = str(shard_id)
                    result = engine.knn(
                        position, k, variant=variant, exact=True,
                        max_distance=cap, trace=trace,
                        time_cap=time_budget,
                    )
                    trace.finish("ok")
                    conn.send(
                        (
                            "ok",
                            [(n.oid, n.distance) for n in result.neighbors],
                            result.stats,
                            trace.spans_absolute(),
                        )
                    )
                else:
                    result = engine.knn(
                        position, k, variant=variant, exact=True,
                        max_distance=cap, time_cap=time_budget,
                    )
                    conn.send(
                        (
                            "ok",
                            [(n.oid, n.distance) for n in result.neighbors],
                            result.stats,
                        )
                    )
            else:
                conn.send(("error", f"unknown request kind: {kind!r}"))
        except DeadlineExceeded as exc:
            conn.send(("expired", f"shard {shard_id}: {exc}"))
        except Exception as exc:  # noqa: BLE001 - surfaced to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to (re)spawn one shard's worker process.

    The supervisor keeps these around so a crashed worker can be
    rebuilt identically: same saved directory, same network, same
    object slice, same storage simulation.  That identity is what
    makes replay-after-respawn answer-preserving.
    """

    directory: str
    network: object = field(repr=False)
    shard_id: int = 0
    objects: tuple = field(default=(), repr=False)
    storage_options: dict | None = None


def spawn_worker(spec: WorkerSpec) -> ShardWorker:
    """Start one worker process from its spec; does not ping it."""
    ctx = mp.get_context(_START_METHOD)
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=_shard_worker_main,
        args=(
            child_conn,
            spec.directory,
            spec.network,
            spec.shard_id,
            list(spec.objects),
            spec.storage_options,
        ),
        daemon=True,
        name=f"repro-shard-{spec.shard_id}",
    )
    process.start()
    child_conn.close()
    return ShardWorker(spec.shard_id, process, parent_conn)


class ShardWorker:
    """Parent-side handle of one shard worker process.

    A lock serializes the send/receive pair, so any number of serving
    threads can share the handle; different workers have independent
    locks (and pipes), which is exactly where the parallelism comes
    from.

    The receive side never blocks indefinitely: it polls the pipe at
    :attr:`poll_interval` and re-checks process liveness between
    polls, so a worker that dies mid-request raises
    :class:`~repro.errors.WorkerDied` promptly instead of hanging the
    caller forever (which is what a bare ``conn.recv()`` on a dead
    pipe's parent end does when the child end leaked into siblings).
    """

    #: Seconds between liveness checks while awaiting a response.
    poll_interval = 0.05

    def __init__(self, shard_id: int, process, conn) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return self.process.is_alive()

    def request(self, message: tuple, timeout: float | None = None):
        """One request/response round trip (thread-safe, hang-proof).

        Raises :class:`WorkerDied` when the process is dead, dies
        mid-request, or fails to answer within ``timeout`` seconds
        (unbounded by default -- liveness, not latency, is what the
        poll loop enforces).  A worker-reported ``("expired", ...)``
        raises :class:`DeadlineExceeded`; ``("error", ...)`` keeps its
        historical ``RuntimeError``.
        """
        with self._lock:
            if not self.process.is_alive():
                raise WorkerDied(
                    f"shard worker {self.shard_id} is dead "
                    f"(exitcode {self.process.exitcode})",
                    shard=self.shard_id,
                )
            try:
                self.conn.send(message)
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise WorkerDied(
                    f"shard worker {self.shard_id} pipe broke on send: {exc}",
                    shard=self.shard_id,
                ) from exc
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                try:
                    if self.conn.poll(self.poll_interval):
                        response = self.conn.recv()
                        break
                except (EOFError, OSError) as exc:
                    raise WorkerDied(
                        f"shard worker {self.shard_id} died mid-request",
                        shard=self.shard_id,
                    ) from exc
                if not self.process.is_alive():
                    # Drain any response that raced the process exit
                    # (suppressed errors mean there was none to drain).
                    with contextlib.suppress(EOFError, OSError):
                        if self.conn.poll(0):
                            response = self.conn.recv()
                            break
                    raise WorkerDied(
                        f"shard worker {self.shard_id} died mid-request "
                        f"(exitcode {self.process.exitcode})",
                        shard=self.shard_id,
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise WorkerDied(
                        f"shard worker {self.shard_id} unresponsive for "
                        f"{timeout:.3f}s",
                        shard=self.shard_id,
                    )
        if response[0] == "expired":
            raise DeadlineExceeded(response[1])
        if response[0] == "error":
            raise RuntimeError(response[1])
        return response

    def ping(self) -> int:
        """Round trip a ping; returns the worker's shard id."""
        return self.request(("ping",))[1]

    def knn(
        self,
        position,
        k: int,
        variant: str,
        cap: float = math.inf,
        trace: bool = False,
        time_cap: float | None = None,
    ):
        """The shard's k nearest of its own objects, with exact distances.

        ``cap`` lets the worker omit objects farther than the caller's
        current global bound.  ``time_cap`` is the query's remaining
        deadline budget in seconds; the worker aborts the search and
        this raises :class:`DeadlineExceeded` if it runs out.  Returns
        ``([(oid, distance), ...], QueryStats)``; with ``trace=True``
        the worker traces the query and a third element carries its
        span dicts (absolute times, ready for
        :meth:`~repro.obs.trace.Trace.adopt`).
        """
        if time_cap is not None:
            message = ("knn", position, k, variant, cap, trace, time_cap)
        elif trace:
            message = ("knn", position, k, variant, cap, True)
        else:
            message = ("knn", position, k, variant, cap)
        response = self.request(message)
        if trace:
            return response[1], response[2], response[3]
        return response[1], response[2]

    def kill(self) -> None:
        """Hard-kill the worker process (fault injection / cleanup).

        SIGKILL, then reap: after this returns the process is gone and
        a replacement can safely map the same files.
        """
        with contextlib.suppress(OSError, ValueError, AttributeError):
            self.process.kill()
        self.process.join(5.0)
        with contextlib.suppress(OSError):
            self.conn.close()

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the process to exit; escalate join -> terminate -> kill.

        A wedged or already-dead worker can never hang shutdown: if the
        polite stop does not land within ``timeout`` the process is
        terminated (SIGTERM), and if *that* does not land, killed
        (SIGKILL) -- each stage followed by a bounded join.
        """
        with contextlib.suppress(OSError, ValueError), self._lock:
            self.conn.send(("stop",))
        with contextlib.suppress(OSError):
            self.conn.close()
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)


class ShardGroup:
    """The sharded serving tier: partition, save, spawn, route, supervise.

    Build one with :meth:`from_engine`; then :meth:`knn` and
    :meth:`knn_batch` answer queries through the partition router and
    the worker processes, with results identical to the unsharded
    engine's exact path.  Worker crashes are handled by the embedded
    :class:`~repro.shard.supervisor.ShardSupervisor` per the
    ``on_failure`` policy.  Always close (or use as a context
    manager): the workers are real processes.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        supervisor: ShardSupervisor,
        router: PartitionRouter,
        directory: Path,
        owns_directory: bool,
    ) -> None:
        self.shard_map = shard_map
        self.supervisor = supervisor
        self.router = router
        self.directory = directory
        self._owns_directory = owns_directory
        self._closed = False

    @property
    def workers(self) -> dict[int, ShardWorker]:
        """The live worker handles (respawns swap entries in place)."""
        return self.supervisor.workers

    @classmethod
    def from_engine(
        cls,
        engine,
        num_shards: int,
        directory: str | Path | None = None,
        worker_storage: dict | None = None,
        on_failure: str = "respawn",
        max_retries: int = 2,
        fault_injector=None,
    ) -> ShardGroup:
        """Shard a :class:`~repro.engine.QueryEngine`'s index and objects.

        Partitions the network into ``num_shards`` Morton ranges,
        writes the sharded store layout under ``directory`` (a private
        temporary directory by default, removed on :meth:`close`),
        spawns one worker process per shard that holds objects, pings
        each (so construction only returns once every worker has its
        slice mapped), and fronts them with a
        :class:`~repro.shard.router.PartitionRouter` that prunes with
        the parent's own index.

        ``worker_storage`` (e.g. ``{"cache_fraction": 0.05,
        "sleep_per_miss": 8e-4}``) gives every worker its own storage
        simulator -- the benchmark's disk-resident regime.

        ``on_failure`` picks the supervision policy (``respawn`` /
        ``failover`` / ``degrade`` / ``error`` -- see
        :class:`~repro.shard.supervisor.SupervisionPolicy`),
        ``max_retries`` bounds respawn+replay attempts per request,
        and ``fault_injector`` plugs a deterministic
        :class:`~repro.faults.FaultInjector` into the request path for
        chaos tests.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        index = engine.index
        network = index.network
        objects = engine.object_index.objects
        shard_map = ShardMap.from_index(index, num_shards)
        owns_directory = directory is None
        if owns_directory:
            directory = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        else:
            directory = Path(directory)
        index.save_sharded(directory, shard_map)
        per_shard, has_edge = split_objects(
            network, objects, index.embedding, shard_map
        )
        specs = {
            shard: WorkerSpec(
                directory=str(directory),
                network=network,
                shard_id=shard,
                objects=tuple(per_shard[shard]),
                storage_options=worker_storage,
            )
            for shard in range(num_shards)
            if per_shard[shard]
        }
        workers: dict[int, ShardWorker] = {}
        try:
            for shard, spec in specs.items():
                workers[shard] = spawn_worker(spec)
            for worker in workers.values():
                worker.ping()
        except BaseException:
            for worker in workers.values():
                worker.stop()
            if owns_directory:
                shutil.rmtree(directory, ignore_errors=True)
            raise
        supervisor = ShardSupervisor(
            spawner=lambda shard: spawn_worker(specs[shard]),
            workers=workers,
            policy=SupervisionPolicy(
                on_failure=on_failure, max_retries=max_retries
            ),
            fault_injector=fault_injector,
        )
        router = PartitionRouter(
            index,
            shard_map,
            supervisor,
            has_edge=has_edge,
            object_counts=[len(objs) for objs in per_shard],
            fallback=engine,
        )
        return cls(shard_map, supervisor, router, directory, owns_directory)

    # ------------------------------------------------------------------
    # Query surface (mirrors QueryEngine's)
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def stats(self):
        """The router's accumulated :class:`RouterStats`."""
        return self.router.stats

    def knn(self, query, k: int, variant: str = "knn", trace=None,
            time_cap: float | None = None):
        """One kNN query, scatter-gathered across the shard workers."""
        return self.router.knn(
            query, k, variant=variant, trace=trace, time_cap=time_cap
        )

    def knn_batch(self, queries: Iterable, k: int, variant: str = "knn",
                  trace=None, time_cap: float | None = None):
        """A batch of kNN queries (sequential; parallelism comes from
        concurrent callers, e.g. the serving layer's dispatch threads)."""
        return self.router.knn_batch(
            queries, k, variant=variant, trace=trace, time_cap=time_cap
        )

    def ping(self) -> list[int]:
        """Round trip every worker; returns the live shard ids."""
        return [worker.ping() for worker in self.workers.values()]

    def health_check(self) -> dict[int, bool]:
        """Per-shard liveness, via the supervisor (never raises)."""
        return self.supervisor.health_check()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker process and clean up the owned directory."""
        if self._closed:
            return
        self._closed = True
        self.supervisor.close()
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> ShardGroup:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
