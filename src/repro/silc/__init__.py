"""SILC: the paper's core contribution.

Shortest-path maps, shortest-path quadtrees, the per-network
:class:`SILCIndex`, distance intervals and progressive refinement.
"""

from repro.silc.coloring import ShortestPathMap, shortest_path_map, shortest_path_maps
from repro.silc.index import SILCIndex
from repro.silc.intervals import DistanceInterval
from repro.silc.parallel import (
    BuildTransferStats,
    available_workers,
    parallel_block_tables,
    resolve_workers,
    shared_memory_available,
)
from repro.silc.proximal import BeyondHorizonError, ProximalSILCIndex
from repro.silc.refinement import RefinableDistance, RefinementCounter
from repro.silc.sp_quadtree import SPQuadtreeBuilder, choose_grid_order
from repro.silc.store import FlatStore
from repro.silc.updates import affected_sources, diff_edges, update_index

__all__ = [
    "ShortestPathMap",
    "shortest_path_map",
    "shortest_path_maps",
    "SILCIndex",
    "ProximalSILCIndex",
    "BeyondHorizonError",
    "DistanceInterval",
    "FlatStore",
    "RefinableDistance",
    "RefinementCounter",
    "SPQuadtreeBuilder",
    "choose_grid_order",
    "available_workers",
    "BuildTransferStats",
    "parallel_block_tables",
    "resolve_workers",
    "shared_memory_available",
    "update_index",
    "affected_sources",
    "diff_edges",
]
