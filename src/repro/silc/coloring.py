"""Shortest-path maps: the coloring step of the SILC precompute.

For a source vertex ``u``, the *shortest-path map* assigns every other
vertex ``v`` the color of the first edge on the shortest path
``u -> v`` (p.12 of the paper).  Path coherence of planar spatial
networks makes equal-colored vertices spatially contiguous, which is
what the quadtree compresses.

Alongside the color we record each vertex's ratio of network distance
to Euclidean distance -- the per-vertex quantity whose block-wise
min/max becomes the ``[lambda_min, lambda_max]`` annotation driving
distance intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.network.allpairs import all_pairs_rows, single_source_row
from repro.network.graph import SpatialNetwork


@dataclass(frozen=True)
class ShortestPathMap:
    """The coloring of all vertices from one source.

    Attributes
    ----------
    source:
        The source vertex ``u``.
    colors:
        ``colors[v]`` is the first hop of the shortest path ``u -> v``
        (a neighbor of ``u``); ``colors[u] == u`` by convention and
        ``colors[v] == -1`` for unreachable vertices.
    ratios:
        ``ratios[v] = d_G(u, v) / d_E(u, v)``; 1.0 at the source.
    dist:
        Network distances ``d_G(u, v)``.
    """

    source: int
    colors: np.ndarray
    ratios: np.ndarray
    dist: np.ndarray

    def num_regions(self) -> int:
        """Number of distinct colors (= out-degree used, plus self)."""
        return int(np.unique(self.colors[self.colors >= 0]).size)


def _ratios(network: SpatialNetwork, source: int, dist: np.ndarray) -> np.ndarray:
    """Network/Euclidean ratio per vertex, with the source fixed to 1."""
    d_e = np.hypot(
        network.xs - network.xs[source], network.ys - network.ys[source]
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = dist / d_e
    ratios[source] = 1.0
    return ratios


def shortest_path_map(network: SpatialNetwork, source: int) -> ShortestPathMap:
    """Compute the shortest-path map of a single source vertex."""
    dist, first = single_source_row(network, source)
    return ShortestPathMap(
        source=source,
        colors=first,
        ratios=_ratios(network, source, dist),
        dist=dist,
    )


def shortest_path_maps(
    network: SpatialNetwork,
    sources: Sequence[int] | None = None,
    chunk_size: int = 128,
    limit: float = np.inf,
) -> Iterator[ShortestPathMap]:
    """Stream shortest-path maps for many sources at bounded memory.

    This is the producer side of the SILC build: maps are consumed one
    at a time, compressed into a quadtree, and dropped.  With a finite
    ``limit`` (the proximal strategy, p.27) vertices beyond the horizon
    keep color ``-1`` and ratio 1.0 -- the quadtree then encodes the
    horizon boundary explicitly.
    """
    for source, dist, first in all_pairs_rows(
        network, chunk_size=chunk_size, sources=sources, limit=limit
    ):
        ratios = _ratios(network, source, dist)
        if np.isfinite(limit):
            ratios = np.where(np.isfinite(dist), ratios, 1.0)
        yield ShortestPathMap(
            source=source,
            colors=first,
            ratios=ratios,
            dist=dist,
        )
