"""The SILC index: one shortest-path quadtree per network vertex.

This is the paper's primary data structure.  Building it runs one
single-source shortest-path computation per vertex (the O(N^1.5)-space
precompute); querying it answers, in far less than a Dijkstra search:

* ``next_hop(u, v)``        -- first link of the shortest path (one
  block-table point location),
* ``path(u, v)``            -- the whole path in size-of-path steps,
* ``distance(u, v)``        -- exact network distance,
* ``interval_from(u, v)``   -- a ``[lambda_min*d_E, lambda_max*d_E]``
  distance interval without touching the path,
* ``refinable(u, v)``       -- a progressively refinable distance,
* ``block_lower_bound``     -- network-distance lower bound from a
  vertex to an object-index block (for best-first kNN).

An optional :class:`~repro.storage.StorageSimulator` can be attached,
after which every block-table probe is accounted as a page access
through the simulated LRU buffer -- the paper's I/O cost model.
"""

from __future__ import annotations

import math
import zipfile
from pathlib import Path
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.errors import CorruptIndexError
from repro.geometry.grid import GridEmbedding
from repro.geometry.morton import block_cells
from repro.geometry.rect import Rect
from repro.integrity import (
    atomic_directory,
    atomic_save_npy,
    atomic_save_npz,
    checked_load,
    verify_manifest,
    write_manifest,
)
from repro.network.allpairs import materialize_sources
from repro.network.errors import PathNotFound
from repro.network.graph import SpatialNetwork
from repro.quadtree.blocks import BlockTable
from repro.silc.coloring import shortest_path_maps
from repro.silc.parallel import parallel_block_tables, resolve_workers
from repro.silc.intervals import DistanceInterval
from repro.silc.refinement import RefinableDistance, RefinementCounter
from repro.silc.sp_quadtree import SPQuadtreeBuilder, choose_grid_order
from repro.silc.store import COLUMNS, FlatStore, ShardedFlatStore
from repro.storage.simulator import StorageSimulator

#: Relative padding applied to interval bounds so that float round-off
#: in the ratio arithmetic can never expel the true distance.
_REL_PAD = 1e-11


class SILCIndex:
    """Per-vertex shortest-path quadtrees over one spatial network."""

    def __init__(
        self,
        network: SpatialNetwork,
        embedding: GridEmbedding,
        vertex_codes: np.ndarray,
        tables: list[BlockTable] | FlatStore | ShardedFlatStore,
    ) -> None:
        if isinstance(tables, list):
            store = FlatStore.from_tables(tables)
        else:
            # Any object with the FlatStore read surface works here:
            # the plain store, or a ShardedFlatStore stitched from
            # per-shard slices by load_sharded.
            store = tables
        if store.num_tables != network.num_vertices:
            raise ValueError(
                f"{store.num_tables} tables for {network.num_vertices} vertices"
            )
        self.network = network
        self.embedding = embedding
        self.vertex_codes = np.asarray(vertex_codes, dtype=np.int64)
        #: The flat columnar store all per-vertex tables are views of.
        self.store = store
        #: Per-vertex zero-copy views over ``store`` (the historical
        #: query interface; no column data is duplicated).
        self.tables = store.views()
        self.storage: StorageSimulator | None = None
        # Native-type mirrors for the query hot path: indexing numpy
        # scalars costs ~10x a list lookup, and interval_from runs once
        # per refinement step.
        self._xf: list[float] = network.xs.tolist()
        self._yf: list[float] = network.ys.tolist()
        self._vcodes: list[int] = self.vertex_codes.tolist()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: SpatialNetwork,
        chunk_size: int = 128,
        sources: Sequence[int] | None = None,
        progress: Callable[[int, int], None] | None = None,
        workers: int | None = None,
        transport: str | None = None,
    ) -> SILCIndex:
        """Run the full SILC precompute for a network.

        ``sources`` restricts the build to a subset of vertices (used
        by the localized-rebuild example) and may be any iterable,
        including a generator; queries may then only start from built
        vertices.  ``progress`` receives ``(done, total)`` after each
        source (after each chunk in parallel mode).  ``workers`` fans
        the per-source builds across a process pool: ``None``/``1``
        builds serially, ``0`` uses every available CPU, and any other
        value is the pool size.  ``transport`` picks how a parallel
        build moves data between processes (``"shm"``/``"pickle"``;
        default: shared memory when available).  The parallel result
        is byte-identical to the serial one either way.
        """
        network.require_strongly_connected()
        embedding, codes = choose_grid_order(network)
        source_list = materialize_sources(network, sources)
        total = network.num_vertices if source_list is None else len(source_list)
        tables: list[BlockTable | None] = [None] * network.num_vertices
        n_workers = resolve_workers(workers)
        if n_workers > 1 and total > 1:
            built = parallel_block_tables(
                network,
                embedding,
                codes,
                source_list,
                workers=n_workers,
                chunk_size=chunk_size,
                progress=progress,
                transport=transport,
            )
            for source, table in built.items():
                tables[source] = table
        else:
            builder = SPQuadtreeBuilder(network, embedding, codes)
            done = 0
            for spm in shortest_path_maps(
                network, sources=source_list, chunk_size=chunk_size
            ):
                tables[spm.source] = builder.build(spm.colors, spm.ratios)
                done += 1
                if progress is not None:
                    progress(done, total)
        empty = BlockTable(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int32),
            np.empty(0),
            np.empty(0),
        )
        return cls(network, embedding, codes, [t if t is not None else empty for t in tables])

    # ------------------------------------------------------------------
    # Storage attachment
    # ------------------------------------------------------------------
    def attach_storage(self, simulator: StorageSimulator) -> None:
        """Route every block-table probe through a page-cache simulator."""
        expected = self.store.sizes.tolist()
        if simulator.layout.table_sizes != expected:
            raise ValueError("simulator layout does not match the index tables")
        self.storage = simulator

    def detach_storage(self) -> None:
        self.storage = None

    def make_storage(
        self,
        cache_fraction: float = 0.05,
        miss_latency: float | None = None,
        concurrent: bool = False,
    ) -> StorageSimulator:
        """A simulator sized for this index (paper default: 5% cache).

        ``concurrent=True`` returns a
        :class:`~repro.storage.ShardedStorageSimulator` whose LRU state
        and counters are per-thread, safe for parallel query workers.
        """
        kwargs = {} if miss_latency is None else {"miss_latency": miss_latency}
        sizes = self.store.sizes.tolist()
        if concurrent:
            from repro.storage.concurrent import ShardedStorageSimulator

            return ShardedStorageSimulator.for_table_sizes(
                sizes, cache_fraction=cache_fraction, **kwargs
            )
        return StorageSimulator.for_table_sizes(
            sizes, cache_fraction=cache_fraction, **kwargs
        )

    # ------------------------------------------------------------------
    # Core probes
    # ------------------------------------------------------------------
    def _lookup(self, source: int, target: int) -> tuple[int, float, float]:
        """Fused probe: (first_hop, lam_min, lam_max) with page accounting."""
        hit = self.tables[source].lookup(self._vcodes[target])
        if hit is None:
            raise PathNotFound(source, target)
        color, lam_lo, lam_hi, row = hit
        if self.storage is not None:
            self.storage.touch(source, row)
        return color, lam_lo, lam_hi

    def next_hop(self, source: int, target: int) -> int:
        """First vertex after ``source`` on the shortest path to target."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return source
        return self._lookup(source, target)[0]

    def hop_and_interval(
        self, source: int, target: int
    ) -> tuple[int, float, float]:
        """One probe returning the next hop and the raw interval bounds.

        The refinement engine's hot path: a single binary search yields
        both the first hop and the ``[lo, hi]`` distance bounds.
        """
        if source == target:
            return source, 0.0, 0.0
        color, lam_lo, lam_hi = self._lookup(source, target)
        d_e = math.hypot(
            self._xf[source] - self._xf[target], self._yf[source] - self._yf[target]
        )
        return (
            color,
            lam_lo * d_e * (1.0 - _REL_PAD),
            lam_hi * d_e * (1.0 + _REL_PAD),
        )

    def interval_from(self, source: int, target: int) -> DistanceInterval:
        """Distance interval from the lambda annotations (one probe)."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return DistanceInterval.exact(0.0)
        _, lo, hi = self.hop_and_interval(source, target)
        return DistanceInterval(lo, hi)

    def refinable(
        self,
        source: int,
        target: int,
        counter: RefinementCounter | None = None,
        offset: float = 0.0,
    ) -> RefinableDistance:
        """A progressively refinable distance from source to target."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        return RefinableDistance(self, source, target, counter=counter, offset=offset)

    # ------------------------------------------------------------------
    # Paths and exact distances
    # ------------------------------------------------------------------
    def path(self, source: int, target: int) -> list[int]:
        """The shortest path, retrieved in size-of-path steps (p.17)."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        path = [source]
        guard = self.network.num_vertices
        while path[-1] != target:
            path.append(self.next_hop(path[-1], target))
            if len(path) > guard:
                raise RuntimeError(
                    f"path {source}->{target} exceeded {guard} vertices; "
                    "the index next-hop data is inconsistent"
                )
        return path

    def distance(self, source: int, target: int) -> float:
        """Exact network distance (full refinement of the path)."""
        return self.refinable(source, target).refine_fully()

    # ------------------------------------------------------------------
    # Block-level lower bounds (for the object-index traversal)
    # ------------------------------------------------------------------
    def block_lower_bound(
        self, source: int, code: int, level: int, account: bool = True
    ) -> float:
        """Lower bound on the network distance from ``source`` to any
        *vertex* inside the Morton block ``(code, level)``.

        Implements the paper's DISTANCE_INTERVAL(object, Region)
        primitive: intersect the block with the source's shortest-path
        quadtree and take the best ``lambda_min * MINDIST`` over the
        overlapping pieces (distances in network-weight units, the same
        units as edge weights).  Returns ``inf`` when the block
        contains no network vertex at all.

        ``account=False`` skips the storage-simulator page accounting:
        the partition router computes shard bounds from serving
        threads that must not touch a non-concurrent simulator, and
        its probes are counted separately in its own stats.
        """
        self.network.check_vertex(source)
        table = self.tables[source]
        lo_code = code
        hi_code = code + block_cells(level)
        rows = table.overlapping(lo_code, hi_code)
        if len(rows) == 0:
            return float("inf")
        if self.storage is not None and account:
            self.storage.touch_range(source, rows.start, rows.stop)
        px = self._xf[source]
        py = self._yf[source]
        query_rect = self.embedding.block_world_rect(code, level)
        sl = slice(rows.start, rows.stop)
        b_codes = table.codes[sl]
        b_levels = table.levels[sl].astype(np.int64)
        # Aligned Morton blocks either nest or are disjoint, so the
        # intersection of each overlapping block with the query block
        # is simply the smaller of the two: the table block when it is
        # nested inside the query range, the query block otherwise.
        nested = (b_codes >= lo_code) & (
            b_codes + (np.int64(1) << (2 * b_levels)) <= hi_code
        )
        dist = np.full(
            b_codes.size, query_rect.min_distance_to_point_xy(px, py)
        )
        if nested.any():
            xmin, ymin, xmax, ymax = self.embedding.block_world_bounds_array(
                b_codes[nested], b_levels[nested]
            )
            dx = np.maximum(np.maximum(xmin - px, 0.0), px - xmax)
            dy = np.maximum(np.maximum(ymin - py, 0.0), py - ymax)
            dist[nested] = np.hypot(dx, dy)
        best = float(np.min(table.lam_min[sl] * dist))
        return best * (1.0 - _REL_PAD)

    # ------------------------------------------------------------------
    # Statistics / serialization
    # ------------------------------------------------------------------
    def total_blocks(self) -> int:
        """Total Morton blocks -- the paper's storage unit (p.16)."""
        return self.store.total_blocks

    def blocks_per_vertex(self) -> np.ndarray:
        return self.store.sizes

    def storage_bytes(self, record_bytes: int = 16) -> int:
        return self.total_blocks() * record_bytes

    def iter_tables(self) -> Iterator[tuple[int, BlockTable]]:
        yield from enumerate(self.tables)

    def _save_payload(self) -> dict[str, np.ndarray]:
        payload = dict(
            sizes=self.store.sizes.astype(np.int64),
            vertex_codes=self.vertex_codes,
            embedding_bounds=np.array(
                [
                    self.embedding.bounds.xmin,
                    self.embedding.bounds.ymin,
                    self.embedding.bounds.xmax,
                    self.embedding.bounds.ymax,
                ]
            ),
            embedding_order=np.array([self.embedding.order]),
        )
        payload.update(self.store.column_arrays())
        return payload

    def save(self, path) -> None:
        """Serialize the index (and embedding) to disk.

        Two layouts, chosen by the path: a ``.npz`` suffix writes the
        historical compressed archive; any other path is treated as a
        *directory* and the same arrays land as one ``.npy`` file each.
        Only the directory layout supports ``load(..., mmap=True)``
        (``.npz`` members cannot be memory-mapped).

        Both layouts are crash-safe: the write is staged (tmp file /
        tmp sibling directory) and published with ``os.replace``, and
        the directory layout additionally records a checksum
        ``MANIFEST.json`` (written last) that :meth:`load` verifies --
        an interrupted save can never leave a silently-corrupt index
        in place.
        """
        payload = self._save_payload()
        if str(path).endswith(".npz"):
            atomic_save_npz(path, **payload)
            return
        with atomic_directory(path) as tmp:
            for name, array in payload.items():
                np.save(tmp / f"{name}.npy", array)

    @classmethod
    def load(cls, path, network: SpatialNetwork, mmap: bool = False) -> SILCIndex:
        """Restore an index saved by :meth:`save` for the same network.

        ``mmap=True`` memory-maps the block columns of a
        directory-layout save instead of reading them: cold start then
        touches O(num_vertices) bytes (sizes and vertex codes) and the
        OS pages column data in on demand as queries probe it.  The
        mmap path skips the store-wide invariant validation an
        in-memory load performs (validating would fault in every
        column page, defeating the point); trust it only with files
        this package wrote.

        Integrity is verified *before any query can run*: a
        directory-layout save's ``MANIFEST.json`` is checked against
        the files on disk -- sizes always (an O(1) stat per file, so
        the mmap cold-start contract holds while still catching
        truncation), checksums too on eager loads -- and any
        missing/truncated/unparseable column raises
        :class:`~repro.errors.CorruptIndexError` naming the column.
        Directories saved before manifests existed load as before.
        """
        directory = Path(path)
        if directory.is_dir():
            mode = "r" if mmap else None
            verify_manifest(directory, deep=not mmap)

            def get(name: str) -> np.ndarray:
                return checked_load(directory, f"{name}.npy", mmap_mode=mode)

            return cls._from_arrays(network, get, validate=not mmap)
        if mmap:
            raise ValueError(
                "mmap=True requires a directory-layout save "
                "(save to a path without the .npz suffix); "
                f"{path!r} is a .npz archive"
            )
        try:
            data = np.load(path)
        except FileNotFoundError:
            raise
        except (ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
            raise CorruptIndexError(
                f"corrupt index archive {path}: {exc}"
            ) from exc
        with data:
            try:
                return cls._from_arrays(network, data.__getitem__, validate=True)
            except KeyError as exc:
                raise CorruptIndexError(
                    f"corrupt index archive {path}: missing member {exc}",
                    column=str(exc).strip("'\""),
                ) from exc

    @classmethod
    def _from_arrays(
        cls, network: SpatialNetwork, get, validate: bool
    ) -> SILCIndex:
        store = FlatStore.from_columns(
            np.asarray(get("sizes"), dtype=np.int64),
            {name: get(name) for name in COLUMNS},
        )
        if validate:
            store.validate()
        b = get("embedding_bounds")
        embedding = GridEmbedding(
            Rect(float(b[0]), float(b[1]), float(b[2]), float(b[3])),
            int(get("embedding_order")[0]),
        )
        return cls(network, embedding, np.asarray(get("vertex_codes")), store)

    # ------------------------------------------------------------------
    # Sharded serialization (the process-parallel serving layout)
    # ------------------------------------------------------------------
    def save_sharded(self, path, shard_map) -> None:
        """Write the index as per-shard slices of the flat store.

        The directory gets the shared metadata (vertex codes,
        embedding, global per-vertex sizes, and the shard map's
        boundaries/assignment) plus one ``shard_NNNN/`` subdirectory
        per shard (see :meth:`FlatStore.save_shard`).  Shard worker
        processes each :meth:`load_sharded` the *same* directory with
        a different ``primary``, so every column page on disk is
        mapped -- and cached by the OS -- once, no matter how many
        workers serve it.

        Crash safety is per layer: every ``shard_NNNN/`` slice is
        staged and published atomically with its own manifest (see
        :meth:`FlatStore.save_shard`), and the shared metadata files
        get the directory's top-level manifest, written last -- so a
        save interrupted at any point is detectable at load time
        rather than silently inconsistent.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_save_npy(directory / "vertex_codes.npy", self.vertex_codes)
        atomic_save_npy(
            directory / "embedding_bounds.npy",
            np.array(
                [
                    self.embedding.bounds.xmin,
                    self.embedding.bounds.ymin,
                    self.embedding.bounds.xmax,
                    self.embedding.bounds.ymax,
                ]
            ),
        )
        atomic_save_npy(
            directory / "embedding_order.npy", np.array([self.embedding.order])
        )
        atomic_save_npy(directory / "sizes.npy", self.store.sizes.astype(np.int64))
        atomic_save_npy(directory / "shard_boundaries.npy", shard_map.boundaries)
        atomic_save_npy(directory / "shard_assign.npy", shard_map.assign)
        for shard in range(shard_map.num_shards):
            self.store.save_shard(directory, shard, shard_map.vertices(shard))
        # The top-level manifest (metadata files only; each shard
        # subdirectory carries its own) goes last: its presence means
        # the whole sharded save completed.
        write_manifest(directory)

    @classmethod
    def load_sharded(
        cls,
        path,
        network: SpatialNetwork,
        primary: int | None = None,
        mmap: bool = True,
    ) -> SILCIndex:
        """Restore a :meth:`save_sharded` index with full coverage.

        Every shard's tables are available (queries routinely walk
        shortest paths across shard boundaries), stitched into a
        :class:`~repro.silc.store.ShardedFlatStore`.  ``primary``
        names the one shard loaded eagerly into private memory -- the
        calling worker's resident hot set; all other shards are
        memory-mapped (``mmap=True``, the default) so their pages
        fault in on demand and are shared across worker processes by
        the OS page cache.  ``mmap=False`` loads everything eagerly
        and validates the store invariants, like a plain
        :meth:`load`.

        The top-level manifest (shared metadata) and each shard's own
        manifest are verified before anything is served -- sizes
        always, checksums on eager loads -- so a truncated or
        corrupted slice raises
        :class:`~repro.errors.CorruptIndexError` naming the column
        instead of failing mid-query.
        """
        directory = Path(path)
        verify_manifest(directory, deep=not mmap)
        assign = checked_load(directory, "shard_assign.npy")
        num_shards = int(
            checked_load(directory, "shard_boundaries.npy").size - 1
        )
        if primary is not None and not (0 <= primary < num_shards):
            raise ValueError(
                f"primary shard {primary} out of range ({num_shards} shards)"
            )
        shards: list[FlatStore] = []
        local_index = np.zeros(assign.size, dtype=np.int64)
        for shard in range(num_shards):
            vertices, fragment = FlatStore.load_shard(
                directory, shard, mmap=mmap and shard != primary
            )
            local_index[vertices] = np.arange(vertices.size, dtype=np.int64)
            shards.append(fragment)
        store = ShardedFlatStore(shards, assign, local_index)
        if not mmap:
            store.validate()
        b = checked_load(directory, "embedding_bounds.npy")
        embedding = GridEmbedding(
            Rect(float(b[0]), float(b[1]), float(b[2]), float(b[3])),
            int(checked_load(directory, "embedding_order.npy")[0]),
        )
        return cls(
            network, embedding, checked_load(directory, "vertex_codes.npy"), store
        )
