"""The SILC index: one shortest-path quadtree per network vertex.

This is the paper's primary data structure.  Building it runs one
single-source shortest-path computation per vertex (the O(N^1.5)-space
precompute); querying it answers, in far less than a Dijkstra search:

* ``next_hop(u, v)``        -- first link of the shortest path (one
  block-table point location),
* ``path(u, v)``            -- the whole path in size-of-path steps,
* ``distance(u, v)``        -- exact network distance,
* ``interval_from(u, v)``   -- a ``[lambda_min*d_E, lambda_max*d_E]``
  distance interval without touching the path,
* ``refinable(u, v)``       -- a progressively refinable distance,
* ``block_lower_bound``     -- network-distance lower bound from a
  vertex to an object-index block (for best-first kNN).

An optional :class:`~repro.storage.StorageSimulator` can be attached,
after which every block-table probe is accounted as a page access
through the simulated LRU buffer -- the paper's I/O cost model.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.geometry.grid import GridEmbedding
from repro.geometry.morton import block_cells
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.allpairs import materialize_sources
from repro.network.errors import PathNotFound
from repro.network.graph import SpatialNetwork
from repro.quadtree.blocks import BlockTable
from repro.silc.coloring import shortest_path_maps
from repro.silc.parallel import parallel_block_tables, resolve_workers
from repro.silc.intervals import DistanceInterval
from repro.silc.refinement import RefinableDistance, RefinementCounter
from repro.silc.sp_quadtree import SPQuadtreeBuilder, choose_grid_order
from repro.storage.simulator import StorageSimulator

#: Relative padding applied to interval bounds so that float round-off
#: in the ratio arithmetic can never expel the true distance.
_REL_PAD = 1e-11


class SILCIndex:
    """Per-vertex shortest-path quadtrees over one spatial network."""

    def __init__(
        self,
        network: SpatialNetwork,
        embedding: GridEmbedding,
        vertex_codes: np.ndarray,
        tables: list[BlockTable],
    ) -> None:
        if len(tables) != network.num_vertices:
            raise ValueError(
                f"{len(tables)} tables for {network.num_vertices} vertices"
            )
        self.network = network
        self.embedding = embedding
        self.vertex_codes = np.asarray(vertex_codes, dtype=np.int64)
        self.tables = tables
        self.storage: StorageSimulator | None = None
        # Native-type mirrors for the query hot path: indexing numpy
        # scalars costs ~10x a list lookup, and interval_from runs once
        # per refinement step.
        self._xf: list[float] = network.xs.tolist()
        self._yf: list[float] = network.ys.tolist()
        self._vcodes: list[int] = self.vertex_codes.tolist()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: SpatialNetwork,
        chunk_size: int = 128,
        sources: Sequence[int] | None = None,
        progress: Callable[[int, int], None] | None = None,
        workers: int | None = None,
    ) -> "SILCIndex":
        """Run the full SILC precompute for a network.

        ``sources`` restricts the build to a subset of vertices (used
        by the localized-rebuild example) and may be any iterable,
        including a generator; queries may then only start from built
        vertices.  ``progress`` receives ``(done, total)`` after each
        source (after each chunk in parallel mode).  ``workers`` fans
        the per-source builds across a process pool: ``None``/``1``
        builds serially, ``0`` uses every available CPU, and any other
        value is the pool size.  The parallel result is byte-identical
        to the serial one.
        """
        network.require_strongly_connected()
        embedding, codes = choose_grid_order(network)
        source_list = materialize_sources(network, sources)
        total = network.num_vertices if source_list is None else len(source_list)
        tables: list[BlockTable | None] = [None] * network.num_vertices
        n_workers = resolve_workers(workers)
        if n_workers > 1 and total > 1:
            built = parallel_block_tables(
                network,
                embedding,
                codes,
                source_list,
                workers=n_workers,
                chunk_size=chunk_size,
                progress=progress,
            )
            for source, table in built.items():
                tables[source] = table
        else:
            builder = SPQuadtreeBuilder(network, embedding, codes)
            done = 0
            for spm in shortest_path_maps(
                network, sources=source_list, chunk_size=chunk_size
            ):
                tables[spm.source] = builder.build(spm.colors, spm.ratios)
                done += 1
                if progress is not None:
                    progress(done, total)
        empty = BlockTable(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int32),
            np.empty(0),
            np.empty(0),
        )
        return cls(network, embedding, codes, [t if t is not None else empty for t in tables])

    # ------------------------------------------------------------------
    # Storage attachment
    # ------------------------------------------------------------------
    def attach_storage(self, simulator: StorageSimulator) -> None:
        """Route every block-table probe through a page-cache simulator."""
        expected = [len(t) for t in self.tables]
        if simulator.layout.table_sizes != expected:
            raise ValueError("simulator layout does not match the index tables")
        self.storage = simulator

    def detach_storage(self) -> None:
        self.storage = None

    def make_storage(
        self, cache_fraction: float = 0.05, miss_latency: float | None = None
    ) -> StorageSimulator:
        """A simulator sized for this index (paper default: 5% cache)."""
        kwargs = {} if miss_latency is None else {"miss_latency": miss_latency}
        return StorageSimulator.for_table_sizes(
            [len(t) for t in self.tables], cache_fraction=cache_fraction, **kwargs
        )

    # ------------------------------------------------------------------
    # Core probes
    # ------------------------------------------------------------------
    def _lookup(self, source: int, target: int) -> tuple[int, float, float]:
        """Fused probe: (first_hop, lam_min, lam_max) with page accounting."""
        hit = self.tables[source].lookup(self._vcodes[target])
        if hit is None:
            raise PathNotFound(source, target)
        color, lam_lo, lam_hi, row = hit
        if self.storage is not None:
            self.storage.touch(source, row)
        return color, lam_lo, lam_hi

    def next_hop(self, source: int, target: int) -> int:
        """First vertex after ``source`` on the shortest path to target."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return source
        return self._lookup(source, target)[0]

    def hop_and_interval(
        self, source: int, target: int
    ) -> tuple[int, float, float]:
        """One probe returning the next hop and the raw interval bounds.

        The refinement engine's hot path: a single binary search yields
        both the first hop and the ``[lo, hi]`` distance bounds.
        """
        if source == target:
            return source, 0.0, 0.0
        color, lam_lo, lam_hi = self._lookup(source, target)
        d_e = math.hypot(
            self._xf[source] - self._xf[target], self._yf[source] - self._yf[target]
        )
        return (
            color,
            lam_lo * d_e * (1.0 - _REL_PAD),
            lam_hi * d_e * (1.0 + _REL_PAD),
        )

    def interval_from(self, source: int, target: int) -> DistanceInterval:
        """Distance interval from the lambda annotations (one probe)."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return DistanceInterval.exact(0.0)
        _, lo, hi = self.hop_and_interval(source, target)
        return DistanceInterval(lo, hi)

    def refinable(
        self,
        source: int,
        target: int,
        counter: RefinementCounter | None = None,
        offset: float = 0.0,
    ) -> RefinableDistance:
        """A progressively refinable distance from source to target."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        return RefinableDistance(self, source, target, counter=counter, offset=offset)

    # ------------------------------------------------------------------
    # Paths and exact distances
    # ------------------------------------------------------------------
    def path(self, source: int, target: int) -> list[int]:
        """The shortest path, retrieved in size-of-path steps (p.17)."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        path = [source]
        guard = self.network.num_vertices
        while path[-1] != target:
            path.append(self.next_hop(path[-1], target))
            if len(path) > guard:
                raise RuntimeError(
                    f"path {source}->{target} exceeded {guard} vertices; "
                    "the index next-hop data is inconsistent"
                )
        return path

    def distance(self, source: int, target: int) -> float:
        """Exact network distance (full refinement of the path)."""
        return self.refinable(source, target).refine_fully()

    # ------------------------------------------------------------------
    # Block-level lower bounds (for the object-index traversal)
    # ------------------------------------------------------------------
    def block_lower_bound(self, source: int, code: int, level: int) -> float:
        """Lower bound on the network distance from ``source`` to any
        *vertex* inside the Morton block ``(code, level)``.

        Implements the paper's DISTANCE_INTERVAL(object, Region)
        primitive: intersect the block with the source's shortest-path
        quadtree and take the best ``lambda_min * MINDIST`` over the
        overlapping pieces.  Returns ``inf`` when the block contains no
        network vertex at all.
        """
        self.network.check_vertex(source)
        table = self.tables[source]
        lo_code = code
        hi_code = code + block_cells(level)
        rows = table.overlapping(lo_code, hi_code)
        if len(rows) == 0:
            return float("inf")
        if self.storage is not None:
            self.storage.touch_range(source, rows.start, rows.stop)
        p = Point(float(self.network.xs[source]), float(self.network.ys[source]))
        query_rect = self.embedding.block_world_rect(code, level)
        best = float("inf")
        for row in rows:
            piece = self._intersection_rect(table, row, lo_code, hi_code, query_rect)
            cand = float(table.lam_min[row]) * piece.min_distance_to_point(p)
            if cand < best:
                best = cand
        return best * (1.0 - _REL_PAD)

    def _intersection_rect(
        self, table: BlockTable, row: int, lo_code: int, hi_code: int, query_rect: Rect
    ) -> Rect:
        """World rectangle of (table block) intersected with the query block.

        Aligned Morton blocks either nest or are disjoint, so the
        intersection is simply the smaller block.
        """
        b_code = int(table.codes[row])
        b_cells = block_cells(int(table.levels[row]))
        if lo_code <= b_code and b_code + b_cells <= hi_code:
            return self.embedding.block_world_rect(b_code, int(table.levels[row]))
        return query_rect

    # ------------------------------------------------------------------
    # Statistics / serialization
    # ------------------------------------------------------------------
    def total_blocks(self) -> int:
        """Total Morton blocks -- the paper's storage unit (p.16)."""
        return sum(len(t) for t in self.tables)

    def blocks_per_vertex(self) -> np.ndarray:
        return np.array([len(t) for t in self.tables])

    def storage_bytes(self, record_bytes: int = 16) -> int:
        return self.total_blocks() * record_bytes

    def iter_tables(self) -> Iterator[tuple[int, BlockTable]]:
        yield from enumerate(self.tables)

    def save(self, path) -> None:
        """Serialize the index (and embedding) to an ``.npz`` archive."""
        sizes = np.array([len(t) for t in self.tables], dtype=np.int64)
        np.savez_compressed(
            path,
            sizes=sizes,
            codes=np.concatenate([t.codes for t in self.tables]) if sizes.sum() else np.empty(0, np.int64),
            levels=np.concatenate([t.levels for t in self.tables]) if sizes.sum() else np.empty(0, np.int8),
            colors=np.concatenate([t.colors for t in self.tables]) if sizes.sum() else np.empty(0, np.int32),
            lam_min=np.concatenate([t.lam_min for t in self.tables]) if sizes.sum() else np.empty(0),
            lam_max=np.concatenate([t.lam_max for t in self.tables]) if sizes.sum() else np.empty(0),
            vertex_codes=self.vertex_codes,
            embedding_bounds=np.array(
                [
                    self.embedding.bounds.xmin,
                    self.embedding.bounds.ymin,
                    self.embedding.bounds.xmax,
                    self.embedding.bounds.ymax,
                ]
            ),
            embedding_order=np.array([self.embedding.order]),
        )

    @classmethod
    def load(cls, path, network: SpatialNetwork) -> "SILCIndex":
        """Restore an index saved by :meth:`save` for the same network."""
        with np.load(path) as data:
            sizes = data["sizes"]
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            tables = []
            for i in range(sizes.size):
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                tables.append(
                    BlockTable(
                        data["codes"][lo:hi],
                        data["levels"][lo:hi],
                        data["colors"][lo:hi],
                        data["lam_min"][lo:hi],
                        data["lam_max"][lo:hi],
                    )
                )
            b = data["embedding_bounds"]
            embedding = GridEmbedding(
                Rect(float(b[0]), float(b[1]), float(b[2]), float(b[3])),
                int(data["embedding_order"][0]),
            )
            return cls(network, embedding, data["vertex_codes"], tables)
