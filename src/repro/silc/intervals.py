"""Network-distance intervals.

The SILC framework never has to produce an exact network distance to
answer a query: it works with *intervals* ``[delta_minus, delta_plus]``
guaranteed to contain the true distance, refining them only while the
query outcome is ambiguous (the "Is Munich closer to Mainz than
Bremen?" example, p.18).  This module is the small algebra those
intervals obey.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DistanceInterval:
    """A closed interval certain to contain a network distance."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"inverted interval [{self.lo}, {self.hi}]")
        if self.lo < 0:
            raise ValueError(f"negative distance bound {self.lo}")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def intersects(self, other: DistanceInterval) -> bool:
        """The paper's *collision* test between two intervals."""
        return self.lo <= other.hi and other.lo <= self.hi

    def strictly_before(self, other: DistanceInterval) -> bool:
        """Whether every value here is <= every value of ``other``.

        When true, the ordering between the two underlying distances
        is already decided and no refinement is needed.
        """
        return self.hi <= other.lo

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def shifted(self, offset: float) -> DistanceInterval:
        """The interval of ``offset + d`` for ``d`` in this interval."""
        if offset < 0 and self.lo + offset < 0:
            return DistanceInterval(0.0, max(self.hi + offset, 0.0))
        return DistanceInterval(self.lo + offset, self.hi + offset)

    def intersection(self, other: DistanceInterval) -> DistanceInterval:
        """Tightest interval consistent with both operands.

        Both operands must contain the true distance, so their overlap
        does too; refinement uses this to enforce monotonicity in the
        presence of floating-point jitter.
        """
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            # Disjoint inputs can only arise from accumulated float
            # error; collapse to the midpoint of the gap.
            mid = (lo + hi) / 2.0
            return DistanceInterval(mid, mid)
        return DistanceInterval(lo, hi)

    def union_min(self, other: DistanceInterval) -> DistanceInterval:
        """Interval of ``min(a, b)`` for ``a`` here and ``b`` in other.

        Needed for objects reachable through either endpoint of an
        edge: the true distance is the minimum over the alternatives.
        """
        return DistanceInterval(min(self.lo, other.lo), min(self.hi, other.hi))

    @staticmethod
    def exact(value: float) -> DistanceInterval:
        return DistanceInterval(value, value)

    @staticmethod
    def unbounded(lo: float = 0.0) -> DistanceInterval:
        return DistanceInterval(lo, math.inf)
