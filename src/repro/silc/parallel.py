"""Parallel SILC construction: per-source builds fanned across processes.

The paper calls the precompute "mostly a one-time effort" that is
embarrassingly parallel (p.27): each source's shortest-path map and
quadtree depend only on the network, the shared grid embedding, and
that one source.  This module exploits exactly that independence.  A
``multiprocessing`` pool is primed once per worker with the network
and the embedding; each task is a *chunk* of source vertices, for
which the worker runs the chunked scipy Dijkstra and compresses each
coloring into Morton blocks.  The parent slots the resulting tables
by source id, so the assembled index is **byte-identical** to a
serial build no matter in which order chunks complete.

Two transports move the data:

``shm`` (the default where ``multiprocessing.shared_memory`` works)
    The network CSR, coordinates and vertex codes are published
    *once* in a shared-memory segment; workers rebuild the network
    from those buffers with :meth:`SpatialNetwork.from_csr` -- no
    object-graph pickle per worker.  Each finished chunk's block
    columns are written into a fresh shared-memory segment and only
    the segment name plus per-source sizes travel back through the
    pool's result pickle, so the per-chunk pickle payload is a few
    hundred bytes regardless of ``chunk_size``.

``pickle`` (fallback, and the pre-flat-store behavior)
    Workers ship the five serialized column arrays back through the
    result pickle.

:class:`BuildTransferStats` counts both channels so benchmarks can
assert that the shm transport moves ~zero bytes through pickle.

Used by :meth:`repro.silc.index.SILCIndex.build` and
:meth:`repro.silc.proximal.ProximalSILCIndex.build` whenever
``workers`` asks for more than one process.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import pickle
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
import os
from collections.abc import Callable, Sequence

import numpy as np
from scipy import sparse

from repro.geometry.grid import GridEmbedding
from repro.network.graph import SpatialNetwork
from repro.quadtree.blocks import BlockTable
from repro.silc.coloring import shortest_path_maps
from repro.silc.sp_quadtree import SPQuadtreeBuilder
from repro.silc.store import COLUMNS

#: Per-worker state installed by the pool initializers.  Module-level
#: so it survives between tasks without re-pickling per chunk.
_BUILDER: SPQuadtreeBuilder | None = None
_LIMIT: float = np.inf
_SHM_IN: shared_memory.SharedMemory | None = None

TRANSPORTS = ("shm", "pickle")


@dataclass
class BuildTransferStats:
    """Bytes moved per transport channel during one parallel build.

    ``result_pickle_bytes`` re-measures each chunk's return value with
    ``pickle.dumps`` -- the same serialization the pool applies -- so
    the two transports are directly comparable.  ``shared_bytes``
    counts column bytes written to (input segment) and read from
    (per-chunk result segments) shared memory.
    """

    transport: str = "pickle"
    chunks: int = 0
    result_pickle_bytes: int = 0
    shared_bytes: int = 0
    extras: dict = field(default_factory=dict)

    def record_result(self, payload: object) -> None:
        """Measure a (small) shm-transport return by re-pickling it."""
        self.chunks += 1
        self.result_pickle_bytes += len(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def record_result_estimate(self, payload: list) -> None:
        """Estimate a pickle-transport return from its array bytes.

        Re-pickling the full columns just to count them would double
        the serialization cost of exactly the transport where it is
        already the bottleneck; the column ``nbytes`` (plus a small
        per-array envelope) is accurate to within pickle framing.
        """
        self.chunks += 1
        for entry in payload:
            self.result_pickle_bytes += 64  # tuple + source envelope
            for arr in entry[1:]:
                self.result_pickle_bytes += arr.nbytes + 128


#: Transfer accounting of the most recent :func:`parallel_block_tables`
#: call in this process (diagnostics and benchmark assertions).
last_build_stats: BuildTransferStats | None = None


def available_workers() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` knob to a concrete process count.

    ``None`` and ``1`` mean serial; ``0`` means one worker per
    available CPU; any other positive value is taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return available_workers()
    return workers


def shared_memory_available() -> bool:
    """Whether the shm transport's segment lifetime contract holds.

    The result-segment handoff relies on POSIX unlink semantics: a
    worker closes its handle and the data survives until the parent
    unlinks.  On Windows a named section dies with its last open
    handle, so the transport reports unavailable there and builds
    fall back to pickle.
    """
    if os.name != "posix":  # pragma: no cover - POSIX-only contract
        return False
    try:
        seg = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm
        return False
    _close_shm(seg, unlink=True)
    return True


def _close_shm(seg: shared_memory.SharedMemory, unlink: bool) -> None:
    """Close a handle; with ``unlink=True`` also free the segment.

    Resource-tracker bookkeeping rides on ``unlink()`` (it both
    removes the segment and unregisters the name).  Parent and pool
    workers share one tracker process whose cache of names is a *set*,
    so each segment must be unlinked/unregistered exactly once -- by
    the parent, which owns every segment's lifetime.  Workers only
    ever ``close()`` their handles.
    """
    seg.close()
    if unlink:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            # Suppressed: already unregistered (or the tracker is gone
            # at interpreter shutdown); nothing left to clean up.
            with contextlib.suppress(KeyError, OSError):  # pragma: no cover
                resource_tracker.unregister(
                    getattr(seg, "_name", seg.name), "shared_memory"
                )


# ----------------------------------------------------------------------
# Array bundles in one shared-memory segment
# ----------------------------------------------------------------------

def _pack_arrays(
    arrays: dict[str, np.ndarray],
) -> tuple[shared_memory.SharedMemory, tuple]:
    """Copy named arrays into one fresh segment.

    Returns the open segment plus a picklable descriptor
    ``(segment_name, [(key, dtype_str, length, offset), ...])`` from
    which :func:`_unpack_arrays` rebuilds zero-copy views.
    """
    layout = []
    offset = 0
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        layout.append((key, arr.dtype.str, arr.size, offset))
        offset += arr.nbytes
    seg = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (_key, dtype, size, off), arr in zip(layout, arrays.values(), strict=True):
        dst = np.ndarray(size, dtype=dtype, buffer=seg.buf, offset=off)
        dst[:] = np.ascontiguousarray(arr).ravel()
    return seg, (seg.name, layout)


def _unpack_arrays(
    descriptor: tuple,
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach a segment written by :func:`_pack_arrays`.

    The returned arrays are views into the segment's buffer: the
    caller must keep the segment object alive for as long as it uses
    them (and close it afterwards).
    """
    name, layout = descriptor
    seg = shared_memory.SharedMemory(name=name)
    arrays = {
        key: np.ndarray(size, dtype=dtype, buffer=seg.buf, offset=off)
        for key, dtype, size, off in layout
    }
    return seg, arrays


def _network_descriptor(
    network: SpatialNetwork, codes: np.ndarray
) -> tuple[shared_memory.SharedMemory, tuple, int]:
    """Publish the network CSR, coordinates and vertex codes once."""
    csr = network.to_csr()
    seg, descriptor = _pack_arrays(
        {
            "xs": network.xs,
            "ys": network.ys,
            "indptr": csr.indptr,
            "indices": csr.indices,
            "data": csr.data,
            "codes": np.asarray(codes, dtype=np.int64),
        }
    )
    return seg, descriptor, seg.size


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _init_worker_pickle(
    network: SpatialNetwork,
    embedding: GridEmbedding,
    codes: np.ndarray,
    limit: float,
) -> None:
    global _BUILDER, _LIMIT
    _BUILDER = SPQuadtreeBuilder(network, embedding, codes)
    _LIMIT = limit


def _init_worker_shm(
    descriptor: tuple,
    embedding: GridEmbedding,
    limit: float,
) -> None:
    global _BUILDER, _LIMIT, _SHM_IN
    seg, arrays = _unpack_arrays(descriptor)
    # The worker never unlinks or unregisters the input segment (the
    # parent owns both); it only keeps the handle open for its own
    # lifetime, because the rebuilt network aliases the buffer.
    _SHM_IN = seg
    n = arrays["xs"].size
    csr = sparse.csr_matrix(
        (arrays["data"], arrays["indices"], arrays["indptr"]),
        shape=(n, n),
        copy=False,
    )
    network = SpatialNetwork.from_csr(arrays["xs"], arrays["ys"], csr)
    _BUILDER = SPQuadtreeBuilder(network, embedding, arrays["codes"])
    _LIMIT = limit


def _chunk_tables(chunk: list[int]) -> list[tuple[int, BlockTable]]:
    builder = _BUILDER
    assert builder is not None, "worker used before initialization"
    out = []
    for spm in shortest_path_maps(
        builder.network, sources=chunk, chunk_size=len(chunk), limit=_LIMIT
    ):
        out.append((spm.source, builder.build(spm.colors, spm.ratios)))
    return out


def _build_chunk_pickle(
    chunk: list[int],
) -> list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Legacy transport: ship every column back through pickle."""
    return [
        (source, t.codes, t.levels, t.colors, t.lam_min, t.lam_max)
        for source, t in _chunk_tables(chunk)
    ]


def _build_chunk_shm(chunk: list[int]) -> tuple:
    """Shm transport: columns into a fresh segment, names back.

    Returns ``(descriptor, sources, sizes)`` where ``descriptor`` is
    ``None`` for an all-empty chunk.  The worker closes its handle
    right away (the data survives until the parent unlinks); the
    parent owns the unlink.
    """
    built = _chunk_tables(chunk)
    sources = [source for source, _ in built]
    sizes = [len(t) for _, t in built]
    if sum(sizes) == 0:
        return None, sources, sizes
    columns = {
        name: np.concatenate([getattr(t, name) for _, t in built])
        for name in COLUMNS
    }
    # Close the handle but leave the segment linked (and registered --
    # the parent unregisters once when it unlinks): the data must
    # survive until the parent has copied it out.
    seg, descriptor = _pack_arrays(columns)
    seg.close()
    return descriptor, sources, sizes


def _receive_chunk_shm(
    payload: tuple,
) -> list[tuple[int, BlockTable]]:
    """Parent side: copy a chunk's columns out of shared memory."""
    descriptor, sources, sizes = payload
    if descriptor is None:
        return [
            (source, BlockTable(*(np.empty(0) for _ in COLUMNS)))
            for source in sources
        ]
    seg, arrays = _unpack_arrays(descriptor)
    try:
        columns = {name: np.array(arrays[name], copy=True) for name in COLUMNS}
    finally:
        _close_shm(seg, unlink=True)
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    out = []
    for i, source in enumerate(sources):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        out.append(
            (
                source,
                BlockTable.view(*(columns[name][lo:hi] for name in COLUMNS)),
            )
        )
    return out


# ----------------------------------------------------------------------
# Parent orchestration
# ----------------------------------------------------------------------

def parallel_block_tables(
    network: SpatialNetwork,
    embedding: GridEmbedding,
    codes: np.ndarray,
    sources: Sequence[int] | None,
    workers: int,
    chunk_size: int = 128,
    progress: Callable[[int, int], None] | None = None,
    limit: float = np.inf,
    transport: str | None = None,
) -> dict[int, BlockTable]:
    """Build the shortest-path quadtrees of many sources in parallel.

    Returns ``{source: BlockTable}`` for every requested source; the
    caller assembles them into the flat store.  ``progress`` receives
    ``(done, total)`` as chunks complete (sources may finish out of
    order; counts are monotone).  ``transport`` picks how results (and
    in shm mode, the network) move between processes: ``"shm"``,
    ``"pickle"``, or ``None`` for shm-when-available.  Transfer
    accounting for the call lands in :data:`last_build_stats`.

    If the pool iteration aborts mid-build (worker crash, interrupt),
    result segments of chunks that finished but were never consumed
    stay allocated until interpreter exit, where the multiprocessing
    resource tracker reclaims them (with a warning); the input
    segment is always unlinked here.
    """
    global last_build_stats
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if transport is not None and transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if transport is None:
        transport = "shm" if shared_memory_available() else "pickle"
    elif transport == "shm" and not shared_memory_available():
        raise RuntimeError("shared memory is not available on this system")
    source_list = (
        list(range(network.num_vertices)) if sources is None else list(sources)
    )
    total = len(source_list)
    tables: dict[int, BlockTable] = {}
    stats = BuildTransferStats(transport=transport)
    last_build_stats = stats
    if total == 0:
        return tables
    # Shrink oversized chunks so every worker gets at least one task.
    chunk_size = min(chunk_size, max(1, -(-total // workers)))
    chunks = [
        source_list[i : i + chunk_size] for i in range(0, total, chunk_size)
    ]
    workers = min(workers, len(chunks))
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)

    seg_in: shared_memory.SharedMemory | None = None
    if transport == "shm":
        seg_in, descriptor, in_bytes = _network_descriptor(network, codes)
        stats.shared_bytes += in_bytes
        stats.extras["network_shared_bytes"] = in_bytes
        initializer, initargs = _init_worker_shm, (descriptor, embedding, limit)
        task = _build_chunk_shm
    else:
        initializer = _init_worker_pickle
        initargs = (network, embedding, codes, limit)
        task = _build_chunk_pickle

    done = 0
    try:
        with ctx.Pool(
            processes=workers, initializer=initializer, initargs=initargs
        ) as pool:
            for payload in pool.imap_unordered(task, chunks):
                if transport == "shm":
                    stats.record_result(payload)
                    received = _receive_chunk_shm(payload)
                    stats.shared_bytes += sum(
                        t.codes.nbytes
                        + t.levels.nbytes
                        + t.colors.nbytes
                        + t.lam_min.nbytes
                        + t.lam_max.nbytes
                        for _, t in received
                    )
                else:
                    stats.record_result_estimate(payload)
                    received = [
                        (source, BlockTable(bcodes, levels, colors, lam_min, lam_max))
                        for source, bcodes, levels, colors, lam_min, lam_max in payload
                    ]
                for source, table in received:
                    tables[source] = table
                done += len(received)
                if progress is not None:
                    progress(done, total)
    finally:
        if seg_in is not None:
            _close_shm(seg_in, unlink=True)
    return tables
