"""Parallel SILC construction: per-source builds fanned across processes.

The paper calls the precompute "mostly a one-time effort" that is
embarrassingly parallel (p.27): each source's shortest-path map and
quadtree depend only on the network, the shared grid embedding, and
that one source.  This module exploits exactly that independence.  A
``multiprocessing`` pool is primed once per worker with the network
and the embedding (the pool initializer); each task is a *chunk* of
source vertices, for which the worker runs the chunked scipy Dijkstra,
compresses each coloring into Morton blocks, and ships back the five
serialized :class:`~repro.quadtree.blocks.BlockTable` columns as plain
numpy arrays.  The parent rebuilds the tables and slots them by source
id, so the assembled index is **byte-identical** to a serial build no
matter in which order chunks complete.

Used by :meth:`repro.silc.index.SILCIndex.build` and
:meth:`repro.silc.proximal.ProximalSILCIndex.build` whenever
``workers`` asks for more than one process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Sequence

import numpy as np

from repro.geometry.grid import GridEmbedding
from repro.network.graph import SpatialNetwork
from repro.quadtree.blocks import BlockTable
from repro.silc.coloring import shortest_path_maps
from repro.silc.sp_quadtree import SPQuadtreeBuilder

#: Per-worker state installed by :func:`_init_worker`.  Module-level so
#: it survives between tasks without re-pickling the network per chunk.
_BUILDER: SPQuadtreeBuilder | None = None
_LIMIT: float = np.inf


def available_workers() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` knob to a concrete process count.

    ``None`` and ``1`` mean serial; ``0`` means one worker per
    available CPU; any other positive value is taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return available_workers()
    return workers


def _init_worker(
    network: SpatialNetwork,
    embedding: GridEmbedding,
    codes: np.ndarray,
    limit: float,
) -> None:
    global _BUILDER, _LIMIT
    _BUILDER = SPQuadtreeBuilder(network, embedding, codes)
    _LIMIT = limit


def _build_chunk(
    chunk: list[int],
) -> list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Worker task: block-table columns for one chunk of sources."""
    builder = _BUILDER
    assert builder is not None, "worker used before initialization"
    out = []
    for spm in shortest_path_maps(
        builder.network, sources=chunk, chunk_size=len(chunk), limit=_LIMIT
    ):
        table = builder.build(spm.colors, spm.ratios)
        out.append(
            (spm.source, table.codes, table.levels, table.colors,
             table.lam_min, table.lam_max)
        )
    return out


def parallel_block_tables(
    network: SpatialNetwork,
    embedding: GridEmbedding,
    codes: np.ndarray,
    sources: Sequence[int] | None,
    workers: int,
    chunk_size: int = 128,
    progress: Callable[[int, int], None] | None = None,
    limit: float = np.inf,
) -> dict[int, BlockTable]:
    """Build the shortest-path quadtrees of many sources in parallel.

    Returns ``{source: BlockTable}`` for every requested source; the
    caller assembles them into the per-vertex table list.  ``progress``
    receives ``(done, total)`` as chunks complete (sources may finish
    out of order; counts are monotone).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    source_list = (
        list(range(network.num_vertices)) if sources is None else list(sources)
    )
    total = len(source_list)
    tables: dict[int, BlockTable] = {}
    if total == 0:
        return tables
    # Shrink oversized chunks so every worker gets at least one task.
    chunk_size = min(chunk_size, max(1, -(-total // workers)))
    chunks = [
        source_list[i : i + chunk_size] for i in range(0, total, chunk_size)
    ]
    workers = min(workers, len(chunks))
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    done = 0
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(network, embedding, codes, limit),
    ) as pool:
        for chunk_result in pool.imap_unordered(_build_chunk, chunks):
            for source, bcodes, levels, colors, lam_min, lam_max in chunk_result:
                tables[source] = BlockTable(bcodes, levels, colors, lam_min, lam_max)
            done += len(chunk_result)
            if progress is not None:
                progress(done, total)
    return tables
