"""Path-Coherent Pairs: the paper's "beyond SILC" extension (pp.28-29).

SILC captures path coherence from *one source* to many destinations.
A Path-Coherent Pair ``(A, B, t)`` captures it between two *sets*:
every shortest path from the region ``A`` to the region ``B`` is
channeled through common structure (the dumbbell's handle), so one
stored distance interval ``[dmin, dmax]`` approximates all ``|A|*|B|``
pairwise distances within a chosen ``epsilon``.  The paper's example:
every drive from the US North-East to the North-West shares I-80W, so
millions of pairwise distances compress to O(1) storage.

The decomposition below follows the well-separated-pair analogy the
paper makes explicit: recursively pair quadtree blocks of the vertex
set, keep a pair when the spread of its pairwise network distances is
within ``epsilon``, and split the coarser block otherwise.  The result
is the epsilon-approximate **distance oracle** row of the paper's
storage table (p.11): O((1/eps)^2 n)-ish pairs, O(log n) query.

Each stored pair also records an *access vertex* ``t`` on the
representative shortest path, so an approximate path can be assembled
as ``path(a, t) + path(t, b)`` through a SILC index -- the dumbbell
structure of the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.morton import block_cells
from repro.network.allpairs import distance_matrix
from repro.network.graph import SpatialNetwork
from repro.silc.intervals import DistanceInterval
from repro.silc.sp_quadtree import choose_grid_order


@dataclass(frozen=True, slots=True)
class _Block:
    """A quadtree block over the vertex set."""

    code: int
    level: int
    lo: int  # slice into the Morton-sorted vertex order
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True, slots=True)
class PathCoherentPair:
    """One dumbbell: all of ``A x B`` within one distance interval."""

    block_a: _Block
    block_b: _Block
    dmin: float
    dmax: float
    access_vertex: int

    @property
    def interval(self) -> DistanceInterval:
        return DistanceInterval(self.dmin, self.dmax)

    @property
    def pair_count(self) -> int:
        """Number of vertex pairs this single record covers."""
        return self.block_a.size * self.block_b.size


class PCPOracle:
    """An epsilon-approximate network-distance oracle from PCPs.

    Build cost is dominated by one all-pairs distance matrix, so the
    oracle is limited to moderate networks (``max_vertices`` guard);
    it exists to reproduce the paper's storage-table rows and the
    compression behaviour of the PCP idea, not to scale.
    """

    def __init__(
        self,
        network: SpatialNetwork,
        epsilon: float,
        order: np.ndarray,
        position: np.ndarray,
        pairs: dict[tuple[int, int, int, int], PathCoherentPair],
        grid_order: int,
    ) -> None:
        self.network = network
        self.epsilon = epsilon
        self._order = order
        self._position = position
        self._pairs = pairs
        self._grid_order = grid_order
        self._sorted_codes_cache: list[int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: SpatialNetwork,
        epsilon: float = 0.25,
        max_vertices: int = 3000,
    ) -> PCPOracle:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        n = network.num_vertices
        if n > max_vertices:
            raise ValueError(
                f"PCP build needs an all-pairs matrix; refusing n={n} > "
                f"{max_vertices}"
            )
        network.require_strongly_connected()
        embedding, codes = choose_grid_order(network)
        order = np.argsort(codes)
        sorted_codes = codes[order]
        dist = distance_matrix(network)
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n)

        root = _Block(code=0, level=embedding.order, lo=0, hi=n)
        pairs: dict[tuple[int, int, int, int], PathCoherentPair] = {}

        def children(block: _Block) -> list[_Block]:
            step = block_cells(block.level - 1)
            cuts = [block.lo]
            for i in range(1, 4):
                cuts.append(
                    block.lo
                    + int(
                        np.searchsorted(
                            sorted_codes[block.lo : block.hi], block.code + i * step
                        )
                    )
                )
            cuts.append(block.hi)
            return [
                _Block(block.code + i * step, block.level - 1, cuts[i], cuts[i + 1])
                for i in range(4)
                if cuts[i + 1] > cuts[i]
            ]

        def vertices_of(block: _Block) -> np.ndarray:
            return order[block.lo : block.hi]

        def decide(a: _Block, b: _Block) -> None:
            va, vb = vertices_of(a), vertices_of(b)
            sub = dist[np.ix_(va, vb)]
            dmin = float(sub.min())
            dmax = float(sub.max())
            separated = (a.code, a.level) != (b.code, b.level) and (
                dmax <= (1.0 + epsilon) * dmin if dmin > 0 else dmax == 0.0
            )
            if separated or (a.size == 1 and b.size == 1):
                ai, bi = np.unravel_index(int(np.argmax(sub)), sub.shape)
                rep_a, rep_b = int(va[ai]), int(vb[bi])
                access = _middle_vertex(network, rep_a, rep_b)
                pairs[(a.code, a.level, b.code, b.level)] = PathCoherentPair(
                    a, b, dmin, dmax, access
                )
                return
            # Split the coarser side (deterministic, replayed at query
            # time); on ties split A.
            if a.level >= b.level and a.size > 1 or b.size == 1:
                for ca in children(a):
                    decide(ca, b)
            else:
                for cb in children(b):
                    decide(a, cb)

        decide(root, root)
        return cls(network, epsilon, order, position, pairs, embedding.order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance_interval(self, source: int, target: int) -> DistanceInterval:
        """The stored interval covering ``(source, target)``.

        Guaranteed to contain the true network distance, with
        ``dmax <= (1 + epsilon) * dmin``.  O(log n) descent.
        """
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return DistanceInterval.exact(0.0)
        pair = self._find_pair(source, target)
        return pair.interval

    def distance(self, source: int, target: int) -> float:
        """The epsilon-approximate network distance (interval midpoint)."""
        interval = self.distance_interval(source, target)
        return (interval.lo + interval.hi) / 2.0

    def access_vertex(self, source: int, target: int) -> int:
        """The dumbbell's common vertex for path reconstruction."""
        if source == target:
            return source
        return self._find_pair(source, target).access_vertex

    def _find_pair(self, source: int, target: int) -> PathCoherentPair:
        a = _Block(0, self._grid_order, 0, self.network.num_vertices)
        b = _Block(0, self._grid_order, 0, self.network.num_vertices)
        pos_a = int(self._position[source])
        pos_b = int(self._position[target])
        while True:
            key = (a.code, a.level, b.code, b.level)
            pair = self._pairs.get(key)
            if pair is not None:
                return pair
            # Replay the deterministic split decision of the build.
            if a.level >= b.level and a.size > 1 or b.size == 1:
                a = self._child_containing(a, pos_a)
            else:
                b = self._child_containing(b, pos_b)

    def _child_containing(self, block: _Block, pos: int) -> _Block:
        from bisect import bisect_left

        step = block_cells(block.level - 1)
        sorted_codes = self._sorted_codes()
        cuts = [block.lo]
        for i in range(1, 4):
            cuts.append(
                bisect_left(sorted_codes, block.code + i * step, block.lo, block.hi)
            )
        cuts.append(block.hi)
        for i in range(4):
            if cuts[i] <= pos < cuts[i + 1]:
                return _Block(block.code + i * step, block.level - 1, cuts[i], cuts[i + 1])
        raise RuntimeError("vertex position outside its block; oracle corrupted")

    def _sorted_codes(self) -> list[int]:
        # Reconstructed lazily from the stored order; cached on first use.
        if self._sorted_codes_cache is None:
            _, codes = choose_grid_order(self.network)
            self._sorted_codes_cache = codes[self._order].tolist()
        return self._sorted_codes_cache

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def num_pairs(self) -> int:
        return len(self._pairs)

    def covered_vertex_pairs(self) -> int:
        """Total (source, target) pairs the stored dumbbells cover."""
        return sum(p.pair_count for p in self._pairs.values())

    def storage_bytes(self, record_bytes: int = 32) -> int:
        return self.num_pairs() * record_bytes

    def compression_ratio(self) -> float:
        """Vertex pairs covered per stored record (the PCP win)."""
        return self.covered_vertex_pairs() / max(1, self.num_pairs())


def _middle_vertex(network: SpatialNetwork, source: int, target: int) -> int:
    """Vertex nearest the midpoint of one representative shortest path."""
    from repro.network.dijkstra import shortest_path

    path, _, _ = shortest_path(network, source, target)
    return path[len(path) // 2]
