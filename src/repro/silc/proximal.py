"""Proximal SILC: shortest-path quadtrees limited to a travel horizon.

The paper's location-based-services strategy (p.27): instead of
coloring the whole network from every source, color only the vertices
within a network-distance ``radius`` ("say, 100 miles around a
vertex").  Destinations beyond the horizon carry the sentinel color
``-1``; the quadtree then stores the horizon boundary explicitly and
every lookup either answers exactly (target within the horizon) or
raises :class:`BeyondHorizonError` so the caller can fall back to a
point-to-point search.

The trade: storage and build time drop roughly with the horizon area,
while all local queries -- the LBS workload -- remain exact and as
fast as the full index.  The ablation benchmark
``benchmarks/test_ablation_proximal.py`` measures the curve.
"""

from __future__ import annotations

from repro.network.errors import NetworkError, PathNotFound
from repro.network.graph import SpatialNetwork
from repro.quadtree.blocks import BlockTable
from repro.silc.coloring import shortest_path_maps
from repro.silc.index import SILCIndex
from repro.silc.parallel import parallel_block_tables, resolve_workers
from repro.silc.sp_quadtree import SPQuadtreeBuilder, choose_grid_order

#: Sentinel color for destinations beyond the horizon.
BEYOND = -1


class BeyondHorizonError(NetworkError):
    """The queried destination lies beyond the index's travel horizon."""

    def __init__(self, source: int, target: int, radius: float) -> None:
        super().__init__(
            f"target {target} is beyond the {radius}-unit horizon of "
            f"vertex {source}; fall back to a point-to-point search"
        )
        self.source = source
        self.target = target
        self.radius = radius


class ProximalSILCIndex(SILCIndex):
    """A SILC index whose per-source coverage stops at ``radius``.

    Supports the full :class:`SILCIndex` query interface for targets
    within the source's horizon; beyond it, every probe (including the
    first step of ``path``/``distance``) raises
    :class:`BeyondHorizonError` so the caller can fall back to a
    point-to-point search such as :func:`repro.network.astar_path`.

    Storage behaviour, measured in ``test_ablation_proximal``: the
    horizon *boundary* itself costs blocks (it is one more color
    region), so savings over the full index appear only once the
    horizon is genuinely local (small fraction of the network) -- which
    is exactly the paper's LBS scenario of 100 miles on a continental
    map.
    """

    def __init__(
        self,
        network: SpatialNetwork,
        embedding,
        vertex_codes,
        tables: list[BlockTable],
        radius: float,
    ) -> None:
        super().__init__(network, embedding, vertex_codes, tables)
        self.radius = radius

    @classmethod
    def build(  # type: ignore[override]
        cls,
        network: SpatialNetwork,
        radius: float,
        chunk_size: int = 128,
        workers: int | None = None,
        transport: str | None = None,
    ) -> ProximalSILCIndex:
        if radius <= 0:
            raise ValueError("radius must be positive")
        network.require_strongly_connected()
        embedding, codes = choose_grid_order(network)
        tables: list[BlockTable | None] = [None] * network.num_vertices
        n_workers = resolve_workers(workers)
        if n_workers > 1 and network.num_vertices > 1:
            built = parallel_block_tables(
                network,
                embedding,
                codes,
                None,
                workers=n_workers,
                chunk_size=chunk_size,
                limit=radius,
                transport=transport,
            )
            for source, table in built.items():
                tables[source] = table
        else:
            builder = SPQuadtreeBuilder(network, embedding, codes)
            for spm in shortest_path_maps(
                network, chunk_size=chunk_size, limit=radius
            ):
                tables[spm.source] = builder.build(spm.colors, spm.ratios)
        return cls(network, embedding, codes, tables, radius)

    def _lookup(self, source: int, target: int) -> tuple[int, float, float]:
        hit = self.tables[source].lookup(self._vcodes[target])
        if hit is None:
            raise PathNotFound(source, target)
        color, lam_lo, lam_hi, row = hit
        if color == BEYOND:
            raise BeyondHorizonError(source, target, self.radius)
        if self.storage is not None:
            self.storage.touch(source, row)
        return color, lam_lo, lam_hi

    def within_horizon(self, source: int, target: int) -> bool:
        """Whether a direct probe from ``source`` can answer ``target``."""
        self.network.check_vertex(source)
        self.network.check_vertex(target)
        if source == target:
            return True
        hit = self.tables[source].lookup(self._vcodes[target])
        return hit is not None and hit[0] != BEYOND

    def horizon_fraction(self) -> float:
        """Mean fraction of vertices each source can answer directly.

        1.0 means the horizon covers everything (equivalent to the
        full index); small radii give proportionally smaller coverage
        and storage.
        """
        n = self.network.num_vertices
        if n <= 1:
            return 1.0
        covered = 0
        for source in range(n):
            table = self.tables[source]
            for v in range(n):
                if v == source:
                    continue
                hit = table.lookup(self._vcodes[v])
                if hit is not None and hit[0] != BEYOND:
                    covered += 1
        return covered / (n * (n - 1))
