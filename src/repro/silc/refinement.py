"""Progressive refinement of network-distance intervals.

The heart of the paper's query machinery (p.18): a distance is first
known only as ``[lambda_min * d_E, lambda_max * d_E]``; each
*refinement* advances one link along the (implicitly stored) shortest
path, replacing the estimate with ``exact prefix + interval from the
intermediate vertex``.  After at most path-length refinements the
interval collapses to the exact network distance, but queries stop as
soon as their comparison is decided.

The quality claim the paper leans on (p.30): at every stage the
estimate is "exact network distance from source to some intermediate
vertex plus a network-distance interval from there" -- strictly
tighter than oracle schemes that compose two intervals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.silc.intervals import DistanceInterval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.silc.index import SILCIndex


class RefinementCounter:
    """Shared mutable counter so queries can report refinement work."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class RefinableDistance:
    """The progressively refinable distance from a source to a target.

    State is exactly what the paper stores per enqueued object (p.22):
    the intermediate vertex ``via`` reached so far and the exact
    network distance ``acc`` from the source to it.  ``interval``
    always contains the true distance and is monotone under
    :meth:`refine` -- the lower bound never decreases, the upper bound
    never increases.
    """

    __slots__ = (
        "_index",
        "source",
        "target",
        "via",
        "acc",
        "_interval",
        "_counter",
        "_next_hop",
    )

    def __init__(
        self,
        index: SILCIndex,
        source: int,
        target: int,
        counter: RefinementCounter | None = None,
        offset: float = 0.0,
    ) -> None:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self._index = index
        self.source = source
        self.target = target
        self.via = source
        self.acc = offset
        self._counter = counter
        self._next_hop = -1
        self._interval = self._estimate()

    # ------------------------------------------------------------------
    # Interval access
    # ------------------------------------------------------------------
    @property
    def interval(self) -> DistanceInterval:
        return self._interval

    @property
    def is_exact(self) -> bool:
        return self.via == self.target

    def _estimate(self) -> DistanceInterval:
        """One fused probe: refreshes the interval and caches the hop."""
        if self.via == self.target:
            self._next_hop = self.target
            return DistanceInterval.exact(self.acc)
        hop, lo, hi = self._index.hop_and_interval(self.via, self.target)
        self._next_hop = hop
        acc = self.acc
        return DistanceInterval(acc + lo, acc + hi)

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refine(self) -> bool:
        """Advance one link along the shortest path.

        Returns False (and does nothing) when the distance is already
        exact.  Costs exactly one quadtree probe: the next hop was
        cached by the previous probe.  The resulting interval is
        clamped to the previous one, so bounds are monotone even under
        floating-point jitter.
        """
        if self.via == self.target:
            return False
        nxt = self._next_hop
        self.acc += self._index.network.edge_weight(self.via, nxt)
        self.via = nxt
        if self._counter is not None:
            self._counter.count += 1
        fresh = self._estimate()
        self._interval = (
            fresh if fresh.is_exact else fresh.intersection(self._interval)
        )
        return True

    def refine_fully(self, max_steps: int | None = None) -> float:
        """Refine to exactness and return the network distance.

        ``max_steps`` guards against corrupted indexes; it defaults to
        the number of network vertices (no simple path is longer).
        """
        limit = max_steps if max_steps is not None else self._index.network.num_vertices
        steps = 0
        while self.refine():
            steps += 1
            if steps > limit:
                raise RuntimeError(
                    f"refinement of {self.source}->{self.target} exceeded "
                    f"{limit} steps; the index next-hop data is inconsistent"
                )
        return self.acc

    def refine_until_below(self, width: float) -> DistanceInterval:
        """Refine until the interval width drops to ``width`` or exact."""
        while self._interval.width > width and self.refine():
            pass
        return self._interval
