"""Shortest-path quadtree construction.

Couples the coloring of :mod:`repro.silc.coloring` to the region
builder of :mod:`repro.quadtree.region`: for each source, sort the
per-vertex colors/ratios into Morton order (the permutation is shared
across all sources, so it is computed once per network) and emit the
maximal single-color Morton blocks with their lambda intervals.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import GridEmbedding
from repro.geometry.morton import MAX_ORDER
from repro.network.errors import GraphConstructionError
from repro.network.graph import SpatialNetwork
from repro.quadtree.blocks import BlockTable
from repro.quadtree.region import build_region_blocks


def choose_grid_order(network: SpatialNetwork, minimum: int = 4) -> tuple[GridEmbedding, np.ndarray]:
    """Pick the smallest grid that gives every vertex its own cell.

    A shortest-path quadtree can only separate differently colored
    vertices that occupy different grid cells, so the embedding order
    is raised until the vertex -> cell map is injective.  Raises
    :class:`GraphConstructionError` when two vertices share a position
    (no grid can separate them).

    Returns the embedding and the per-vertex Morton codes.
    """
    order = max(minimum, int(np.ceil(np.log2(max(np.sqrt(network.num_vertices), 2)))) + 2)
    while order <= MAX_ORDER:
        embedding = GridEmbedding.for_points(network.xs, network.ys, order)
        codes = embedding.morton_of_array(network.xs, network.ys).astype(np.int64)
        if np.unique(codes).size == codes.size:
            return embedding, codes
        order += 1
    raise GraphConstructionError(
        "could not give every vertex a distinct grid cell at the maximum "
        "grid order; the network has coincident (or near-coincident) "
        "vertex positions"
    )


class SPQuadtreeBuilder:
    """Reusable per-network state for building shortest-path quadtrees.

    Instantiating the builder performs the network-wide work (cell
    assignment, Morton sort); :meth:`build` then compresses one
    source's coloring in ``O(B log N + N)``.
    """

    def __init__(
        self,
        network: SpatialNetwork,
        embedding: GridEmbedding | None = None,
        codes: np.ndarray | None = None,
    ) -> None:
        self.network = network
        if embedding is None or codes is None:
            embedding, codes = choose_grid_order(network)
        self.embedding = embedding
        self.codes = np.asarray(codes, dtype=np.int64)
        self.order = np.argsort(self.codes)
        self.sorted_codes = self.codes[self.order]

    def build(self, colors: np.ndarray, ratios: np.ndarray) -> BlockTable:
        """The shortest-path quadtree for one source's coloring."""
        return build_region_blocks(
            self.sorted_codes,
            np.asarray(colors)[self.order],
            np.asarray(ratios)[self.order],
            self.embedding.order,
        )
