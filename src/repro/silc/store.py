"""The flat columnar SILC store.

A SILC index holds one Morton-block table per network vertex -- tens
of thousands of tables.  Materializing each as five small numpy arrays
(the pre-flat layout) costs an allocation, a validation pass and a
Python object per vertex, and forces every load to reassemble all of
them.  :class:`FlatStore` keeps the whole index in **one** set of
concatenated ``codes/levels/colors/lam_min/lam_max`` columns plus a
per-vertex offset array -- exactly the layout ``SILCIndex.save`` has
always written to disk -- and hands out per-vertex
:class:`~repro.quadtree.blocks.BlockTable` *views* over slices of the
shared columns.

The layout is what makes the rest of the zero-copy pipeline possible:

* a parallel build writes each chunk's columns into shared memory and
  the parent assembles them by slicing, never pickling block data;
* ``save`` is a plain dump of the columns, and a directory-layout save
  can be loaded with ``mmap_mode="r"`` so cold start touches O(1)
  bytes instead of O(total blocks);
* every view is backed by the same memory, so the resident footprint
  is the column bytes, once.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable, Iterator

import numpy as np

from repro.integrity import atomic_directory, checked_load, verify_manifest
from repro.quadtree.blocks import BlockTable, compute_ends

#: Column names in canonical order, shared by save/load and the
#: shared-memory build transport.
COLUMNS = ("codes", "levels", "colors", "lam_min", "lam_max")

#: Canonical dtype per column.
COLUMN_DTYPES = {
    "codes": np.int64,
    "levels": np.int8,
    "colors": np.int32,
    "lam_min": np.float64,
    "lam_max": np.float64,
}


def empty_columns() -> dict[str, np.ndarray]:
    """A zero-length column set with canonical dtypes."""
    return {name: np.empty(0, dtype=dt) for name, dt in COLUMN_DTYPES.items()}


class FlatStore:
    """Concatenated block-table columns for every vertex of one index.

    Parameters
    ----------
    offsets:
        ``(num_vertices + 1,)`` int64 array; vertex ``v``'s blocks live
        in rows ``offsets[v]:offsets[v + 1]`` of every column.
    codes, levels, colors, lam_min, lam_max:
        The concatenated columns.  Arrays are taken as-is (they may be
        memory-mapped); dtypes must already be canonical.
    """

    __slots__ = (
        "offsets",
        "codes",
        "levels",
        "colors",
        "lam_min",
        "lam_max",
        "_ends",
    )

    def __init__(
        self,
        offsets: np.ndarray,
        codes: np.ndarray,
        levels: np.ndarray,
        colors: np.ndarray,
        lam_min: np.ndarray,
        lam_max: np.ndarray,
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ValueError("offsets must be a 1-D array of at least one entry")
        total = int(self.offsets[-1])
        self.codes = codes
        self.levels = levels
        self.colors = colors
        self.lam_min = lam_min
        self.lam_max = lam_max
        for name in COLUMNS:
            col = getattr(self, name)
            if col.shape != (total,):
                raise ValueError(
                    f"column {name!r} has shape {col.shape}, expected ({total},)"
                )
        # End codes are derived lazily: computing them eagerly would
        # fault in the codes/levels columns of an mmap-backed store.
        self._ends: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tables(cls, tables: Iterable[BlockTable]) -> FlatStore:
        """Concatenate a sequence of per-vertex tables into one store."""
        tables = list(tables)
        sizes = np.array([len(t) for t in tables], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        if int(sizes.sum()) == 0:
            cols = empty_columns()
        else:
            cols = {
                name: np.concatenate(
                    [np.asarray(getattr(t, name), dtype=COLUMN_DTYPES[name]) for t in tables]
                )
                for name in COLUMNS
            }
        return cls(offsets, **cols)

    @classmethod
    def from_columns(
        cls, sizes: np.ndarray, columns: dict[str, np.ndarray]
    ) -> FlatStore:
        """Build from per-vertex sizes plus already-concatenated columns."""
        offsets = np.concatenate([[0], np.cumsum(np.asarray(sizes, dtype=np.int64))])
        return cls(offsets.astype(np.int64), **{n: columns[n] for n in COLUMNS})

    @classmethod
    def empty(cls, num_vertices: int) -> FlatStore:
        return cls(np.zeros(num_vertices + 1, dtype=np.int64), **empty_columns())

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def total_blocks(self) -> int:
        return int(self.offsets[-1])

    @property
    def sizes(self) -> np.ndarray:
        """Blocks per vertex (``len(table(v))`` for every ``v``)."""
        return np.diff(self.offsets)

    def nbytes(self) -> int:
        """Resident bytes of the columns (excludes the offset array)."""
        return sum(getattr(self, name).nbytes for name in COLUMNS)

    @property
    def ends(self) -> np.ndarray:
        """Concatenated exclusive end codes, computed on first use."""
        if self._ends is None:
            self._ends = compute_ends(
                np.asarray(self.codes, dtype=np.int64), np.asarray(self.levels)
            )
        return self._ends

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> FlatStore:
        """Check every table's invariants in one vectorized pass.

        Within each table the codes must be strictly increasing and
        the blocks disjoint -- exactly what the validating
        :class:`BlockTable` constructor checks per table, amortized
        over the whole store so loads of untrusted files stay fast.
        Returns ``self`` for chaining; raises ``ValueError`` on a
        corrupt store.
        """
        codes = np.asarray(self.codes, dtype=np.int64)
        if codes.size > 1:
            ends = self.ends
            ok = (codes[1:] > codes[:-1]) & (ends[:-1] <= codes[1:])
            # Adjacent-row pairs that span a table boundary carry no
            # invariant; mask them out before complaining.
            boundaries = self.offsets[1:-1] - 1
            boundaries = boundaries[(boundaries >= 0) & (boundaries < ok.size)]
            ok[boundaries] = True
            if not ok.all():
                row = int(np.flatnonzero(~ok)[0])
                table = int(np.searchsorted(self.offsets, row, side="right")) - 1
                raise ValueError(
                    f"corrupt block store: rows {row}..{row + 1} "
                    f"(table {table}) are unsorted or overlapping"
                )
        return self

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def table(self, v: int) -> BlockTable:
        """A zero-copy :class:`BlockTable` view of vertex ``v``'s rows."""
        lo = int(self.offsets[v])
        hi = int(self.offsets[v + 1])
        return BlockTable.view(
            self.codes[lo:hi],
            self.levels[lo:hi],
            self.colors[lo:hi],
            self.lam_min[lo:hi],
            self.lam_max[lo:hi],
            ends=None if self._ends is None else self._ends[lo:hi],
        )

    def views(self) -> list[BlockTable]:
        """Per-vertex view tables; O(num_vertices), no column copies."""
        offsets = self.offsets.tolist()
        out = []
        for v in range(self.num_tables):
            lo, hi = offsets[v], offsets[v + 1]
            out.append(
                BlockTable.view(
                    self.codes[lo:hi],
                    self.levels[lo:hi],
                    self.colors[lo:hi],
                    self.lam_min[lo:hi],
                    self.lam_max[lo:hi],
                )
            )
        return out

    def iter_tables(self) -> Iterator[BlockTable]:
        for v in range(self.num_tables):
            yield self.table(v)

    # ------------------------------------------------------------------
    # Serialization payload
    # ------------------------------------------------------------------
    def column_arrays(self) -> dict[str, np.ndarray]:
        """The five columns keyed by canonical name (no copies)."""
        return {name: getattr(self, name) for name in COLUMNS}

    # ------------------------------------------------------------------
    # Per-shard slices
    # ------------------------------------------------------------------
    def save_shard(
        self, directory: str | Path, shard: int, vertices: np.ndarray
    ) -> Path:
        """Write the given vertices' rows as one shard subdirectory.

        The slice lands in ``<directory>/<shard_dirname(shard)>/`` as
        the shard's global vertex ids (``vertices.npy``), its *local*
        offset array, and the five column files -- the same raw-``.npy``
        layout as a full directory save, so :meth:`load_shard` can
        memory-map it.  A shard worker process then faults in only its
        own slice's pages; slices of other shards mapped from the same
        files are shared across processes through the OS page cache.

        The write is crash-safe: files are staged in a temporary
        sibling, a checksum ``MANIFEST.json`` is written last, and the
        directory is published with ``os.replace`` -- an interrupted
        save leaves either the previous shard state or nothing, never
        a half-written slice.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        sub = Path(directory) / shard_dirname(shard)
        sizes = self.sizes[vertices]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        starts = self.offsets[vertices]
        with atomic_directory(sub) as tmp:
            np.save(tmp / "vertices.npy", vertices)
            np.save(tmp / "offsets.npy", offsets)
            for name in COLUMNS:
                col = getattr(self, name)
                out = np.empty(int(offsets[-1]), dtype=COLUMN_DTYPES[name])
                for i in range(vertices.size):
                    lo = int(starts[i])
                    out[offsets[i] : offsets[i + 1]] = col[lo : lo + int(sizes[i])]
                np.save(tmp / f"{name}.npy", out)
        return sub

    @classmethod
    def load_shard(
        cls, directory: str | Path, shard: int, mmap: bool = False
    ) -> tuple[np.ndarray, "FlatStore"]:
        """Load one shard subdirectory written by :meth:`save_shard`.

        Returns ``(vertices, store)``: the shard's global vertex ids
        and a :class:`FlatStore` over its *local* tables (table ``i``
        belongs to global vertex ``vertices[i]``).  With ``mmap=True``
        the column files are memory-mapped read-only, so loading costs
        O(vertices-in-shard) bytes and column pages fault in on demand
        -- and are shared with every other process mapping the same
        files.

        Integrity is checked *before* any table is served: the shard's
        ``MANIFEST.json`` sizes are verified always (O(1) stat per
        file, catching truncation even on the mmap path), checksums
        too on eager loads; a mismatch or unparseable column raises
        :class:`~repro.errors.CorruptIndexError` naming the column.
        """
        sub = Path(directory) / shard_dirname(shard)
        mode = "r" if mmap else None
        verify_manifest(sub, deep=not mmap)
        vertices = checked_load(sub, "vertices.npy")
        offsets = checked_load(sub, "offsets.npy")
        columns = {
            name: checked_load(sub, f"{name}.npy", mmap_mode=mode)
            for name in COLUMNS
        }
        return vertices, cls(offsets, **columns)


def shard_dirname(shard: int) -> str:
    """Subdirectory name of one shard inside a sharded index save."""
    if shard < 0:
        raise ValueError(f"shard id must be non-negative: {shard}")
    return f"shard_{shard:04d}"


class ShardedFlatStore:
    """A full-coverage store stitched from per-shard slices.

    Implements the read surface of :class:`FlatStore` (``num_tables``,
    ``sizes``, ``table``, ``views``, ``column_arrays``, ...) over N
    per-shard :class:`FlatStore` fragments plus a global vertex ->
    (shard, local index) mapping.  A shard worker loads its *primary*
    shard eagerly (its resident hot set) and every other shard
    memory-mapped: queries overwhelmingly probe primary-shard tables,
    and the occasional cross-shard probe faults pages that the OS page
    cache shares with the workers owning them.
    """

    __slots__ = ("shards", "shard_of", "local_index", "_sizes")

    def __init__(
        self,
        shards: list[FlatStore],
        shard_of: np.ndarray,
        local_index: np.ndarray,
    ) -> None:
        self.shards = list(shards)
        self.shard_of = np.asarray(shard_of, dtype=np.int64)
        self.local_index = np.asarray(local_index, dtype=np.int64)
        if self.shard_of.shape != self.local_index.shape:
            raise ValueError("shard_of and local_index must align")
        sizes = np.empty(self.shard_of.size, dtype=np.int64)
        for s, fragment in enumerate(self.shards):
            members = np.flatnonzero(self.shard_of == s)
            if members.size != fragment.num_tables:
                raise ValueError(
                    f"shard {s} holds {fragment.num_tables} tables for "
                    f"{members.size} assigned vertices"
                )
            sizes[members] = fragment.sizes[self.local_index[members]]
        self._sizes = sizes

    # ------------------------------------------------------------------
    # FlatStore read surface
    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return int(self.shard_of.size)

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes

    @property
    def total_blocks(self) -> int:
        return int(self._sizes.sum())

    def nbytes(self) -> int:
        return sum(fragment.nbytes() for fragment in self.shards)

    def table(self, v: int) -> BlockTable:
        fragment = self.shards[self.shard_of[v]]
        return fragment.table(int(self.local_index[v]))

    def views(self) -> list[BlockTable]:
        return [self.table(v) for v in range(self.num_tables)]

    def iter_tables(self) -> Iterator[BlockTable]:
        for v in range(self.num_tables):
            yield self.table(v)

    def column_arrays(self) -> dict[str, np.ndarray]:
        """The five columns re-concatenated in global vertex order.

        Unlike :meth:`FlatStore.column_arrays` this *copies* (the rows
        live scattered across shard fragments); it exists so a
        shard-loaded index can still be re-saved in the plain layouts.
        """
        out = {
            name: np.empty(self.total_blocks, dtype=COLUMN_DTYPES[name])
            for name in COLUMNS
        }
        offsets = np.concatenate([[0], np.cumsum(self._sizes)]).astype(np.int64)
        for v in range(self.num_tables):
            fragment = self.shards[self.shard_of[v]]
            li = int(self.local_index[v])
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            flo = int(fragment.offsets[li])
            for name in COLUMNS:
                out[name][lo:hi] = getattr(fragment, name)[flo : flo + hi - lo]
        return out

    def validate(self) -> ShardedFlatStore:
        """Per-fragment invariant check (see :meth:`FlatStore.validate`)."""
        for fragment in self.shards:
            fragment.validate()
        return self
