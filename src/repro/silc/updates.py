"""Localized index maintenance under network updates.

The paper calls updates (road closures, changed travel times) the open
challenge of the precomputation strategy and sketches the answer:
"localize changes to minimize recomputation" (p.27).  This module
implements that strategy exactly:

1. **Damage analysis** -- a directed edge ``(a, b)`` influences the
   shortest-path quadtree of source ``s`` only if it lies on some
   shortest path from ``s``, i.e. ``d(s,a) + w(a,b) = d(s,b)``.  Two
   reverse Dijkstra passes (to ``a`` and to ``b``) evaluate that
   predicate for *every* source at once:

   * removals / weight increases are tested on the **old** network
     (which sources were using the edge);
   * insertions / weight decreases are tested on the **new** network
     (which sources start using it).

   The result is a conservative superset of the affected sources
   (ties are included), so rebuilding exactly those tables is safe.

2. **Partial rebuild** -- only the affected sources' quadtrees are
   recomputed (on the unchanged grid embedding); every other table's
   columns are carried over from the old index, so the recomputation
   cost is proportional to the damage, not to the network.  (With the
   flat columnar store, a no-op update shares the old index's store
   object outright; a real update assembles one new store from the
   carried-over and rebuilt columns.)
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from repro.network.errors import GraphConstructionError
from repro.network.graph import SpatialNetwork
from repro.silc.coloring import shortest_path_maps
from repro.silc.index import SILCIndex
from repro.silc.sp_quadtree import SPQuadtreeBuilder

#: Relative slack for the "edge on a shortest path" predicate; float
#: ties must land on the affected side (rebuilding extra sources is
#: safe, missing one is not).
_TOL = 1e-9


def diff_edges(
    old: SpatialNetwork, new: SpatialNetwork
) -> list[tuple[int, int, float | None, float | None]]:
    """Edge differences as ``(a, b, old_weight, new_weight)`` tuples.

    ``old_weight`` is None for insertions, ``new_weight`` None for
    removals; both present (and different) for weight changes.
    """
    if old.num_vertices != new.num_vertices:
        raise GraphConstructionError(
            "localized update requires an unchanged vertex set"
        )
    if not (
        np.array_equal(old.xs, new.xs) and np.array_equal(old.ys, new.ys)
    ):
        raise GraphConstructionError(
            "localized update requires unchanged vertex positions"
        )
    old_edges = {(u, v): w for u, v, w in old.iter_edges()}
    new_edges = {(u, v): w for u, v, w in new.iter_edges()}
    changes = []
    for key in old_edges.keys() | new_edges.keys():
        ow = old_edges.get(key)
        nw = new_edges.get(key)
        if ow != nw:
            changes.append((key[0], key[1], ow, nw))
    return changes


def _distances_to(network: SpatialNetwork, target: int) -> np.ndarray:
    """``d(s, target)`` for every source ``s`` (one reverse Dijkstra)."""
    return csgraph.dijkstra(network.to_csr().T, indices=[target])[0]


def sources_using_edge(network: SpatialNetwork, a: int, b: int) -> set[int]:
    """Sources for which edge ``(a, b)`` lies on some shortest path.

    ``s`` qualifies iff ``d(s,a) + w(a,b) = d(s,b)`` (within float
    slack, erring on the inclusive side).
    """
    w = network.edge_weight(a, b)
    d_to_a = _distances_to(network, a)
    d_to_b = _distances_to(network, b)
    via = d_to_a + w
    slack = _TOL * np.maximum(1.0, np.abs(d_to_b))
    mask = np.isfinite(d_to_b) & (via <= d_to_b + slack)
    return set(int(s) for s in np.flatnonzero(mask))


def affected_sources(
    old: SpatialNetwork, new: SpatialNetwork
) -> tuple[set[int], list[tuple[int, int, float | None, float | None]]]:
    """Sources whose shortest-path quadtrees the change may invalidate.

    Returns ``(sources, edge_changes)``.
    """
    changes = diff_edges(old, new)
    affected: set[int] = set()
    for a, b, ow, nw in changes:
        if ow is not None and (nw is None or nw > ow):
            # removal or slowdown: whoever was using it on the old net
            affected |= sources_using_edge(old, a, b)
        if nw is not None and (ow is None or nw < ow):
            # insertion or speedup: whoever starts using it on the new
            affected |= sources_using_edge(new, a, b)
    return affected, changes


def update_index(
    index: SILCIndex, new_network: SpatialNetwork
) -> tuple[SILCIndex, set[int]]:
    """Derive an index for ``new_network`` by localized recomputation.

    Rebuilds only the shortest-path quadtrees of the affected sources;
    all other tables are shared (by reference) with the old index.
    Returns ``(new_index, rebuilt_sources)``.

    The new index answers queries over ``new_network`` exactly as a
    full :meth:`SILCIndex.build` would (verified property in the test
    suite); only construction cost differs.
    """
    new_network.require_strongly_connected()
    affected, changes = affected_sources(index.network, new_network)
    if not changes:
        return (
            SILCIndex(
                new_network,
                index.embedding,
                index.vertex_codes,
                index.store,
            ),
            set(),
        )

    builder = SPQuadtreeBuilder(
        new_network, index.embedding, index.vertex_codes
    )
    tables = list(index.tables)
    order = sorted(affected)
    for spm in shortest_path_maps(new_network, sources=order):
        tables[spm.source] = builder.build(spm.colors, spm.ratios)
    return (
        SILCIndex(new_network, index.embedding, index.vertex_codes, tables),
        affected,
    )
