"""Simulated disk storage: page layout, LRU buffer, access accounting.

Reproduces the paper's experimental I/O model (index on disk behind an
LRU buffer holding 5% of the pages) so the I/O-time series of the
evaluation can be regenerated deterministically.
"""

from repro.storage.concurrent import ShardedStorageSimulator
from repro.storage.lru import CacheStats, LRUCache
from repro.storage.network_pages import NetworkStorageModel
from repro.storage.pages import PageLayout, StorageLayout
from repro.storage.simulator import DEFAULT_MISS_LATENCY, StorageSimulator

__all__ = [
    "CacheStats",
    "LRUCache",
    "PageLayout",
    "StorageLayout",
    "StorageSimulator",
    "ShardedStorageSimulator",
    "NetworkStorageModel",
    "DEFAULT_MISS_LATENCY",
]
