"""Thread-sharded storage simulation for parallel query workers.

The classic :class:`~repro.storage.StorageSimulator` wraps one
``OrderedDict``-backed LRU: correct for serial query streams, but two
query threads interleaving on it corrupt both the recency order and
the per-query accounting (a query's miss delta would include every
concurrent query's traffic).  The serving layer used to solve this
with a global lock around the whole engine -- which serialized query
execution entirely.

:class:`ShardedStorageSimulator` removes that lock by giving **each
worker thread its own LRU shard and counter set**, created lazily on
the thread's first touch:

* ``touch``/``touch_range``/``snapshot`` operate purely on
  thread-local state -- no synchronization on the query hot path;
* ``stats`` merges every shard's counters on read (the engine-level
  totals used by metrics and benchmarks);
* per-query deltas stay exact because a query runs on one thread and
  ``stats_since`` diffs against that thread's own counters.

The model this simulates is a server whose workers each own a page
buffer of the configured size (shared-nothing, as a partitioned buffer
pool would be) -- hit rates are per-worker, totals are summed.

``sleep_per_miss`` optionally turns the simulated fault latency into a
*real* ``time.sleep`` (which releases the GIL).  That is what lets
``benchmarks/test_parallel_query.py`` demonstrate wall-clock scaling:
in the paper's I/O-bound regime queries spend most of their time in
page faults, and faults of different workers overlap.
"""

from __future__ import annotations

import threading
import time

from repro.storage.lru import CacheStats, LRUCache
from repro.storage.pages import PageLayout, StorageLayout
from repro.storage.simulator import DEFAULT_MISS_LATENCY


class ShardedStorageSimulator:
    """Per-thread LRU shards over one page layout, merged on read."""

    #: Marks the simulator safe for concurrent query threads; the
    #: serving layer checks this instead of isinstance.
    concurrent_safe = True

    def __init__(
        self,
        layout: StorageLayout,
        shard_capacity: int,
        miss_latency: float = DEFAULT_MISS_LATENCY,
        sleep_per_miss: float = 0.0,
    ) -> None:
        if shard_capacity < 1:
            raise ValueError("shard capacity must be at least one page")
        if sleep_per_miss < 0:
            raise ValueError("sleep_per_miss must be >= 0")
        self.layout = layout
        self.shard_capacity = shard_capacity
        self.miss_latency = miss_latency
        self.sleep_per_miss = sleep_per_miss
        self._tls = threading.local()
        self._shards: list[LRUCache] = []
        self._registry_lock = threading.Lock()

    @classmethod
    def for_table_sizes(
        cls,
        table_sizes: list[int],
        cache_fraction: float = 0.05,
        page_layout: PageLayout | None = None,
        miss_latency: float = DEFAULT_MISS_LATENCY,
        sleep_per_miss: float = 0.0,
    ) -> ShardedStorageSimulator:
        """Sized like :meth:`StorageSimulator.for_table_sizes`.

        Each worker thread's shard holds ``cache_fraction`` of the
        total pages -- the paper's per-buffer sizing, applied per
        worker.
        """
        if not (0.0 < cache_fraction <= 1.0):
            raise ValueError("cache_fraction must be in (0, 1]")
        layout = StorageLayout(table_sizes, page_layout)
        capacity = max(1, int(layout.total_pages * cache_fraction))
        return cls(
            layout=layout,
            shard_capacity=capacity,
            miss_latency=miss_latency,
            sleep_per_miss=sleep_per_miss,
        )

    @classmethod
    def from_simulator(cls, simulator) -> ShardedStorageSimulator:
        """A sharded equivalent of a plain :class:`StorageSimulator`."""
        return cls(
            layout=simulator.layout,
            shard_capacity=simulator.cache.capacity,
            miss_latency=simulator.miss_latency,
        )

    # ------------------------------------------------------------------
    # Shards
    # ------------------------------------------------------------------
    def _shard(self) -> LRUCache:
        cache = getattr(self._tls, "cache", None)
        if cache is None:
            cache = LRUCache(self.shard_capacity)
            with self._registry_lock:
                self._shards.append(cache)
            self._tls.cache = cache
        return cache

    @property
    def num_shards(self) -> int:
        """Worker threads that have touched storage so far."""
        with self._registry_lock:
            return len(self._shards)

    def shard_stats(self) -> list[CacheStats]:
        """A snapshot of every shard's counters (reporting)."""
        with self._registry_lock:
            shards = list(self._shards)
        return [s.stats.snapshot() for s in shards]

    # ------------------------------------------------------------------
    # Access interface used by SILCIndex
    # ------------------------------------------------------------------
    def touch(self, table: int, record: int) -> None:
        hit = self._shard().access(self.layout.page_of(table, record))
        if not hit and self.sleep_per_miss:
            time.sleep(self.sleep_per_miss)

    def touch_range(self, table: int, lo_record: int, hi_record: int) -> None:
        cache = self._shard()
        misses = 0
        for page in self.layout.pages_of_range(table, lo_record, hi_record):
            if not cache.access(page):
                misses += 1
        if misses and self.sleep_per_miss:
            time.sleep(misses * self.sleep_per_miss)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Merged counters across every shard (engine-level totals)."""
        merged = CacheStats()
        for s in self.shard_stats():
            merged.accesses += s.accesses
            merged.hits += s.hits
            merged.misses += s.misses
            merged.evictions += s.evictions
        return merged

    def snapshot(self) -> CacheStats:
        """The *calling thread's* counters (per-query accounting).

        Pair with :meth:`stats_since`, which also reads the calling
        thread's shard, so a query's delta never includes traffic from
        concurrent queries on other workers.
        """
        return self._shard().stats.snapshot()

    def stats_since(self, earlier: CacheStats) -> CacheStats:
        """Calling thread's counter delta since its own snapshot."""
        return self._shard().stats.delta_since(earlier)

    def io_time_since(self, earlier: CacheStats) -> float:
        return self.stats_since(earlier).io_time(self.miss_latency)

    def warm_up(self) -> None:
        """Reset every shard to a cold cache (statistics preserved)."""
        with self._registry_lock:
            shards = list(self._shards)
        for s in shards:
            s.clear()
