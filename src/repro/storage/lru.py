"""An LRU page cache with hit/miss accounting.

Models the paper's experimental setup: "LRU based cache that can hold
5% of the disk pages in main memory" (p.32).  Only metadata is cached
-- the simulator tracks *which* pages are resident, not their bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters accumulated by an :class:`LRUCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def io_time(self, miss_latency: float) -> float:
        """Simulated I/O time: one ``miss_latency`` per page fault."""
        return self.misses * miss_latency

    def snapshot(self) -> CacheStats:
        return CacheStats(self.accesses, self.hits, self.misses, self.evictions)

    def delta_since(self, earlier: CacheStats) -> CacheStats:
        """Counter difference, for per-query accounting."""
        return CacheStats(
            self.accesses - earlier.accesses,
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
        )


@dataclass
class LRUCache:
    """Fixed-capacity LRU set of page ids."""

    capacity: int
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be at least one page")
        self._resident: OrderedDict[int, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def access(self, page: int) -> bool:
        """Touch a page; returns True on hit, False on fault."""
        self.stats.accesses += 1
        if page in self._resident:
            self._resident.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._resident[page] = None
        if len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        return False

    def clear(self) -> None:
        """Drop residency but keep the accumulated statistics."""
        self._resident.clear()
