"""Disk-page model for the network itself (INE/IER's I/O).

The paper's baselines read the *network* (adjacency lists) from disk
while the SILC algorithms read quadtree pages; both sides run behind
the same kind of LRU buffer (p.32).  This module gives the baselines
their half of that cost model: vertices are packed into pages in
Morton order (mirroring the spatial clustering a real road database
would use), and each settled vertex touches its adjacency page.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import GridEmbedding
from repro.network.graph import SpatialNetwork
from repro.storage.lru import CacheStats, LRUCache
from repro.storage.simulator import DEFAULT_MISS_LATENCY

#: Serialized bytes per vertex record header and per outgoing edge
#: (id + weight).  Matches the 16-byte quadtree record for symmetry.
_VERTEX_HEADER_BYTES = 16
_EDGE_BYTES = 16


class NetworkStorageModel:
    """LRU-buffered page residence for a disk-resident network."""

    def __init__(
        self,
        network: SpatialNetwork,
        page_size: int = 4096,
        cache_fraction: float = 0.05,
        miss_latency: float = DEFAULT_MISS_LATENCY,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if not (0.0 < cache_fraction <= 1.0):
            raise ValueError("cache_fraction must be in (0, 1]")
        self.network = network
        self.miss_latency = miss_latency

        # Pack vertices in Morton order: spatially adjacent vertices
        # share pages, giving the baselines the locality benefit a real
        # clustered layout would provide.
        embedding = GridEmbedding.for_points(network.xs, network.ys, order=10)
        codes = embedding.morton_of_array(network.xs, network.ys)
        file_order = np.argsort(codes, kind="stable")

        record_bytes = np.array(
            [
                _VERTEX_HEADER_BYTES + _EDGE_BYTES * network.out_degree(int(v))
                for v in file_order
            ],
            dtype=np.int64,
        )
        offsets = np.concatenate([[0], np.cumsum(record_bytes)])
        page_ids = offsets[:-1] // page_size
        self._page_of_vertex = np.empty(network.num_vertices, dtype=np.int64)
        self._page_of_vertex[file_order] = page_ids
        self.total_pages = int(page_ids[-1]) + 1 if len(page_ids) else 1
        self.cache = LRUCache(max(1, int(self.total_pages * cache_fraction)))
        self._page_list: list[int] = self._page_of_vertex.tolist()

    # ------------------------------------------------------------------
    # Access interface
    # ------------------------------------------------------------------
    def touch_vertex(self, vertex: int) -> None:
        """Read the page holding ``vertex``'s adjacency record."""
        self.cache.access(self._page_list[vertex])

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def snapshot(self) -> CacheStats:
        return self.stats.snapshot()

    def io_time_since(self, earlier: CacheStats) -> float:
        return self.stats.delta_since(earlier).io_time(self.miss_latency)

    def warm_up(self) -> None:
        self.cache.clear()
