"""Disk-page layout of a SILC index.

The paper's experiments run the index off disk through an LRU buffer
holding 5% of the pages, and report I/O time separately from CPU time
(p.38: "I/O time dominates... each refinement may lead to a disk
access").  We reproduce that cost model explicitly: every per-vertex
block table is serialized into fixed-size pages, and each block-table
probe at query time touches the page holding the probed record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PageLayout:
    """Physical parameters of the simulated disk layout.

    ``record_bytes`` is the serialized size of one Morton block (code +
    level + color + two lambdas; the paper quotes 8 bytes for the
    code-only layout, 16 with the lambda annotations).
    """

    page_size: int = 4096
    record_bytes: int = 16

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.record_bytes <= 0:
            raise ValueError("page_size and record_bytes must be positive")
        if self.record_bytes > self.page_size:
            raise ValueError("a record must fit in a page")

    @property
    def records_per_page(self) -> int:
        return self.page_size // self.record_bytes


class StorageLayout:
    """Maps (table, record) coordinates to global page ids.

    Tables are laid out back to back, each starting on a fresh page
    (tables are read independently, so sharing pages across tables
    would fabricate locality that a real system would not have).
    """

    def __init__(self, table_sizes: list[int], layout: PageLayout | None = None) -> None:
        self.layout = layout or PageLayout()
        self.table_sizes = list(table_sizes)
        rpp = self.layout.records_per_page
        pages = [max(1, -(-size // rpp)) for size in self.table_sizes]
        self.pages_per_table = pages
        self.page_offsets = np.concatenate([[0], np.cumsum(pages)])

    @property
    def total_pages(self) -> int:
        return int(self.page_offsets[-1])

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.layout.page_size

    def page_of(self, table: int, record: int) -> int:
        """Global page id holding ``record`` of ``table``."""
        if not (0 <= table < len(self.table_sizes)):
            raise IndexError(f"table {table} out of range")
        if not (0 <= record < max(self.table_sizes[table], 1)):
            raise IndexError(
                f"record {record} out of range for table {table} "
                f"(size {self.table_sizes[table]})"
            )
        return int(self.page_offsets[table]) + record // self.layout.records_per_page

    def pages_of_range(self, table: int, lo_record: int, hi_record: int) -> range:
        """Global page ids covering records ``[lo_record, hi_record)``."""
        if hi_record <= lo_record:
            return range(0)
        first = self.page_of(table, lo_record)
        last = self.page_of(table, hi_record - 1)
        return range(first, last + 1)
