"""The storage simulator a SILC index can be attached to.

Glues :class:`StorageLayout` and :class:`LRUCache` together behind the
one-method interface the index needs (``touch(table, record)``), and
owns the experiment knobs: cache fraction and per-fault latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.lru import CacheStats, LRUCache
from repro.storage.pages import PageLayout, StorageLayout

#: Default simulated latency of one page fault, in seconds.  5 ms is a
#: 2008-era disk seek, matching the paper's testbed, and puts queries
#: in the I/O-bound regime the paper measures; the value only scales
#: the I/O-time axes, never wall-clock time.
DEFAULT_MISS_LATENCY = 5e-3


@dataclass
class StorageSimulator:
    """Page-level access simulation for one SILC index."""

    #: Serial simulator: one shared LRU, unsafe to interleave across
    #: query threads (see repro.storage.concurrent for the sharded one).
    concurrent_safe = False

    layout: StorageLayout
    cache: LRUCache
    miss_latency: float = DEFAULT_MISS_LATENCY

    @classmethod
    def for_table_sizes(
        cls,
        table_sizes: list[int],
        cache_fraction: float = 0.05,
        page_layout: PageLayout | None = None,
        miss_latency: float = DEFAULT_MISS_LATENCY,
    ) -> StorageSimulator:
        """Build a simulator sized like the paper's setup.

        ``cache_fraction`` of the total pages (at least one) fit in
        memory; the paper uses 5%.
        """
        if not (0.0 < cache_fraction <= 1.0):
            raise ValueError("cache_fraction must be in (0, 1]")
        layout = StorageLayout(table_sizes, page_layout)
        capacity = max(1, int(layout.total_pages * cache_fraction))
        return cls(layout=layout, cache=LRUCache(capacity), miss_latency=miss_latency)

    # ------------------------------------------------------------------
    # Access interface used by SILCIndex
    # ------------------------------------------------------------------
    def touch(self, table: int, record: int) -> None:
        self.cache.access(self.layout.page_of(table, record))

    def touch_range(self, table: int, lo_record: int, hi_record: int) -> None:
        for page in self.layout.pages_of_range(table, lo_record, hi_record):
            self.cache.access(page)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def snapshot(self) -> CacheStats:
        return self.stats.snapshot()

    def stats_since(self, earlier: CacheStats) -> CacheStats:
        """Counter delta since a :meth:`snapshot` (per-query stats)."""
        return self.stats.delta_since(earlier)

    def io_time_since(self, earlier: CacheStats) -> float:
        return self.stats.delta_since(earlier).io_time(self.miss_latency)

    def warm_up(self) -> None:
        """Reset residency to a cold cache (statistics preserved)."""
        self.cache.clear()
