"""Rendering shortest-path maps and quadtrees for inspection.

The paper's figures (pp.12-13) show shortest-path maps as colored
regions of the plane.  This module reproduces those pictures without
any plotting dependency: maps render to ASCII (for terminals and
tests) or to binary PPM images (viewable anywhere, writable with the
standard library alone).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geometry.morton import morton_encode
from repro.silc.index import SILCIndex

#: A categorical palette (RGB) long enough for typical out-degrees.
_PALETTE = [
    (230, 25, 75),
    (60, 180, 75),
    (0, 130, 200),
    (245, 130, 48),
    (145, 30, 180),
    (70, 240, 240),
    (240, 50, 230),
    (210, 245, 60),
    (170, 110, 40),
    (128, 128, 0),
]

_BACKGROUND = (245, 245, 245)
_SOURCE = (0, 0, 0)

_ASCII = "abcdefghijklmnopqrstuvwxyz"


def shortest_path_map_grid(
    index: SILCIndex, source: int, resolution: int = 64
) -> np.ndarray:
    """Rasterize the shortest-path map of ``source``.

    Returns an ``(resolution, resolution)`` int array: ``-1`` for
    empty space (no quadtree block), otherwise a dense color id per
    distinct first hop.  Row 0 is the bottom of the map.
    """
    if resolution < 2:
        raise ValueError("resolution must be at least 2")
    index.network.check_vertex(source)
    table = index.tables[source]
    cells = index.embedding.cells_per_side
    grid = np.full((resolution, resolution), -1, dtype=np.int64)
    color_ids: dict[int, int] = {}
    for ry in range(resolution):
        cy = min(ry * cells // resolution, cells - 1)
        for rx in range(resolution):
            cx = min(rx * cells // resolution, cells - 1)
            hit = table.lookup(morton_encode(cx, cy))
            if hit is None:
                continue
            color = hit[0]
            grid[ry, rx] = color_ids.setdefault(color, len(color_ids))
    return grid


def render_ascii(grid: np.ndarray) -> str:
    """The grid as text: letters per region, ``.`` for empty space."""
    lines = []
    for row in grid[::-1]:  # top of the map first
        lines.append(
            "".join(
                "." if c < 0 else _ASCII[int(c) % len(_ASCII)] for c in row
            )
        )
    return "\n".join(lines)


def render_ppm(grid: np.ndarray, path: str | Path) -> Path:
    """Write the grid as a binary PPM (P6) image; returns the path."""
    h, w = grid.shape
    pixels = bytearray()
    for row in grid[::-1]:
        for c in row:
            rgb = _BACKGROUND if c < 0 else _PALETTE[int(c) % len(_PALETTE)]
            pixels.extend(rgb)
    path = Path(path)
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        f.write(bytes(pixels))
    return path


def region_summary(index: SILCIndex, source: int) -> dict[int, int]:
    """Blocks per first-hop color for one source's quadtree."""
    table = index.tables[source]
    counts: dict[int, int] = {}
    for color in table.colors.tolist():
        counts[color] = counts.get(color, 0) + 1
    return counts
