"""Shared fixtures: small networks and prebuilt SILC indexes.

Session-scoped where construction is expensive; every test that
mutates state builds its own objects instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import random_vertex_objects
from repro.network import distance_matrix, grid_network, road_like_network
from repro.objects import ObjectIndex
from repro.silc import SILCIndex


@pytest.fixture(scope="session")
def small_net():
    """A 150-vertex road-like network (the main unit-test substrate)."""
    return road_like_network(150, seed=9)


@pytest.fixture(scope="session")
def small_index(small_net):
    return SILCIndex.build(small_net)


@pytest.fixture(scope="session")
def small_dist(small_net):
    """All-pairs ground-truth distances for ``small_net``."""
    return distance_matrix(small_net)


@pytest.fixture(scope="session")
def grid_net():
    """An 8x8 jittered grid network."""
    return grid_network(8, 8, jitter=0.2, weight_noise=0.2, seed=3)


@pytest.fixture(scope="session")
def grid_index(grid_net):
    return SILCIndex.build(grid_net)


@pytest.fixture(scope="session")
def grid_dist(grid_net):
    return distance_matrix(grid_net)


@pytest.fixture(scope="session")
def small_objects(small_net):
    """Twenty vertex objects on ``small_net``."""
    return random_vertex_objects(small_net, count=20, seed=4)


@pytest.fixture(scope="session")
def small_object_index(small_net, small_index, small_objects):
    return ObjectIndex(small_net, small_objects, small_index.embedding)


def brute_force_knn(dist_matrix, object_set, query_vertex, k):
    """Ground-truth k nearest vertex objects by exact network distance."""
    pairs = sorted(
        (float(dist_matrix[query_vertex, o.position.vertex]), o.oid)
        for o in object_set
    )
    return pairs[:k]


@pytest.fixture(scope="session")
def brute_force():
    return brute_force_knn


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
