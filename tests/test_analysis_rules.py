"""The static-analysis framework: every rule proven live by fixture.

Each rule class gets (at least) one failing and one passing fixture --
tiny source snippets written into a temp tree and run through the
real :class:`~repro.analysis.core.Analyzer` -- so a rule that silently
stops matching (an ast refactor, a config typo) fails here before it
ships a green-but-dead gate.  Suppression semantics, the ``--json``
surface and the CLI exit codes are covered at the end.
"""

import json
import textwrap
from io import StringIO

import pytest

from repro.analysis.core import AnalysisConfig, Analyzer, Finding
from repro.analysis.rules import ALL_RULES, make_rules
from repro.analysis.rules.atomicwrite import AtomicWriteRule
from repro.analysis.rules.deadline import DeadlinePropagationRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.protocol import ProtocolExhaustivenessRule
from repro.analysis.rules.purity import CountedOpPurityRule
from repro.analysis.rules.tracing import TracingNoOpRule
from repro.analysis.runner import run_check


def run_rules(tmp_path, files, rule_cls, rule_config=None, raw=None):
    """Write ``files`` under ``tmp_path`` and run one rule over them."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    raw = dict(raw or {})
    if rule_config is not None:
        raw.setdefault("rules", {})[rule_cls.rule_id] = rule_config
    config = AnalysisConfig(root=tmp_path, raw=raw)
    analyzer = Analyzer(config, [rule_cls(config.rule_config(rule_cls.rule_id))])
    return analyzer.run(paths=["."])


class TestLockDiscipline:
    GUARDED = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def locked(self):
                with self._lock:
                    self.hits += 1

            def unlocked(self):
                self.hits += 1
        """

    def test_flags_unlocked_mutation_of_guarded_attr(self, tmp_path):
        findings = run_rules(tmp_path, {"m.py": self.GUARDED}, LockDisciplineRule)
        assert [f.rule for f in findings] == ["RPR001"]
        assert "hits" in findings[0].message

    def test_passes_when_every_mutation_is_locked(self, tmp_path):
        source = self.GUARDED.replace(
            "def unlocked(self):\n                self.hits += 1",
            "def also_locked(self):\n"
            "                with self._lock:\n"
            "                    self.hits += 1",
        )
        assert run_rules(tmp_path, {"m.py": source}, LockDisciplineRule) == []

    def test_init_writes_are_exempt(self, tmp_path):
        source = """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = {}

                def touch(self):
                    with self._lock:
                        self.state[1] = 2
            """
        assert run_rules(tmp_path, {"m.py": source}, LockDisciplineRule) == []

    def test_tracks_mutator_calls_through_aliases(self, tmp_path):
        source = """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def locked(self):
                    with self._lock:
                        self.items.append(1)

                def unlocked(self):
                    items = self.items
                    items.append(2)
            """
        findings = run_rules(tmp_path, {"m.py": source}, LockDisciplineRule)
        assert [f.rule for f in findings] == ["RPR001"]


class TestProtocolExhaustiveness:
    CONFIG = {
        "channels": [
            {
                "name": "pipe",
                "senders": ["client.py"],
                "handlers": ["server.py::handle"],
            }
        ]
    }
    CLIENT = """
        def call(conn):
            conn.send(("knn", 1, 2))
            conn.send(("ping",))
        """
    SERVER = """
        def handle(msg):
            if msg[0] == "knn":
                return 1
            if msg[0] == "ping":
                return 2
        """

    def test_passes_when_every_tag_has_an_arm(self, tmp_path):
        files = {"client.py": self.CLIENT, "server.py": self.SERVER}
        assert run_rules(
            tmp_path, files, ProtocolExhaustivenessRule, self.CONFIG
        ) == []

    def test_flags_sent_tag_without_handler(self, tmp_path):
        client = self.CLIENT + '    conn.send(("stop",))\n'
        files = {"client.py": client, "server.py": self.SERVER}
        findings = run_rules(
            tmp_path, files, ProtocolExhaustivenessRule, self.CONFIG
        )
        assert [f.rule for f in findings] == ["RPR002"]
        assert "'stop'" in findings[0].message

    def test_kinds_from_reads_declared_tuple(self, tmp_path):
        config = {
            "channels": [
                {
                    "name": "kinds",
                    "kinds_from": "proto.py::KINDS",
                    "handlers": ["server.py::handle"],
                }
            ]
        }
        files = {
            "proto.py": 'KINDS = ("knn", "extra")\n',
            "server.py": self.SERVER,
        }
        findings = run_rules(
            tmp_path, files, ProtocolExhaustivenessRule, config
        )
        assert [f.message for f in findings] == [
            "kinds: tag 'extra' is sent but no handler arm matches it "
            "on the receiving side"
        ]

    def test_strict_flags_dead_handler_arm(self, tmp_path):
        config = {"channels": [dict(self.CONFIG["channels"][0], strict=True)]}
        # SERVER ends with the closing-quote line's 8-space indent, so
        # the first appended line supplies only the remaining 4.
        server = self.SERVER + (
            '    if msg[0] == "ghost":\n'
            "                return 3\n"
        )
        files = {"client.py": self.CLIENT, "server.py": server}
        findings = run_rules(
            tmp_path, files, ProtocolExhaustivenessRule, config
        )
        assert ["ghost" in f.message for f in findings] == [True]


class TestAtomicWrite:
    CONFIG = {"modules": ["store.py"], "allow": ["integrity.py"]}

    def test_flags_bare_numpy_save(self, tmp_path):
        source = """
            import numpy as np

            def save(path, arr):
                np.save(path / "col.npy", arr)
            """
        findings = run_rules(
            tmp_path, {"store.py": source}, AtomicWriteRule, self.CONFIG
        )
        assert [f.rule for f in findings] == ["RPR003"]

    def test_passes_inside_staging_block(self, tmp_path):
        source = """
            import numpy as np
            from repro.integrity import atomic_directory

            def save(path, arr):
                with atomic_directory(path) as tmp:
                    np.save(tmp / "col.npy", arr)
                    with open(tmp / "meta.json", "w") as f:
                        f.write("{}")
            """
        assert run_rules(
            tmp_path, {"store.py": source}, AtomicWriteRule, self.CONFIG
        ) == []

    def test_flags_append_mode_open_and_write_text(self, tmp_path):
        source = """
            def record(path, line):
                with path.open("a") as f:
                    f.write(line)
                path.write_text(line)
            """
        findings = run_rules(
            tmp_path, {"store.py": source}, AtomicWriteRule, self.CONFIG
        )
        assert [f.rule for f in findings] == ["RPR003", "RPR003"]

    def test_allowlisted_module_is_exempt(self, tmp_path):
        source = """
            def publish(path, text):
                with open(path, "w") as f:
                    f.write(text)
            """
        config = dict(self.CONFIG, modules=["integrity.py"])
        assert run_rules(
            tmp_path, {"integrity.py": source}, AtomicWriteRule, config
        ) == []


class TestCountedOpPurity:
    CONFIG = {"kernels": ["kernel.py"]}

    def test_flags_wall_clock_in_kernel(self, tmp_path):
        source = """
            from time import perf_counter

            def search():
                return perf_counter()
            """
        findings = run_rules(
            tmp_path, {"kernel.py": source}, CountedOpPurityRule, self.CONFIG
        )
        assert {f.rule for f in findings} == {"RPR004"}
        assert len(findings) == 2  # the import and the use

    def test_sanctioned_clock_passes(self, tmp_path):
        source = """
            from repro.query.stats import counted_clock

            def search():
                return counted_clock()
            """
        assert run_rules(
            tmp_path, {"kernel.py": source}, CountedOpPurityRule, self.CONFIG
        ) == []

    def test_non_kernel_modules_are_out_of_scope(self, tmp_path):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        assert run_rules(
            tmp_path, {"other.py": source}, CountedOpPurityRule, self.CONFIG
        ) == []


class TestExceptionDiscipline:
    def test_flags_bare_except(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except:
                    return 2
            """
        findings = run_rules(tmp_path, {"m.py": source}, ExceptionDisciplineRule)
        assert [f.rule for f in findings] == ["RPR005"]
        assert "bare except" in findings[0].message

    def test_flags_silent_broad_catch(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """
        findings = run_rules(tmp_path, {"m.py": source}, ExceptionDisciplineRule)
        assert [f.rule for f in findings] == ["RPR005"]

    def test_broad_catch_that_observes_or_reraises_passes(self, tmp_path):
        source = """
            def f(log):
                try:
                    return 1
                except Exception as exc:
                    log(exc)
                try:
                    return 2
                except Exception:
                    raise
            """
        assert run_rules(tmp_path, {"m.py": source}, ExceptionDisciplineRule) == []

    def test_pipe_modules_must_raise_protocol_types(self, tmp_path):
        config = {
            "pipe_modules": ["worker.py"],
            "errors_module": "errors.py",
            "allowed_raises": ["ValueError"],
        }
        files = {
            "errors.py": "class WorkerDied(Exception):\n    pass\n",
            "worker.py": (
                "def f():\n"
                "    raise WorkerDied('ok')\n"
                "\n"
                "def g():\n"
                "    raise KeyError('not a wire type')\n"
            ),
        }
        findings = run_rules(
            tmp_path, files, ExceptionDisciplineRule, config
        )
        assert ["KeyError" in f.message for f in findings] == [True]


class TestTracingNoOp:
    CONFIG = {"inner_loop": ["kernel.py"]}

    def test_flags_unknown_span_method(self, tmp_path):
        source = """
            def serve(trace):
                with trace.span("x") as s:
                    s.close()
                    s.explode()
            """
        findings = run_rules(
            tmp_path, {"serve.py": source}, TracingNoOpRule, self.CONFIG
        )
        assert [f.rule for f in findings] == ["RPR006"]
        assert "s.explode" in findings[0].message

    def test_null_surface_calls_pass(self, tmp_path):
        source = """
            def serve(trace):
                with trace.span("x") as s:
                    s.count(hits=1)
                    s.add_stats(None)
                span = trace.begin("y")
                span.close()
            """
        assert run_rules(
            tmp_path, {"serve.py": source}, TracingNoOpRule, self.CONFIG
        ) == []

    def test_flags_obs_import_in_inner_loop(self, tmp_path):
        source = "from repro.obs.trace import NULL_TRACE\n"
        findings = run_rules(
            tmp_path, {"kernel.py": source}, TracingNoOpRule, self.CONFIG
        )
        assert [f.rule for f in findings] == ["RPR006"]
        assert "inner-loop" in findings[0].message

    def test_api_parsed_from_trace_module(self, tmp_path):
        # A NullSpan that really has .explode() makes the call legal.
        files = {
            "trace.py": (
                "class NullTrace:\n"
                "    def span(self, name, **labels):\n"
                "        return NullSpan()\n"
                "\n"
                "class NullSpan:\n"
                "    def explode(self):\n"
                "        pass\n"
            ),
            "serve.py": (
                "def serve(trace):\n"
                "    with trace.span('x') as s:\n"
                "        s.explode()\n"
            ),
        }
        config = dict(self.CONFIG, trace_module="trace.py")
        assert run_rules(tmp_path, files, TracingNoOpRule, config) == []


class TestDeadlinePropagation:
    def test_flags_dropped_budget(self, tmp_path):
        source = """
            def knn(q, k, time_cap=None):
                return search(q, k)

            def search(q, k, time_cap=None):
                return []
            """
        findings = run_rules(tmp_path, {"m.py": source}, DeadlinePropagationRule)
        assert [f.rule for f in findings] == ["RPR007"]
        assert "search" in findings[0].message

    def test_forwarded_budget_passes(self, tmp_path):
        source = """
            def knn(q, k, time_cap=None):
                return search(q, k, time_cap=time_cap)

            def search(q, k, time_cap=None):
                return []
            """
        assert run_rules(tmp_path, {"m.py": source}, DeadlinePropagationRule) == []

    def test_callers_without_a_budget_are_out_of_scope(self, tmp_path):
        source = """
            def warmup(q):
                return search(q, 1)

            def search(q, k, deadline=None):
                return []
            """
        assert run_rules(tmp_path, {"m.py": source}, DeadlinePropagationRule) == []


class TestSuppressions:
    SOURCE = """
        def f():
            try:
                return 1
            except Exception:{comment}
                pass
        """

    def _run(self, tmp_path, comment):
        source = self.SOURCE.format(comment=comment)
        return run_rules(tmp_path, {"m.py": source}, ExceptionDisciplineRule)

    def test_justified_ignore_suppresses(self, tmp_path):
        findings = self._run(
            tmp_path, "  # repro: ignore[RPR005] demo boundary, errors logged upstream"
        )
        assert [f.suppressed for f in findings] == [True]
        assert findings[0].justification == "demo boundary, errors logged upstream"

    def test_ignore_without_justification_stays_alive(self, tmp_path):
        findings = self._run(tmp_path, "  # repro: ignore[RPR005]")
        assert [f.suppressed for f in findings] == [False]
        assert "justification is required" in findings[0].message

    def test_ignore_for_other_rule_does_not_suppress(self, tmp_path):
        findings = self._run(tmp_path, "  # repro: ignore[RPR001] wrong rule")
        assert [f.suppressed for f in findings] == [False]

    def test_comment_line_above_suppresses(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                # repro: ignore[RPR005] demo boundary
                except Exception:
                    pass
            """
        findings = run_rules(tmp_path, {"m.py": source}, ExceptionDisciplineRule)
        assert [f.suppressed for f in findings] == [True]


class TestRunner:
    def _write_tree(self, tmp_path, source):
        (tmp_path / "analysis.toml").write_text(
            '[analysis]\npaths = ["pkg"]\n'
        )
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "m.py").write_text(textwrap.dedent(source))
        return tmp_path

    BAD = """
        def f():
            try:
                return 1
            except Exception:
                pass
        """

    def test_exit_one_and_json_round_trip_on_findings(self, tmp_path):
        root = self._write_tree(tmp_path, self.BAD)
        out = StringIO()
        status = run_check(
            as_json=True, config_path=root / "analysis.toml", out=out
        )
        assert status == 1
        report = json.loads(out.getvalue())
        assert report["summary"]["unsuppressed"] == 1
        round_tripped = [Finding.from_dict(f) for f in report["findings"]]
        assert [f.rule for f in round_tripped] == ["RPR005"]
        assert round_tripped[0].location.endswith("m.py:5")

    def test_exit_zero_on_clean_tree(self, tmp_path):
        root = self._write_tree(tmp_path, "def f():\n    return 1\n")
        out = StringIO()
        status = run_check(config_path=root / "analysis.toml", out=out)
        assert status == 0
        assert "0 finding(s)" in out.getvalue()

    def test_exit_zero_when_every_finding_is_suppressed(self, tmp_path):
        source = self.BAD.replace(
            "except Exception:",
            "except Exception:  # repro: ignore[RPR005] fixture boundary",
        )
        root = self._write_tree(tmp_path, source)
        out = StringIO()
        status = run_check(config_path=root / "analysis.toml", out=out)
        assert status == 0
        assert "1 suppressed" in out.getvalue()

    def test_unknown_rule_id_exits_two(self, tmp_path):
        root = self._write_tree(tmp_path, "x = 1\n")
        out = StringIO()
        status = run_check(
            rule_ids=["RPRXYZ"], config_path=root / "analysis.toml", out=out
        )
        assert status == 2

    def test_rule_filter_limits_the_run(self, tmp_path):
        root = self._write_tree(tmp_path, self.BAD)
        out = StringIO()
        status = run_check(
            rule_ids=["RPR001"], config_path=root / "analysis.toml", out=out
        )
        assert status == 0  # the RPR005 finding is filtered out

    def test_list_rules_names_every_rule(self, tmp_path):
        out = StringIO()
        assert run_check(list_rules=True, out=out) == 0
        listed = out.getvalue()
        for cls in ALL_RULES:
            assert cls.rule_id in listed

    def test_syntax_errors_surface_as_findings(self, tmp_path):
        root = self._write_tree(tmp_path, "def f(:\n")
        out = StringIO()
        status = run_check(config_path=root / "analysis.toml", out=out)
        assert status == 1
        assert "RPR000" in out.getvalue()


class TestRepositoryIsClean:
    def test_repro_check_is_green_on_the_repo(self):
        """The gate CI enforces: the shipped tree has no unsuppressed findings."""
        out = StringIO()
        assert run_check(out=out) == 0, out.getvalue()

    def test_every_rule_has_default_config_and_unique_id(self):
        ids = [cls.rule_id for cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        config = AnalysisConfig.discover()
        rules = make_rules(config)
        assert [r.rule_id for r in rules] == ids
