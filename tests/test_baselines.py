"""Unit tests for the Table-1 baseline storage schemes."""

import numpy as np
import pytest

from repro.baselines import ExplicitPathStorage, NextHopMatrix
from repro.network import PathNotFound, SpatialNetwork, grid_network


@pytest.fixture(scope="module")
def nh(grid_net):
    return NextHopMatrix.build(grid_net)


@pytest.fixture(scope="module")
def explicit(grid_net):
    return ExplicitPathStorage.build(grid_net)


class TestNextHopMatrix:
    def test_distances_match_matrix(self, nh, grid_dist, rng):
        n = grid_dist.shape[0]
        for _ in range(40):
            u, v = map(int, rng.integers(0, n, 2))
            assert nh.distance(u, v) == pytest.approx(grid_dist[u, v], rel=1e-12)

    def test_paths_are_shortest(self, nh, grid_net, grid_dist, rng):
        n = grid_dist.shape[0]
        for _ in range(20):
            u, v = map(int, rng.integers(0, n, 2))
            path = nh.path(u, v)
            assert path[0] == u and path[-1] == v
            total = sum(
                grid_net.edge_weight(a, b) for a, b in zip(path, path[1:])
            )
            assert total == pytest.approx(grid_dist[u, v], rel=1e-9, abs=1e-12)

    def test_storage_is_quadratic(self, nh, grid_net):
        n = grid_net.num_vertices
        assert nh.storage_bytes() == n * n * 4

    def test_requires_connectivity(self):
        net = SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        from repro.network import DisconnectedNetwork

        with pytest.raises(DisconnectedNetwork):
            NextHopMatrix.build(net)

    def test_unreachable_raises(self, nh):
        # grid_net is strongly connected, so fabricate a matrix
        bad = NextHopMatrix(nh.network, nh.first_hops.copy(), nh.dist)
        bad.first_hops[0, 5] = -1
        with pytest.raises(PathNotFound):
            bad.next_hop(0, 5)


class TestExplicitStorage:
    def test_paths_match_next_hop(self, explicit, nh, rng):
        n = explicit.network.num_vertices
        for _ in range(25):
            u, v = map(int, rng.integers(0, n, 2))
            assert explicit.path(u, v) == nh.path(u, v)

    def test_trivial_path(self, explicit):
        assert explicit.path(4, 4) == [4]

    def test_distance(self, explicit, grid_dist):
        assert explicit.distance(0, 30) == pytest.approx(grid_dist[0, 30])

    def test_storage_is_cubic_scale(self, explicit, nh):
        """Explicit storage strictly dominates the next-hop matrix."""
        assert explicit.storage_bytes() > nh.storage_bytes()

    def test_size_guard(self, small_net):
        with pytest.raises(ValueError):
            ExplicitPathStorage.build(small_net, max_vertices=10)


class TestStorageOrdering:
    def test_silc_smaller_than_next_hop_for_moderate_networks(
        self, grid_net, grid_index, nh
    ):
        """The paper's storage hierarchy at this scale.

        SILC's O(N^1.5) wins over next-hop's O(N^2) asymptotically; on
        a 64-vertex toy grid constant factors can mask it, so compare
        record counts directly: blocks should be well below N^2.
        """
        n = grid_net.num_vertices
        assert grid_index.total_blocks() < n * n
