"""bench-report: parsing and rendering the build-time and
serving-latency trajectories."""

import pytest

from repro.benchreport import (
    BuildRecord,
    ServeLatencyRecord,
    append_build_time,
    append_serve_latency,
    format_report,
    format_serve_report,
    parse_build_times,
    parse_serve_latency,
    report_file,
    serve_report_file,
)
from repro.cli import main

FIXTURE = """\
2026-07-01T10:00:00 n=1000 seed=42 workers=1 seconds=2.500
2026-07-02T10:00:00 n=1000 seed=42 workers=1 seconds=2.000

# a comment line
2026-07-03T10:00:00 n=1000 seed=42 workers=1 seconds=1.000
2026-07-03T11:00:00 n=3000 seed=42 workers=4 chunk_size=256 seconds=5.125
2026-07-04T11:00:00 n=3000 seed=42 workers=4 chunk_size=256 shards=4 seconds=5.250
2026-07-05T11:00:00 n=3000 seed=42 workers=1 chunk_size=256 shards=1 oracle=labels seconds=0.750
"""


class TestParse:
    def test_parses_fields(self):
        records = parse_build_times(FIXTURE)
        assert len(records) == 6
        assert records[0] == BuildRecord(
            stamp="2026-07-01T10:00:00", n=1000, seed=42, workers=1, seconds=2.5
        )
        assert records[3].workers == 4
        assert records[3].chunk_size == 256
        assert records[4].shards == 4
        assert records[5].oracle == "labels"

    def test_chunkless_legacy_lines_parse(self):
        records = parse_build_times(FIXTURE)
        assert records[0].chunk_size is None
        assert records[0].shards is None
        assert records[0].oracle is None
        assert records[3].shards is None
        assert records[4].oracle is None

    def test_blank_and_comment_lines_skipped(self):
        assert len(parse_build_times("\n# only a comment\n")) == 0

    def test_malformed_line_is_loud(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_build_times("2026-07-01T10:00:00 n=notanint seed=1\n")


class TestAppend:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "build_times.txt"
        append_build_time(3000, 42, 2, 256, 1.25, path=path)
        records = parse_build_times(path.read_text())
        assert len(records) == 1
        r = records[0]
        assert (r.n, r.seed, r.workers, r.chunk_size, r.seconds, r.shards) == (
            3000, 42, 2, 256, 1.25, 1
        )
        assert r.oracle == "silc"

    def test_shards_round_trip(self, tmp_path):
        path = tmp_path / "build_times.txt"
        append_build_time(1200, 42, 2, 256, 3.5, path=path, shards=4)
        r = parse_build_times(path.read_text())[0]
        assert r.shards == 4

    def test_oracle_round_trip(self, tmp_path):
        path = tmp_path / "build_times.txt"
        append_build_time(1200, 42, 1, 256, 0.4, path=path, oracle="labels")
        r = parse_build_times(path.read_text())[0]
        assert r.oracle == "labels"

    def test_appends_not_truncates(self, tmp_path):
        path = tmp_path / "build_times.txt"
        append_build_time(100, 1, 1, 64, 0.5, path=path)
        append_build_time(100, 1, 2, 64, 0.3, path=path)
        assert len(parse_build_times(path.read_text())) == 2


class TestFormat:
    def test_trajectory_columns(self):
        text = format_report(parse_build_times(FIXTURE))
        lines = text.splitlines()
        assert lines[0].split() == [
            "n", "workers", "chunk", "shards", "oracle", "builds",
            "first_s", "latest_s", "best_s", "median_s",
        ]
        row_1000 = next(l for l in lines if l.strip().startswith("1000"))
        assert row_1000.split() == [
            "1000", "1", "-", "-", "-", "3",
            "2.500", "1.000", "1.000", "2.000",
        ]
        row_3000 = next(l for l in lines if l.strip().startswith("3000"))
        assert row_3000.split()[:6] == ["3000", "1", "256", "1", "labels", "1"]
        sharded = next(
            l for l in lines if l.split()[:5] == ["3000", "4", "256", "4", "-"]
        )
        assert sharded.split()[5] == "1"
        assert "(6 builds, 2026-07-01T10:00:00 .. 2026-07-05T11:00:00)" in text

    def test_empty_history(self):
        assert "no build timings" in format_report([])


class TestReportFile:
    def test_reads_fixture_file(self, tmp_path):
        path = tmp_path / "build_times.txt"
        path.write_text(FIXTURE)
        text = report_file(path)
        assert "3000" in text and "5.125" in text

    def test_missing_file_is_a_message_not_an_error(self, tmp_path):
        text = report_file(tmp_path / "nope.txt")
        assert "no build-times history" in text


SERVE_FIXTURE = """\
2026-08-01T10:00:00 requests=50 shards=1 p50=0.004000 p95=0.009000 p99=0.012000
2026-08-02T10:00:00 requests=50 shards=1 p50=0.003000 p95=0.008000 p99=0.011000

# comment lines are skipped
2026-08-02T11:00:00 requests=50 shards=2 p50=0.006000 p95=0.015000 p99=0.020000
"""


class TestServeLatency:
    def test_parses_fields(self):
        records = parse_serve_latency(SERVE_FIXTURE)
        assert len(records) == 3
        assert records[0] == ServeLatencyRecord(
            stamp="2026-08-01T10:00:00", requests=50, shards=1,
            p50=0.004, p95=0.009, p99=0.012,
        )
        assert records[2].shards == 2

    def test_malformed_line_is_loud(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_serve_latency("2026-08-01T10:00:00 requests=x shards=1\n")

    def test_append_round_trips(self, tmp_path):
        path = tmp_path / "serve_latency.txt"
        append_serve_latency(25, 2, 0.001, 0.002, 0.003, path=path)
        append_serve_latency(30, 1, 0.004, 0.005, 0.006, path=path)
        records = parse_serve_latency(path.read_text())
        assert [(r.requests, r.shards) for r in records] == [(25, 2), (30, 1)]
        assert records[0].p95 == pytest.approx(0.002)

    def test_report_groups_by_shards(self):
        text = format_serve_report(parse_serve_latency(SERVE_FIXTURE))
        lines = text.splitlines()
        assert "latest_p95_ms" in lines[0]
        row_1 = next(l for l in lines[1:] if l.split()[0] == "1")
        assert row_1.split()[1] == "2"  # two runs in the shards=1 group
        assert "9.00" in row_1 and "8.00" in row_1
        row_2 = next(l for l in lines[1:] if l.split()[0] == "2")
        assert row_2.split()[1] == "1"

    def test_empty_and_missing_history(self, tmp_path):
        assert "no serve latencies" in format_serve_report([])
        assert "no serve-latency history" in serve_report_file(
            tmp_path / "nope"
        )


class TestCli:
    def test_bench_report_subcommand(self, tmp_path, capsys):
        path = tmp_path / "build_times.txt"
        path.write_text(FIXTURE)
        assert main(["bench-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "median_s" in out
        assert "5.125" in out

    def test_bench_report_includes_serve_trajectory(self, tmp_path, capsys):
        build = tmp_path / "build_times.txt"
        build.write_text(FIXTURE)
        serve = tmp_path / "serve_latency.txt"
        serve.write_text(SERVE_FIXTURE)
        assert main(["bench-report", str(build),
                     "--serve-results", str(serve)]) == 0
        out = capsys.readouterr().out
        assert "serve latency trajectory:" in out
        assert "latest_p95_ms" in out

    def test_bench_report_missing_file(self, tmp_path, capsys):
        assert main(["bench-report", str(tmp_path / "absent.txt")]) == 0
        assert "no build-times history" in capsys.readouterr().out
