"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def built(tmp_path, capsys):
    net_path = tmp_path / "net.txt"
    idx_path = tmp_path / "index.npz"
    assert main(["generate", str(net_path), "--size", "120", "--seed", "3"]) == 0
    assert main(["build", str(net_path), str(idx_path)]) == 0
    capsys.readouterr()
    return net_path, idx_path


@pytest.fixture()
def built_dir(tmp_path, capsys):
    """A directory-layout index (the layout that can carry labels)."""
    net_path = tmp_path / "net.txt"
    idx_path = tmp_path / "index.silc"
    assert main(["generate", str(net_path), "--size", "120", "--seed", "3"]) == 0
    assert main(["build", str(net_path), str(idx_path)]) == 0
    capsys.readouterr()
    return net_path, idx_path


def _rank_dists(out: str) -> list[float]:
    return [
        float(l.split("distance")[1])
        for l in out.splitlines()
        if l.startswith("#")
    ]


class TestGenerate:
    @pytest.mark.parametrize("kind", ["road", "grid", "planar"])
    def test_generates_loadable_network(self, kind, tmp_path, capsys):
        path = tmp_path / "net.txt"
        rc = main(["generate", str(path), "--kind", kind, "--size", "80"])
        assert rc == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "vertices" in out
        from repro.network import load_text

        net = load_text(path)
        net.require_strongly_connected()


class TestBuildAndStats:
    def test_stats_reports_blocks(self, built, capsys):
        net_path, idx_path = built
        assert main(["stats", str(net_path), str(idx_path)]) == 0
        out = capsys.readouterr().out
        assert "morton blocks" in out
        assert "blocks/vertex" in out

    def test_index_file_exists(self, built):
        _, idx_path = built
        assert idx_path.exists() and idx_path.stat().st_size > 0


class TestPath:
    def test_path_output(self, built, capsys):
        net_path, idx_path = built
        assert main(["path", str(net_path), str(idx_path), "0", "100"]) == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "network distance" in out
        first_line = out.splitlines()[0]
        assert first_line.startswith("0 ")
        assert first_line.strip().endswith(" 100")

    def test_path_matches_library(self, built, capsys):
        from repro.network import load_text, shortest_path

        net_path, idx_path = built
        main(["path", str(net_path), str(idx_path), "0", "100"])
        out = capsys.readouterr().out
        cli_dist = float(out.splitlines()[1].split(":")[1].split("(")[0])
        net = load_text(net_path)
        _, true_dist, _ = shortest_path(net, 0, 100)
        assert cli_dist == pytest.approx(true_dist, rel=1e-5)


class TestKnn:
    def test_knn_output(self, built, capsys):
        net_path, idx_path = built
        rc = main([
            "knn", str(net_path), str(idx_path),
            "--query", "0", "--k", "3", "--objects", "20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        ranks = [l for l in out.splitlines() if l.startswith("#")]
        assert len(ranks) == 3
        assert "refinements" in out

    def test_knn_matches_library(self, built, capsys):
        from repro.datasets import random_vertex_objects
        from repro.network import load_text
        from repro.objects import ObjectIndex
        from repro.query import knn
        from repro.silc import SILCIndex

        net_path, idx_path = built
        main([
            "knn", str(net_path), str(idx_path),
            "--query", "5", "--k", "3", "--objects", "20", "--seed", "1",
        ])
        out = capsys.readouterr().out
        cli_dists = [
            float(l.split("distance")[1]) for l in out.splitlines() if l.startswith("#")
        ]
        net = load_text(net_path)
        index = SILCIndex.load(idx_path, net)
        objects = random_vertex_objects(net, count=20, seed=1)
        oi = ObjectIndex(net, objects, index.embedding)
        lib = knn(index, oi, 5, 3, exact=True)
        assert cli_dists == pytest.approx(
            [n.distance for n in lib.neighbors], rel=1e-5
        )


class TestOracles:
    def test_build_labels_persists_columns(self, built_dir, capsys):
        net_path, idx_path = built_dir
        rc = main(["build-labels", str(net_path), str(idx_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pruned-landmark labelling" in out
        assert "calibrated planner cost model" in out
        labels_dir = idx_path / "labels"
        from repro.oracle import PrunedLabellingOracle

        assert PrunedLabellingOracle.saved_at(labels_dir)
        assert (labels_dir / "cost_model.json").exists()

    def test_build_labels_rejects_npz(self, built, capsys):
        net_path, idx_path = built
        rc = main(["build-labels", str(net_path), str(idx_path)])
        assert rc == 2
        assert "directory-layout" in capsys.readouterr().err

    @pytest.mark.parametrize("oracle", ["labels", "ine", "auto"])
    def test_oracle_backends_match_silc(self, oracle, built_dir, capsys):
        net_path, idx_path = built_dir
        main(["build-labels", str(net_path), str(idx_path)])
        capsys.readouterr()
        base_args = ["knn", str(net_path), str(idx_path),
                     "--query", "5", "--k", "3", "--objects", "20"]
        assert main(base_args + ["--oracle", "silc"]) == 0
        silc_dists = _rank_dists(capsys.readouterr().out)
        assert main(base_args + ["--oracle", oracle]) == 0
        assert _rank_dists(capsys.readouterr().out) == pytest.approx(
            silc_dists, rel=1e-9
        )

    def test_oracle_labels_builds_in_memory_without_saved(self, built,
                                                          capsys):
        net_path, idx_path = built
        rc = main(["knn", str(net_path), str(idx_path),
                   "--query", "5", "--k", "3", "--oracle", "labels"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "label scans" in captured.out
        assert "build-labels" in captured.err  # the persist hint

    def test_epsilon_relaxation(self, built, capsys):
        net_path, idx_path = built
        args = ["knn", str(net_path), str(idx_path),
                "--query", "5", "--k", "3", "--objects", "20"]
        assert main(args + ["--epsilon", "0"]) == 0
        exact = _rank_dists(capsys.readouterr().out)
        assert main(args + ["--epsilon", "0.5"]) == 0
        approx = _rank_dists(capsys.readouterr().out)
        assert len(approx) == len(exact) == 3
        # interval midpoints never undercut the exact distance, and the
        # (1+eps) contract bounds the kth overshoot
        assert approx[-1] <= (1 + 0.5) * exact[-1] + 1e-9


class TestServe:
    def test_serve_oracle_auto_matches_silc(self, built_dir, tmp_path,
                                            capsys):
        net_path, idx_path = built_dir
        main(["build-labels", str(net_path), str(idx_path)])
        capsys.readouterr()
        infile = tmp_path / "requests.jsonl"
        requests = [
            {"id": i, "kind": "knn", "query": q, "k": 3}
            for i, q in enumerate([0, 5, 37, 5])
        ]
        requests.append(
            {"id": 99, "kind": "knn", "query": 8, "k": 2, "oracle": "labels"}
        )
        infile.write_text("\n".join(json.dumps(r) for r in requests) + "\n")
        answers = {}
        for oracle in ("silc", "auto"):
            rc = main(["serve", str(net_path), str(idx_path),
                       "--objects", "20", "--seed", "1",
                       "--oracle", oracle, "--input", str(infile)])
            assert rc == 0
            records = [json.loads(l)
                       for l in capsys.readouterr().out.splitlines()]
            assert all(r["status"] == "ok" for r in records)
            answers[oracle] = {r["id"]: (r["ids"], r["distances"])
                               for r in records}
        assert answers["auto"].keys() == answers["silc"].keys()
        for rid, (ids, dists) in answers["silc"].items():
            assert answers["auto"][rid][0] == ids
            assert answers["auto"][rid][1] == pytest.approx(dists, rel=1e-9)

    def test_serve_rejects_unknown_oracle_request(self, built, tmp_path,
                                                  capsys):
        net_path, idx_path = built
        infile = tmp_path / "requests.jsonl"
        infile.write_text(
            json.dumps({"id": 1, "kind": "knn", "query": 0, "k": 2,
                        "oracle": "quantum"}) + "\n"
        )
        assert main(["serve", str(net_path), str(idx_path),
                     "--objects", "20", "--input", str(infile)]) == 0
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["status"] == "error"
        assert "quantum" in record["error"]
    def test_jsonl_loop_answers_requests(self, built, tmp_path, capsys):
        net_path, idx_path = built
        requests = [
            {"id": 1, "client": "web", "kind": "knn", "query": 0, "k": 3},
            {"id": 2, "client": "web", "kind": "distance", "source": 0, "target": 60},
            {"id": 3, "client": "bulk", "kind": "knn_batch",
             "queries": [4, 8, 15], "k": 2},
        ]
        infile = tmp_path / "requests.jsonl"
        infile.write_text("\n".join(json.dumps(r) for r in requests) + "\n")
        rc = main([
            "serve", str(net_path), str(idx_path),
            "--objects", "20", "--input", str(infile),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        records = [json.loads(l) for l in captured.out.splitlines()]
        by_id = {r["id"]: r for r in records}
        assert set(by_id) == {1, 2, 3}
        assert all(r["status"] == "ok" for r in records)
        assert len(by_id[1]["ids"]) == 3
        assert by_id[2]["distance"] > 0
        assert len(by_id[3]["ids"]) == 3  # one id list per batch query
        assert "latency p50" in captured.err  # metrics snapshot on stderr

    def test_serve_matches_knn_subcommand(self, built, tmp_path, capsys):
        net_path, idx_path = built
        infile = tmp_path / "requests.jsonl"
        infile.write_text(
            json.dumps({"id": 9, "kind": "knn", "query": 5, "k": 3}) + "\n"
        )
        main(["serve", str(net_path), str(idx_path),
              "--objects", "20", "--seed", "1", "--input", str(infile)])
        served = json.loads(capsys.readouterr().out.splitlines()[0])
        main(["knn", str(net_path), str(idx_path),
              "--query", "5", "--k", "3", "--objects", "20", "--seed", "1"])
        cli_dists = [
            float(l.split("distance")[1])
            for l in capsys.readouterr().out.splitlines() if l.startswith("#")
        ]
        assert served["distances"] == pytest.approx(cli_dists, rel=1e-5)

    def test_sharded_serve_matches_unsharded(self, built, tmp_path, capsys):
        net_path, idx_path = built
        infile = tmp_path / "requests.jsonl"
        requests = [
            {"id": i, "kind": "knn", "query": q, "k": 3}
            for i, q in enumerate([0, 5, 37])
        ]
        infile.write_text("\n".join(json.dumps(r) for r in requests) + "\n")
        main(["serve", str(net_path), str(idx_path),
              "--objects", "20", "--seed", "1", "--input", str(infile)])
        plain = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        rc = main(["serve", str(net_path), str(idx_path),
                   "--objects", "20", "--seed", "1", "--shards", "2",
                   "--input", str(infile)])
        assert rc == 0
        sharded = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        plain_by_id = {r["id"]: r for r in plain}
        for record in sharded:
            assert record["status"] == "ok"
            expected = plain_by_id[record["id"]]
            assert record["ids"] == expected["ids"]
            assert record["distances"] == pytest.approx(
                expected["distances"], rel=1e-5
            )

    def test_rejects_past_in_flight_cap(self, built, tmp_path, capsys):
        net_path, idx_path = built
        infile = tmp_path / "requests.jsonl"
        infile.write_text(
            json.dumps({"id": 1, "kind": "knn_batch",
                        "queries": list(range(20)), "k": 2}) + "\n"
        )
        rc = main([
            "serve", str(net_path), str(idx_path),
            "--objects", "20", "--max-in-flight", "5", "--input", str(infile),
        ])
        assert rc == 0
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["status"] == "rejected"
        # 20 queries can never fit under a cap of 5: terminal rejection
        assert record["reason"] == "request_too_large"
        assert record["retry_after"] == 0


class TestObservability:
    def _request_file(self, tmp_path, with_stats=True):
        infile = tmp_path / "requests.jsonl"
        requests = [
            {"id": i, "client": "web", "kind": "knn", "query": q, "k": 3}
            for i, q in enumerate([0, 5, 37])
        ]
        if with_stats:
            requests.append({"id": 99, "client": "ops", "kind": "stats"})
        infile.write_text("\n".join(json.dumps(r) for r in requests) + "\n")
        return infile

    def test_traced_serve_emits_traces_and_stats(self, built, tmp_path,
                                                 capsys):
        net_path, idx_path = built
        trace_path = tmp_path / "trace.jsonl"
        slow_path = tmp_path / "slow.jsonl"
        rc = main(["serve", str(net_path), str(idx_path),
                   "--objects", "20", "--seed", "1",
                   "--input", str(self._request_file(tmp_path)),
                   "--trace-file", str(trace_path),
                   "--slow-log", str(slow_path),
                   "--slow-threshold-ms", "0"])
        assert rc == 0
        out, err = capsys.readouterr()
        records = {json.loads(l)["id"]: json.loads(l)
                   for l in out.splitlines()}
        assert all(r["status"] == "ok" for r in records.values())
        # the stats request returned the live registry over the wire
        metrics = records[99]["metrics"]
        counter_names = {c["name"] for c in metrics["counters"]}
        assert {"requests_total", "traces_total"} <= counter_names
        # one trace per traced request (stats bypasses tracing)
        assert "3 traces" in err
        trace_lines = trace_path.read_text().splitlines()
        assert len(trace_lines) == 3
        # threshold 0 sends every trace to the slow log too
        assert len(slow_path.read_text().splitlines()) == 3

    def test_trace_report_renders_and_records(self, built, tmp_path,
                                              capsys):
        net_path, idx_path = built
        trace_path = tmp_path / "trace.jsonl"
        main(["serve", str(net_path), str(idx_path),
              "--objects", "20", "--seed", "1",
              "--input", str(self._request_file(tmp_path, with_stats=False)),
              "--trace-file", str(trace_path)])
        capsys.readouterr()
        lat_path = tmp_path / "serve_latency.txt"
        assert main(["trace-report", str(trace_path),
                     "--record", "--record-path", str(lat_path),
                     "--shards", "1"]) == 0
        out = capsys.readouterr().out
        assert "traces: 3" in out
        assert "p95_ms" in out
        from repro.benchreport import parse_serve_latency

        [row] = parse_serve_latency(lat_path.read_text())
        assert (row.requests, row.shards) == (3, 1)
        assert row.p95 >= row.p50 >= 0.0

    def test_trace_report_fails_loudly_on_bad_input(self, tmp_path, capsys):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"trace": "t-1"}\n')  # missing required keys
        assert main(["trace-report", str(bad)]) == 1
        assert "missing key" in capsys.readouterr().err
        assert main(["trace-report", str(tmp_path / "absent.jsonl")]) == 1

    def test_sharded_traced_serve_carries_worker_spans(self, built,
                                                       tmp_path, capsys):
        net_path, idx_path = built
        trace_path = tmp_path / "trace.jsonl"
        rc = main(["serve", str(net_path), str(idx_path),
                   "--objects", "20", "--seed", "1", "--shards", "2",
                   "--input",
                   str(self._request_file(tmp_path, with_stats=False)),
                   "--trace-file", str(trace_path)])
        assert rc == 0
        capsys.readouterr()
        from repro.obs import load_trace_file

        traces = load_trace_file(trace_path)  # validates every span
        names = {s["name"] for t in traces for s in t["spans"]}
        assert any(n.startswith("shard:") for n in names)
        assert "worker" in names


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
