"""Unit tests for dataset/workload generation."""

import pytest

from repro.datasets import (
    knn_workload,
    random_edge_objects,
    random_vertex_objects,
)
from repro.objects import EdgePosition, VertexPosition


class TestRandomVertexObjects:
    def test_density_count(self, small_net):
        objs = random_vertex_objects(small_net, density=0.1, seed=0)
        assert len(objs) == round(0.1 * small_net.num_vertices)

    def test_absolute_count(self, small_net):
        assert len(random_vertex_objects(small_net, count=7, seed=0)) == 7

    def test_exactly_one_spec(self, small_net):
        with pytest.raises(ValueError):
            random_vertex_objects(small_net)
        with pytest.raises(ValueError):
            random_vertex_objects(small_net, density=0.1, count=5)

    def test_distinct_vertices(self, small_net):
        objs = random_vertex_objects(small_net, count=50, seed=1)
        vertices = [o.position.vertex for o in objs]
        assert len(set(vertices)) == 50

    def test_deterministic(self, small_net):
        a = random_vertex_objects(small_net, count=10, seed=5)
        b = random_vertex_objects(small_net, count=10, seed=5)
        assert [o.position.vertex for o in a] == [o.position.vertex for o in b]

    def test_seed_changes_sample(self, small_net):
        a = random_vertex_objects(small_net, count=10, seed=5)
        b = random_vertex_objects(small_net, count=10, seed=6)
        assert [o.position.vertex for o in a] != [o.position.vertex for o in b]

    def test_bounds(self, small_net):
        with pytest.raises(ValueError):
            random_vertex_objects(small_net, density=0.0)
        with pytest.raises(ValueError):
            random_vertex_objects(small_net, count=0)
        with pytest.raises(ValueError):
            random_vertex_objects(small_net, count=10_000)

    def test_positions_are_vertices(self, small_net):
        objs = random_vertex_objects(small_net, count=5, seed=2)
        assert all(isinstance(o.position, VertexPosition) for o in objs)


class TestRandomEdgeObjects:
    def test_count_and_type(self, small_net):
        objs = random_edge_objects(small_net, count=9, seed=0)
        assert len(objs) == 9
        assert all(isinstance(o.position, EdgePosition) for o in objs)

    def test_fractions_interior(self, small_net):
        objs = random_edge_objects(small_net, count=20, seed=1)
        assert all(0.0 < o.position.fraction < 1.0 for o in objs)

    def test_count_validation(self, small_net):
        with pytest.raises(ValueError):
            random_edge_objects(small_net, count=0)


class TestWorkload:
    def test_workload_shape(self, small_net):
        w = knn_workload(small_net, density=0.1, k=5, num_queries=12, seed=3)
        assert len(w.queries) == 12
        assert w.k == 5
        assert w.density == pytest.approx(0.1, abs=0.01)

    def test_workload_deterministic(self, small_net):
        a = knn_workload(small_net, density=0.1, k=5, seed=3)
        b = knn_workload(small_net, density=0.1, k=5, seed=3)
        assert a.queries == b.queries
        assert [o.position.vertex for o in a.objects] == [
            o.position.vertex for o in b.objects
        ]

    def test_queries_are_valid_vertices(self, small_net):
        w = knn_workload(small_net, density=0.05, k=3, seed=1)
        assert all(0 <= q < small_net.num_vertices for q in w.queries)

    def test_num_queries_validation(self, small_net):
        with pytest.raises(ValueError):
            knn_workload(small_net, density=0.1, k=5, num_queries=0)
