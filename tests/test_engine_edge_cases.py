"""Edge-case and failure-injection tests for the query engine."""

import numpy as np
import pytest

from repro.datasets import random_vertex_objects
from repro.objects import ObjectIndex, ObjectSet
from repro.query import SILC_ALGORITHMS, browse, ine_knn, knn
from repro.silc import SILCIndex


class TestDegenerateObjectSets:
    @pytest.mark.parametrize("name,algo", list(SILC_ALGORITHMS.items()))
    def test_single_object(self, name, algo, small_net, small_index, small_dist):
        objects = ObjectSet.at_vertices(small_net, [99])
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        result = algo(small_index, oi, 0, 1, exact=True)
        assert result.ids() == [0]
        assert result.neighbors[0].distance == pytest.approx(
            small_dist[0, 99], rel=1e-9
        )

    def test_all_objects_on_one_vertex(self, small_net, small_index, small_dist):
        objects = ObjectSet.at_vertices(small_net, [42] * 7)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        result = knn(small_index, oi, 3, 5, exact=True)
        assert len(result) == 5
        for n in result.neighbors:
            assert n.distance == pytest.approx(small_dist[3, 42], rel=1e-9)

    def test_object_on_query_vertex(self, small_net, small_index):
        objects = ObjectSet.at_vertices(small_net, [17, 55, 80])
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        result = knn(small_index, oi, 17, 1, exact=True)
        assert result.ids() == [0]
        assert result.neighbors[0].distance == 0.0

    def test_query_equidistant_objects(self, grid_net, grid_index):
        """The kNN worst case (p.26): near-equidistant objects."""
        # on an 8x8 grid, the four corners are symmetric around center
        side = 8
        corners = [0, side - 1, side * (side - 1), side * side - 1]
        objects = ObjectSet.at_vertices(grid_net, corners)
        oi = ObjectIndex(grid_net, objects, grid_index.embedding)
        center = side * (side // 2) + side // 2
        result = knn(grid_index, oi, center, 2, exact=True)
        # still terminates with a correct 2-subset
        truth = ine_knn(oi, center, 2)
        np.testing.assert_allclose(
            sorted(n.distance for n in result.neighbors),
            sorted(n.distance for n in truth.neighbors),
            rtol=1e-9,
        )

    def test_k_equals_object_count(self, small_net, small_index, small_objects):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = knn(small_index, oi, 0, len(small_objects), exact=True)
        assert sorted(result.ids()) == sorted(small_objects.ids)

    def test_browse_empty_object_set_possible(self, small_net, small_index):
        """An object index over zero objects yields nothing."""
        oi = ObjectIndex(small_net, ObjectSet([]), small_index.embedding)
        assert list(browse(small_index, oi, 0)) == []
        result = knn(small_index, oi, 0, 3)
        assert len(result) == 0


class TestFailureInjection:
    def test_corrupted_next_hops_detected_by_path(self, small_net):
        """A cycle in next-hop data must raise, not loop forever."""
        index = SILCIndex.build(small_net)
        # corrupt: make some table claim a wrong first hop pointing back
        table = index.tables[0]
        victim_row = len(table) // 2
        colors = table.colors.copy()
        # find a row whose color has an edge back to 0 (guaranteed for
        # neighbors); set it to a neighbor to create a 2-cycle chance
        nbr = small_net.neighbors(0)[0][0]
        back = small_net.neighbors(nbr)[0][0]
        if back == 0:
            colors[:] = nbr  # everything claims 'via nbr'
            # and nbr's table claims 'via 0' for everything
            nbr_colors = index.tables[nbr].colors.copy()
            nbr_colors[:] = 0
            index.tables[nbr].colors.setflags(write=True)
            index.tables[nbr].colors[:] = nbr_colors
            index.tables[nbr]._lists()  # rebuild list mirrors
            index.tables[nbr]._colors_list = nbr_colors.tolist()
            table.colors.setflags(write=True)
            table.colors[:] = colors
            table._colors_list = colors.tolist()
            far = max(
                range(small_net.num_vertices),
                key=lambda v: small_net.euclidean(0, v),
            )
            with pytest.raises(RuntimeError):
                index.path(0, far)

    def test_refine_fully_guard(self, small_index):
        r = small_index.refinable(0, 140)
        with pytest.raises(RuntimeError):
            r.refine_fully(max_steps=0)


class TestDeterminism:
    def test_same_query_same_result(self, small_net, small_index, small_objects):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        a = knn(small_index, oi, 31, 5, exact=True)
        b = knn(small_index, oi, 31, 5, exact=True)
        assert a.ids() == b.ids()
        assert a.distances() == b.distances()
        assert a.stats.refinements == b.stats.refinements

    def test_rebuilt_index_same_answers(self, small_net, small_index, small_objects):
        index2 = SILCIndex.build(small_net)
        oi1 = ObjectIndex(small_net, small_objects, small_index.embedding)
        oi2 = ObjectIndex(small_net, small_objects, index2.embedding)
        a = knn(small_index, oi1, 64, 4, exact=True)
        b = knn(index2, oi2, 64, 4, exact=True)
        assert sorted(a.ids()) == sorted(b.ids())
