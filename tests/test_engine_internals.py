"""Unit tests for the kNN engine's internal structures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.bestfirst import _KMinDistTracker, _ResultQueue
from repro.query.stats import QueryStats


class TestResultQueue:
    def test_dk_before_k_candidates_is_inf(self):
        q = _ResultQueue(QueryStats())
        q.add(1, 5.0)
        assert q.dk(2) == math.inf

    def test_dk_is_kth_smallest_upper_bound(self):
        q = _ResultQueue(QueryStats())
        for oid, hi in enumerate([7.0, 3.0, 9.0, 5.0]):
            q.add(oid, hi)
        assert q.dk(1) == 3.0
        assert q.dk(2) == 5.0
        assert q.dk(3) == 7.0

    def test_update_moves_entry(self):
        q = _ResultQueue(QueryStats())
        q.add(0, 10.0)
        q.add(1, 20.0)
        q.update(0, 30.0)
        assert q.dk(1) == 20.0
        assert q.dk(2) == 30.0

    def test_update_many_entries_moves_the_right_one(self):
        q = _ResultQueue(QueryStats())
        for oid, hi in enumerate([7.0, 3.0, 9.0, 5.0]):
            q.add(oid, hi)
        q.update(1, 8.0)  # 3.0 -> 8.0
        assert q.dk(1) == 5.0
        assert q.dk(3) == 8.0
        assert q.dk(4) == 9.0
        assert len(q.entries) == 4

    def test_operations_are_counted_and_timed(self):
        stats = QueryStats()
        q = _ResultQueue(stats)
        q.add(0, 1.0)
        q.update(0, 2.0)
        q.dk(1)
        assert stats.l_ops == 3
        assert stats.l_time >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30),
           st.integers(1, 10))
    def test_dk_matches_sorted_reference(self, his, k):
        q = _ResultQueue(QueryStats())
        for oid, hi in enumerate(his):
            q.add(oid, hi)
        expected = sorted(his)[k - 1] if len(his) >= k else math.inf
        assert q.dk(k) == expected


class TestKMinDistTracker:
    def test_needs_k_candidates_or_blocks(self):
        t = _KMinDistTracker(2)
        assert t.value() == math.inf
        t.add(3.0)
        assert t.value() == math.inf  # only one candidate, no blocks
        t.add(5.0)
        assert t.value() == 5.0

    def test_block_bounds_cap_the_estimate(self):
        t = _KMinDistTracker(2)
        t.add(3.0)
        t.add(5.0)
        t.block_pushed(4.0)
        assert t.value() == 4.0  # hidden objects could be at 4.0
        t.block_popped(4.0)
        assert t.value() == 5.0

    def test_fewer_candidates_than_k_uses_block_floor(self):
        t = _KMinDistTracker(3)
        t.add(1.0)
        t.block_pushed(2.0)
        assert t.value() == 2.0

    def test_replace_tracks_refinement(self):
        t = _KMinDistTracker(2)
        t.add(3.0)
        t.add(5.0)
        t.replace(3.0, 4.5)
        assert t.value() == 5.0
        t.replace(5.0, 6.0)
        assert t.value() == 6.0

    def test_duplicate_bounds_handled(self):
        t = _KMinDistTracker(1)
        t.block_pushed(2.0)
        t.block_pushed(2.0)
        t.block_popped(2.0)
        assert t.value() == 2.0  # one copy remains

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0, 50, allow_nan=False), min_size=0, max_size=20),
        st.lists(st.floats(0, 50, allow_nan=False), min_size=0, max_size=8),
        st.integers(1, 6),
    )
    def test_value_matches_reference_model(self, lows, blocks, k):
        t = _KMinDistTracker(k)
        for lo in lows:
            t.add(lo)
        for b in blocks:
            t.block_pushed(b)
        min_block = min(blocks) if blocks else math.inf
        if len(lows) < k:
            expected = min_block
        else:
            expected = min(sorted(lows)[k - 1], min_block)
        assert t.value() == expected


class TestQueryStatsMerge:
    def test_merge_sums_counters(self):
        a = QueryStats(refinements=3, max_queue=5, l_time=0.1, elapsed=1.0)
        b = QueryStats(refinements=4, max_queue=2, l_time=0.2, elapsed=2.0)
        m = a.merge(b)
        assert m.refinements == 7
        assert m.max_queue == 7  # summed (callers divide for averages)
        assert m.l_time == pytest.approx(0.3)
        assert m.elapsed == pytest.approx(3.0)

    def test_merge_does_not_mutate_operands(self):
        a = QueryStats(refinements=3)
        b = QueryStats(refinements=4)
        a.merge(b)
        assert a.refinements == 3 and b.refinements == 4
