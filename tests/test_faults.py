"""The deterministic fault-injection harness itself.

Chaos tests are only as trustworthy as the injector: these pin down
its contracts -- kills fire exactly once at the scripted 1-based
ordinal, delays fire per request, file faults damage bytes the way an
interrupted write or a bad disk would -- with a fake worker, so no
processes are involved.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, corrupt_file, truncate_file


class FakeWorker:
    def __init__(self):
        self.kills = 0

    def kill(self):
        self.kills += 1


class TestFaultInjector:
    def test_kill_fires_exactly_once_at_nth_request(self):
        injector = FaultInjector().kill_worker_at(0, 3)
        worker = FakeWorker()
        for _ in range(5):
            injector.before_request(0, worker)
        assert worker.kills == 1
        assert injector.request_counts[0] == 5
        assert injector.fired("worker_kill") == 1
        assert ("worker_kill", 0, 3) in injector.events

    def test_kills_are_per_shard(self):
        injector = FaultInjector().kill_worker_at(1, 1)
        w0, w1 = FakeWorker(), FakeWorker()
        injector.before_request(0, w0)
        injector.before_request(0, w0)
        assert w0.kills == 0  # shard 0 was never scripted
        injector.before_request(1, w1)
        assert w1.kills == 1

    def test_scripting_is_chainable(self):
        injector = FaultInjector()
        assert injector.kill_worker_at(0, 1).delay_pipe(1, 0.0) is injector

    def test_delay_fires_per_request(self):
        injector = FaultInjector().delay_pipe(2, 0.001)
        worker = FakeWorker()
        injector.before_request(2, worker)
        injector.before_request(2, worker)
        assert injector.fired("pipe_delay") == 2
        assert worker.kills == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultInjector().kill_worker_at(0, 0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultInjector().delay_pipe(0, -1.0)


class TestFileFaults:
    def test_truncate_keeps_half_by_default(self, tmp_path):
        path = tmp_path / "column.npy"
        np.save(path, np.arange(1000, dtype=np.int64))
        size = path.stat().st_size
        kept = truncate_file(path)
        assert kept == size // 2
        assert path.stat().st_size == kept

    def test_truncate_explicit_and_bounds(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 100)
        assert truncate_file(path, keep_bytes=10) == 10
        with pytest.raises(ValueError):
            truncate_file(path, keep_bytes=11)  # file is now 10 bytes

    def test_corrupt_flips_one_byte_size_preserving(self, tmp_path):
        path = tmp_path / "f.bin"
        original = bytes(range(16))
        path.write_bytes(original)
        corrupt_file(path)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert damaged[:-1] == original[:-1]
        assert damaged[-1] == original[-1] ^ 0xFF
        # XOR is an involution: corrupting twice restores the byte.
        corrupt_file(path)
        assert path.read_bytes() == original

    def test_corrupt_validation(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_file(path)
        path.write_bytes(b"ab")
        with pytest.raises(ValueError, match="range"):
            corrupt_file(path, offset=2)
