"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import GridEmbedding, Point, Rect
from repro.geometry.morton import MAX_ORDER, morton_encode


class TestEmbeddingConstruction:
    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            GridEmbedding(Rect(0, 0, 1, 1), 0)
        with pytest.raises(ValueError):
            GridEmbedding(Rect(0, 0, 1, 1), MAX_ORDER + 1)

    def test_rejects_zero_area(self):
        with pytest.raises(ValueError):
            GridEmbedding(Rect(0, 0, 0, 1), 4)

    def test_for_points_encloses_everything(self):
        xs = np.array([1.0, 5.0, -2.0])
        ys = np.array([0.0, 3.0, 7.0])
        emb = GridEmbedding.for_points(xs, ys, order=6)
        for x, y in zip(xs, ys):
            assert emb.bounds.contains_xy(x, y)

    def test_for_points_needs_points(self):
        with pytest.raises(ValueError):
            GridEmbedding.for_points(np.array([]), np.array([]), order=4)

    def test_for_points_square_bounds(self):
        emb = GridEmbedding.for_points(
            np.array([0.0, 10.0]), np.array([0.0, 1.0]), order=4
        )
        assert emb.bounds.width == pytest.approx(emb.bounds.height)


class TestCellMapping:
    def test_cells_per_side(self):
        emb = GridEmbedding(Rect(0, 0, 16, 16), 4)
        assert emb.cells_per_side == 16
        assert emb.cell_width == 1.0

    def test_cell_of_interior_point(self):
        emb = GridEmbedding(Rect(0, 0, 16, 16), 4)
        assert emb.cell_of(Point(3.5, 7.2)) == (3, 7)

    def test_cell_of_clamps_boundary(self):
        emb = GridEmbedding(Rect(0, 0, 16, 16), 4)
        assert emb.cell_of(Point(16.0, 16.0)) == (15, 15)
        assert emb.cell_of(Point(-5.0, 20.0)) == (0, 15)

    def test_array_matches_scalar(self):
        emb = GridEmbedding(Rect(0, 0, 10, 10), 5)
        xs = np.array([0.1, 3.7, 9.99])
        ys = np.array([5.5, 0.0, 2.4])
        cx, cy = emb.cells_of_array(xs, ys)
        for i in range(3):
            assert (cx[i], cy[i]) == emb.cell_of(Point(xs[i], ys[i]))

    def test_morton_of_array(self):
        emb = GridEmbedding(Rect(0, 0, 8, 8), 3)
        codes = emb.morton_of_array(np.array([1.5]), np.array([2.5]))
        assert codes[0] == morton_encode(1, 2)


class TestBlockRects:
    def test_root_block_is_whole_grid(self):
        emb = GridEmbedding(Rect(0, 0, 32, 32), 5)
        assert emb.block_world_rect(0, 5) == Rect(0, 0, 32, 32)

    def test_cell_block_rect(self):
        emb = GridEmbedding(Rect(0, 0, 8, 8), 3)
        r = emb.block_world_rect(morton_encode(2, 3), 0)
        assert r == Rect(2, 3, 3, 4)

    @given(
        st.integers(0, 7),
        st.integers(0, 7),
    )
    def test_point_in_its_cell_rect(self, cx, cy):
        emb = GridEmbedding(Rect(0, 0, 8, 8), 3)
        p = Point(cx + 0.5, cy + 0.5)
        code = morton_encode(*emb.cell_of(p))
        assert emb.block_world_rect(code, 0).contains_point(p)
