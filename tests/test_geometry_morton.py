"""Unit tests for repro.geometry.morton."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    MAX_ORDER,
    block_cells,
    block_contains,
    block_rect,
    blocks_overlap,
    child_blocks,
    morton_decode,
    morton_encode,
    parent_block,
)
from repro.geometry.morton import common_block, is_aligned, morton_encode_array

coords = st.integers(min_value=0, max_value=(1 << MAX_ORDER) - 1)
levels = st.integers(min_value=0, max_value=MAX_ORDER)


class TestEncoding:
    def test_origin_is_zero(self):
        assert morton_encode(0, 0) == 0

    def test_unit_steps(self):
        # x occupies even bits, y odd bits.
        assert morton_encode(1, 0) == 1
        assert morton_encode(0, 1) == 2
        assert morton_encode(1, 1) == 3

    def test_z_order_of_2x2(self):
        codes = [morton_encode(x, y) for y in (0, 1) for x in (0, 1)]
        assert codes == [0, 1, 2, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(1 << MAX_ORDER, 0)
        with pytest.raises(ValueError):
            morton_encode(-1, 0)

    def test_decode_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_decode(-1)
        with pytest.raises(ValueError):
            morton_decode(1 << (2 * MAX_ORDER))

    @given(coords, coords)
    def test_round_trip(self, x, y):
        assert morton_decode(morton_encode(x, y)) == (x, y)

    @given(coords, coords)
    def test_locality_within_rows(self, x, y):
        # Same cell encodes identically; different cells differ.
        assert morton_encode(x, y) == morton_encode(x, y)

    def test_distinct_cells_distinct_codes(self):
        codes = {morton_encode(x, y) for x in range(16) for y in range(16)}
        assert len(codes) == 256

    def test_array_encoding_matches_scalar(self):
        xs = np.array([0, 1, 5, 100, 30000])
        ys = np.array([0, 1, 7, 200, 12345])
        got = morton_encode_array(xs, ys)
        expected = [morton_encode(int(x), int(y)) for x, y in zip(xs, ys)]
        assert got.tolist() == expected

    def test_array_encoding_range_check(self):
        with pytest.raises(ValueError):
            morton_encode_array(np.array([1 << MAX_ORDER]), np.array([0]))


class TestBlockAlgebra:
    def test_block_cells(self):
        assert block_cells(0) == 1
        assert block_cells(1) == 4
        assert block_cells(3) == 64

    def test_block_cells_range(self):
        with pytest.raises(ValueError):
            block_cells(-1)
        with pytest.raises(ValueError):
            block_cells(MAX_ORDER + 1)

    def test_alignment(self):
        assert is_aligned(0, 2)
        assert is_aligned(16, 2)
        assert not is_aligned(4, 2)

    def test_containment(self):
        # Block (0, 1) covers codes 0..3.
        assert block_contains(0, 1, 3)
        assert not block_contains(0, 1, 4)

    def test_parent_child_round_trip(self):
        children = child_blocks(16, 2)
        assert len(children) == 4
        for code, level in children:
            assert parent_block(code, level) == (16, 2)

    def test_children_partition_parent(self):
        total = sum(block_cells(lv) for _, lv in child_blocks(0, 3))
        assert total == block_cells(3)

    def test_parent_of_root_rejected(self):
        with pytest.raises(ValueError):
            parent_block(0, MAX_ORDER)

    def test_split_of_cell_rejected(self):
        with pytest.raises(ValueError):
            child_blocks(0, 0)

    def test_overlap_nested(self):
        assert blocks_overlap(0, 2, 4, 1)
        assert blocks_overlap(4, 1, 0, 2)

    def test_overlap_disjoint(self):
        assert not blocks_overlap(0, 1, 4, 1)

    def test_block_rect_of_cell(self):
        r = block_rect(morton_encode(3, 5), 0)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (3.0, 5.0, 4.0, 6.0)

    def test_block_rect_of_level(self):
        r = block_rect(0, 2)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0.0, 0.0, 4.0, 4.0)

    def test_common_block_of_identical(self):
        assert common_block(7, 7) == (7, 0)

    def test_common_block_of_siblings(self):
        assert common_block(0, 3) == (0, 1)

    @given(coords, coords)
    def test_common_block_contains_both(self, x, y):
        a = morton_encode(x, y)
        b = morton_encode(y % (1 << MAX_ORDER), x % (1 << MAX_ORDER))
        code, level = common_block(a, b)
        assert block_contains(code, level, a)
        assert block_contains(code, level, b)

    @given(st.integers(0, (1 << (2 * MAX_ORDER)) - 1), levels)
    def test_block_rect_is_square_with_level_side(self, code, level):
        aligned = code - (code % block_cells(level))
        r = block_rect(aligned, level)
        assert r.width == r.height == (1 << level)

    @given(st.integers(0, (1 << (2 * MAX_ORDER)) - 1), st.integers(1, MAX_ORDER))
    def test_children_tile_in_z_order(self, code, level):
        aligned = code - (code % block_cells(level))
        children = child_blocks(aligned, level)
        starts = [c for c, _ in children]
        assert starts == sorted(starts)
        assert starts[0] == aligned
        # contiguous: each child starts where the previous ends
        for (c1, l1), (c2, _) in zip(children, children[1:]):
            assert c1 + block_cells(l1) == c2
