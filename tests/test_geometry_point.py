"""Unit tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, euclidean

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPointBasics:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == pytest.approx(7.0)

    def test_midpoint(self):
        m = Point(0, 0).midpoint(Point(2, 6))
        assert (m.x, m.y) == (1.0, 3.0)

    def test_lerp_endpoints(self):
        a, b = Point(1, 1), Point(5, 9)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b

    def test_lerp_midpoint_matches_midpoint(self):
        a, b = Point(1, 1), Point(5, 9)
        assert a.lerp(b, 0.5) == a.midpoint(b)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_points_are_hashable_and_equal_by_value(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_points_are_immutable(self):
        p = Point(0, 0)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_free_function_matches_method(self):
        assert euclidean(0, 0, 3, 4) == Point(0, 0).distance_to(Point(3, 4))


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite, finite, finite)
    def test_manhattan_dominates_euclidean(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.manhattan_to(b) >= a.distance_to(b) - 1e-9

    @given(finite, finite, finite, finite, st.floats(0, 1))
    def test_lerp_stays_on_segment(self, ax, ay, bx, by, t):
        a, b = Point(ax, ay), Point(bx, by)
        p = a.lerp(b, t)
        total = a.distance_to(b)
        assert a.distance_to(p) + p.distance_to(b) == pytest.approx(
            total, abs=max(1e-6, total * 1e-9)
        )
