"""Unit tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def points(draw):
    return Point(draw(coord), draw(coord))


class TestRectBasics:
    def test_degenerate_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_zero_area_rect_allowed(self):
        r = Rect(1, 2, 1, 2)
        assert r.width == 0 and r.height == 0

    def test_dimensions(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.center == Point(2, 1)

    def test_corners_order(self):
        r = Rect(0, 0, 1, 2)
        assert r.corners() == (
            Point(0, 0),
            Point(1, 0),
            Point(1, 2),
            Point(0, 2),
        )

    def test_contains_point_boundary_inclusive(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not Rect(1, 1, 9, 9).contains_rect(outer)

    def test_intersection_and_union(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.intersection(b) == Rect(1, 1, 2, 2)
        assert a.union(b) == Rect(0, 0, 3, 3)

    def test_disjoint_intersection_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_touching_rects_intersect(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_quadrants_partition(self):
        r = Rect(0, 0, 4, 4)
        sw, se, nw, ne = r.quadrants()
        assert sw == Rect(0, 0, 2, 2)
        assert se == Rect(2, 0, 4, 2)
        assert nw == Rect(0, 2, 2, 4)
        assert ne == Rect(2, 2, 4, 4)


class TestRectDistances:
    def test_min_distance_inside_is_zero(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(1, 1)) == 0.0

    def test_min_distance_to_side(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(5, 1)) == pytest.approx(3.0)

    def test_min_distance_to_corner(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(Point(4, 5)) == pytest.approx(5.0)

    def test_max_distance_reaches_far_corner(self):
        assert Rect(0, 0, 3, 4).max_distance_to_point(Point(0, 0)) == pytest.approx(5.0)

    def test_rect_to_rect_distance(self):
        assert Rect(0, 0, 1, 1).min_distance_to_rect(Rect(4, 5, 6, 7)) == pytest.approx(5.0)
        assert Rect(0, 0, 2, 2).min_distance_to_rect(Rect(1, 1, 3, 3)) == 0.0


class TestRectProperties:
    @given(rects(), points())
    def test_min_le_max_distance(self, r, p):
        assert r.min_distance_to_point(p) <= r.max_distance_to_point(p) + 1e-9

    @given(rects(), points())
    def test_mindist_lower_bounds_all_corners(self, r, p):
        mind = r.min_distance_to_point(p)
        for c in r.corners():
            assert mind <= p.distance_to(c) + 1e-9

    @given(rects(), points())
    def test_maxdist_upper_bounds_all_corners(self, r, p):
        maxd = r.max_distance_to_point(p)
        for c in r.corners():
            assert maxd >= p.distance_to(c) - 1e-9

    @given(rects())
    def test_quadrants_cover_and_tile(self, r):
        quads = r.quadrants()
        assert sum(q.width * q.height for q in quads) == pytest.approx(
            r.width * r.height, rel=1e-9, abs=1e-9
        )
        for q in quads:
            assert r.contains_rect(q)

    @given(rects(), rects())
    def test_intersection_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        ia, ib = a.intersection(b), b.intersection(a)
        assert ia == ib

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)
