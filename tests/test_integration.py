"""Integration tests: end-to-end scenarios across modules."""

import numpy as np
import pytest

from repro import (
    ObjectIndex,
    SILCIndex,
    ine_knn,
    knn,
    road_like_network,
)
from repro.datasets import knn_workload, random_vertex_objects
from repro.network import distance_matrix
from repro.storage import NetworkStorageModel


class TestDecoupling:
    """The paper's core architectural claim: index once, vary S and q."""

    def test_one_index_many_object_sets(self, small_net, small_index, small_dist):
        for seed in range(3):
            objs = random_vertex_objects(small_net, count=15, seed=seed)
            oi = ObjectIndex(small_net, objs, small_index.embedding)
            result = knn(small_index, oi, 0, 5, exact=True)
            truth = sorted(
                float(small_dist[0, o.position.vertex]) for o in objs
            )[:5]
            np.testing.assert_allclose(
                sorted(n.distance for n in result.neighbors), truth, rtol=1e-9
            )

    def test_one_index_many_queries(self, small_index, small_object_index):
        results = [
            knn(small_index, small_object_index, q, 3, exact=True)
            for q in (0, 25, 50, 75, 100)
        ]
        assert all(len(r) == 3 for r in results)


class TestNetworkUpdates:
    """Road closure: derive a new network, rebuild, answers change."""

    def test_closure_reroutes(self):
        net = road_like_network(100, seed=30)
        idx = SILCIndex.build(net)
        # find a used edge on some shortest path
        path = idx.path(0, 60)
        a, b = path[1], path[2]
        closed = net.without_edges([(a, b), (b, a)])
        if closed.num_strongly_connected_components() != 1:
            pytest.skip("closure disconnected this network")
        idx2 = SILCIndex.build(closed)
        d_old = idx.distance(0, 60)
        d_new = idx2.distance(0, 60)
        assert d_new >= d_old - 1e-9
        new_path = idx2.path(0, 60)
        assert (a, b) not in set(zip(new_path, new_path[1:]))
        # new distance still matches ground truth on the closed network
        D = distance_matrix(closed)
        assert d_new == pytest.approx(D[0, 60], rel=1e-9)


class TestPersistenceWorkflow:
    def test_save_load_then_query(self, tmp_path, small_net, small_index, small_objects, small_dist):
        path = tmp_path / "silc.npz"
        small_index.save(path)
        loaded = SILCIndex.load(path, small_net)
        oi = ObjectIndex(small_net, small_objects, loaded.embedding)
        result = knn(loaded, oi, 10, 4, exact=True)
        truth = sorted(
            float(small_dist[10, o.position.vertex]) for o in small_objects
        )[:4]
        np.testing.assert_allclose(
            sorted(n.distance for n in result.neighbors), truth, rtol=1e-9
        )


class TestWorkloadAgreement:
    """All algorithms agree on a full workload (the paper's setup)."""

    def test_silc_equals_ine_on_workload(self, small_net, small_index):
        w = knn_workload(small_net, density=0.15, k=6, num_queries=10, seed=17)
        oi = ObjectIndex(small_net, w.objects, small_index.embedding)
        for q in w.queries:
            silc = knn(small_index, oi, q, w.k, exact=True)
            ine = ine_knn(oi, q, w.k)
            np.testing.assert_allclose(
                sorted(n.distance for n in silc.neighbors),
                sorted(n.distance for n in ine.neighbors),
                rtol=1e-9,
            )


class TestStorageIntegration:
    def test_io_accounting_full_stack(self, small_net, small_index, small_objects):
        sim = small_index.make_storage(cache_fraction=0.05)
        small_index.attach_storage(sim)
        try:
            oi = ObjectIndex(small_net, small_objects, small_index.embedding)
            result = knn(small_index, oi, 0, 5)
            assert result.stats.io_accesses > 0
            assert result.stats.io_misses <= result.stats.io_accesses
            assert result.stats.io_time == pytest.approx(
                result.stats.io_misses * sim.miss_latency
            )
        finally:
            small_index.detach_storage()

    def test_warm_cache_reduces_misses(self, small_net, small_index, small_objects):
        sim = small_index.make_storage(cache_fraction=0.5)
        small_index.attach_storage(sim)
        try:
            oi = ObjectIndex(small_net, small_objects, small_index.embedding)
            first = knn(small_index, oi, 0, 5).stats.io_misses
            second = knn(small_index, oi, 0, 5).stats.io_misses
            assert second <= first
        finally:
            small_index.detach_storage()

    def test_ine_uses_network_pages(self, small_net, small_object_index):
        storage = NetworkStorageModel(small_net, cache_fraction=0.05)
        r = ine_knn(small_object_index, 0, 5, storage=storage)
        assert r.stats.io_accesses == r.stats.settled


class TestDijkstraAvoidance:
    """The motivating claim: SILC touches only the path, Dijkstra the world."""

    def test_path_retrieval_touches_path_length_blocks(self, small_net, small_index):
        from repro.network import shortest_path

        u, v = 0, 140
        path_len = len(small_index.path(u, v))
        _, _, stats = shortest_path(small_net, u, v)
        # Dijkstra settles a large fraction of the network...
        assert stats.settled > path_len * 2
        # ...while SILC performs exactly one probe per link.
        sim = small_index.make_storage(cache_fraction=1.0)
        small_index.attach_storage(sim)
        try:
            before = sim.stats.accesses
            small_index.path(u, v)
            probes = sim.stats.accesses - before
            assert probes == path_len - 1
        finally:
            small_index.detach_storage()
