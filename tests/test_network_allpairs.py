"""Unit tests for repro.network.allpairs (first-hop extraction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    all_pairs_rows,
    distance_matrix,
    first_hops_from_predecessors,
    grid_network,
    road_like_network,
    shortest_path_tree,
    single_source_row,
)


class TestFirstHops:
    def test_first_hop_matches_path(self, small_net):
        dist, first = single_source_row(small_net, 0)
        tree = shortest_path_tree(small_net, 0)
        for v in range(1, small_net.num_vertices):
            assert first[v] == tree.path_to(v)[1]

    def test_source_maps_to_itself(self, small_net):
        _, first = single_source_row(small_net, 17)
        assert first[17] == 17

    def test_first_hop_is_a_neighbor(self, small_net):
        _, first = single_source_row(small_net, 5)
        neighbors = {v for v, _ in small_net.neighbors(5)}
        for v in range(small_net.num_vertices):
            if v != 5:
                assert int(first[v]) in neighbors

    def test_distances_match_scipy(self, small_net, small_dist):
        dist, _ = single_source_row(small_net, 9)
        np.testing.assert_allclose(dist, small_dist[9], rtol=1e-12)

    def test_unreachable_marked(self):
        # One-way edge: from vertex 1 nothing is reachable.
        from repro.network import SpatialNetwork

        net = SpatialNetwork([0.0, 3.0], [0.0, 0.0], [(0, 1, 3.0)])
        _, first = single_source_row(net, 1)
        assert first[0] == -1
        assert first[1] == 1

    def test_predecessor_matrix_shape_validation(self):
        with pytest.raises(ValueError):
            first_hops_from_predecessors(np.zeros((2, 4), dtype=np.int32), [0])


class TestChunking:
    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 1000])
    def test_chunk_size_does_not_change_results(self, chunk_size):
        net = grid_network(4, 4, jitter=0.1, seed=1)
        rows = {s: (d.copy(), f.copy()) for s, d, f in all_pairs_rows(net, chunk_size)}
        assert set(rows) == set(range(16))
        base = {s: (d.copy(), f.copy()) for s, d, f in all_pairs_rows(net, 16)}
        for s in rows:
            np.testing.assert_allclose(rows[s][0], base[s][0])
            np.testing.assert_array_equal(rows[s][1], base[s][1])

    def test_source_subset(self, small_net):
        rows = list(all_pairs_rows(small_net, chunk_size=8, sources=[2, 5, 7]))
        assert [r[0] for r in rows] == [2, 5, 7]

    def test_invalid_chunk_size(self, small_net):
        with pytest.raises(ValueError):
            list(all_pairs_rows(small_net, chunk_size=0))

    def test_distance_matrix_symmetric_for_symmetric_net(self):
        net = grid_network(4, 4, seed=0)
        D = distance_matrix(net)
        np.testing.assert_allclose(D, D.T, rtol=1e-12)


class TestFirstHopsProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_first_hop_starts_a_true_shortest_path(self, seed):
        """On random road networks: d(u,v) = w(u,f) + d(f,v) for f=first hop."""
        net = road_like_network(40, seed=seed)
        D = distance_matrix(net)
        source = seed % 40
        dist, first = single_source_row(net, source)
        for v in range(40):
            if v == source:
                continue
            f = int(first[v])
            w = net.edge_weight(source, f)
            assert w + D[f, v] == pytest.approx(D[source, v], rel=1e-9)
