"""Unit tests for repro.network.astar."""

import numpy as np
import pytest

from repro.network import (
    PathNotFound,
    SpatialNetwork,
    astar_path,
    network_distance,
    shortest_path,
)


class TestAStarCorrectness:
    def test_matches_dijkstra_distance(self, small_net, small_dist, rng):
        for _ in range(40):
            u, v = map(int, rng.integers(0, small_net.num_vertices, 2))
            _, dist, _ = astar_path(small_net, u, v)
            assert dist == pytest.approx(small_dist[u, v], rel=1e-9)

    def test_path_weights_sum_to_distance(self, small_net):
        path, dist, _ = astar_path(small_net, 0, 120)
        total = sum(
            small_net.edge_weight(a, b) for a, b in zip(path, path[1:])
        )
        assert total == pytest.approx(dist, rel=1e-9)

    def test_source_equals_target(self, small_net):
        path, dist, _ = astar_path(small_net, 5, 5)
        assert path == [5]
        assert dist == 0.0

    def test_unreachable_raises(self):
        net = SpatialNetwork([0.0, 5.0], [0.0, 0.0], [(1, 0, 5.0)])
        with pytest.raises(PathNotFound):
            astar_path(net, 0, 1)

    def test_zero_heuristic_is_dijkstra(self, small_net, small_dist):
        _, dist, stats0 = astar_path(small_net, 0, 100, heuristic_scale=0.0)
        assert dist == pytest.approx(small_dist[0, 100], rel=1e-9)

    def test_negative_scale_rejected(self, small_net):
        with pytest.raises(ValueError):
            astar_path(small_net, 0, 1, heuristic_scale=-1.0)


class TestAStarEfficiency:
    def test_settles_no_more_than_dijkstra(self, small_net, rng):
        """The Euclidean heuristic must only focus the search."""
        worse = 0
        for _ in range(20):
            u, v = map(int, rng.integers(0, small_net.num_vertices, 2))
            if u == v:
                continue
            _, _, astar_stats = astar_path(small_net, u, v)
            _, _, dij_stats = shortest_path(small_net, u, v)
            if astar_stats.settled > dij_stats.settled:
                worse += 1
        # A* occasionally ties but should essentially never settle more.
        assert worse <= 1

    def test_network_distance_helper(self, small_net, small_dist):
        assert network_distance(small_net, 3, 77) == pytest.approx(
            small_dist[3, 77], rel=1e-9
        )
        assert network_distance(small_net, 3, 3) == 0.0
