"""Unit tests for repro.network.dijkstra."""

import math

import numpy as np
import pytest

from repro.network import (
    IncrementalDijkstra,
    PathNotFound,
    SpatialNetwork,
    distance_matrix,
    shortest_path,
    shortest_path_tree,
)


def line_net(n=5):
    """A path graph 0 - 1 - ... - n-1 with unit weights, both directions."""
    edges = []
    for i in range(n - 1):
        edges.append((i, i + 1, 1.0))
        edges.append((i + 1, i, 1.0))
    return SpatialNetwork(list(range(n)), [0.0] * n, edges)


class TestShortestPathTree:
    def test_distances_on_line(self):
        tree = shortest_path_tree(line_net(), 0)
        assert tree.dist == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_path_reconstruction(self):
        tree = shortest_path_tree(line_net(), 0)
        assert tree.path_to(4) == [0, 1, 2, 3, 4]
        assert tree.path_to(0) == [0]

    def test_unreachable_raises(self):
        net = SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        tree = shortest_path_tree(net, 1)
        with pytest.raises(PathNotFound):
            tree.path_to(0)

    def test_matches_scipy_on_random_network(self, small_net, small_dist):
        for source in (0, 7, 42):
            tree = shortest_path_tree(small_net, source)
            np.testing.assert_allclose(tree.dist, small_dist[source], rtol=1e-12)

    def test_early_exit_settles_fewer(self, small_net):
        full = shortest_path_tree(small_net, 0)
        targeted = shortest_path_tree(small_net, 0, targets=[1])
        assert targeted.stats.settled <= full.stats.settled
        assert targeted.dist[1] == full.dist[1]

    def test_early_exit_multiple_targets(self, small_net, small_dist):
        targets = [3, 10, 99]
        tree = shortest_path_tree(small_net, 5, targets=targets)
        for t in targets:
            assert tree.dist[t] == pytest.approx(small_dist[5, t])

    def test_stats_counters_positive(self, small_net):
        tree = shortest_path_tree(small_net, 0)
        assert tree.stats.settled == small_net.num_vertices
        assert tree.stats.relaxed >= tree.stats.settled
        assert tree.stats.pushes >= tree.stats.settled


class TestPointToPoint:
    def test_path_and_distance(self):
        path, dist, _ = shortest_path(line_net(), 1, 4)
        assert path == [1, 2, 3, 4]
        assert dist == pytest.approx(3.0)

    def test_takes_cheaper_route(self):
        # Triangle where the direct edge is more expensive than detour.
        net = SpatialNetwork(
            [0.0, 1.0, 0.5],
            [0.0, 0.0, 1.0],
            [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)],
        )
        path, dist, _ = shortest_path(net, 0, 1)
        assert path == [0, 2, 1]
        assert dist == pytest.approx(2.0)

    def test_unreachable(self):
        net = SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(1, 0, 1.0)])
        with pytest.raises(PathNotFound):
            shortest_path(net, 0, 1)


class TestIncremental:
    def test_settles_in_distance_order(self, small_net):
        inc = IncrementalDijkstra(small_net, 0)
        prev = -1.0
        while True:
            nxt = inc.settle_next()
            if nxt is None:
                break
            assert nxt[1] >= prev
            prev = nxt[1]

    def test_expand_until_bounded(self, small_net, small_dist):
        inc = IncrementalDijkstra(small_net, 0)
        limit = float(np.median(small_dist[0]))
        settled = dict(inc.expand_until(limit))
        for v, d in settled.items():
            assert d <= limit
            assert d == pytest.approx(small_dist[0, v])
        # resuming with a larger limit continues, not restarts
        more = dict(inc.expand_until(limit * 2))
        assert not (set(settled) & set(more))

    def test_matches_full_dijkstra(self, small_net, small_dist):
        inc = IncrementalDijkstra(small_net, 3)
        while inc.settle_next() is not None:
            pass
        np.testing.assert_allclose(inc.dist, small_dist[3], rtol=1e-12)

    def test_frontier_distance_is_next_settle(self, small_net):
        inc = IncrementalDijkstra(small_net, 0)
        inc.settle_next()
        f = inc.next_frontier_distance()
        v, d = inc.settle_next()
        assert d == pytest.approx(f)

    def test_exhausted(self):
        inc = IncrementalDijkstra(line_net(3), 0)
        count = 0
        while inc.settle_next() is not None:
            count += 1
        assert count == 3
        assert inc.exhausted
        assert inc.next_frontier_distance() == math.inf

    def test_seeds_multi_source(self):
        net = line_net(7)
        inc = IncrementalDijkstra(net, seeds=[(0, 0.0), (6, 0.0)])
        dists = {}
        while True:
            s = inc.settle_next()
            if s is None:
                break
            dists[s[0]] = s[1]
        assert dists[3] == pytest.approx(3.0)
        assert dists[5] == pytest.approx(1.0)

    def test_seeds_with_offsets(self):
        inc = IncrementalDijkstra(line_net(5), seeds=[(0, 2.5)])
        s = inc.settle_next()
        assert s == (0, 2.5)

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            IncrementalDijkstra(line_net(3), seeds=[(0, -1.0)])
        with pytest.raises(ValueError):
            IncrementalDijkstra(line_net(3), 0, seeds=[(0, 0.0)])
        with pytest.raises(ValueError):
            IncrementalDijkstra(line_net(3))

    def test_is_settled(self, small_net):
        inc = IncrementalDijkstra(small_net, 0)
        v, _ = inc.settle_next()
        assert inc.is_settled(v)
        assert not inc.exhausted
