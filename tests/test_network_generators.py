"""Unit tests for repro.network.generators."""

import numpy as np
import pytest

from repro.network import (
    GraphConstructionError,
    grid_network,
    random_planar_network,
    road_like_network,
)


class TestGridNetwork:
    def test_vertex_and_edge_counts(self):
        net = grid_network(3, 4)
        assert net.num_vertices == 12
        # undirected lattice edges: 3*3 horizontal + 2*4 vertical = 17,
        # stored directed in both orientations
        assert net.num_edges == 34

    def test_strongly_connected(self):
        grid_network(5, 5, jitter=0.3, seed=2).require_strongly_connected()

    def test_metric_weights(self):
        net = grid_network(4, 4, jitter=0.2, weight_noise=0.5, seed=1)
        assert net.min_euclidean_ratio() >= 1.0 - 1e-12

    def test_zero_noise_weights_equal_lengths(self):
        net = grid_network(3, 3)
        for u, v, w in net.iter_edges():
            assert w == pytest.approx(net.euclidean(u, v))

    def test_deterministic_under_seed(self):
        a = grid_network(4, 4, jitter=0.2, seed=7)
        b = grid_network(4, 4, jitter=0.2, seed=7)
        np.testing.assert_array_equal(a.xs, b.xs)
        assert list(a.iter_edges()) == list(b.iter_edges())

    def test_different_seeds_differ(self):
        a = grid_network(4, 4, jitter=0.2, seed=1)
        b = grid_network(4, 4, jitter=0.2, seed=2)
        assert not np.array_equal(a.xs, b.xs)

    def test_parameter_validation(self):
        with pytest.raises(GraphConstructionError):
            grid_network(1, 5)
        with pytest.raises(GraphConstructionError):
            grid_network(3, 3, jitter=1.5)
        with pytest.raises(GraphConstructionError):
            grid_network(3, 3, weight_noise=-0.1)


class TestRandomPlanarNetwork:
    def test_strongly_connected(self):
        random_planar_network(60, seed=0).require_strongly_connected()

    def test_metric_weights(self):
        net = random_planar_network(60, seed=1)
        assert net.min_euclidean_ratio() >= 1.0 - 1e-12

    def test_delaunay_degree_is_high(self):
        net = random_planar_network(200, seed=2)
        avg_degree = net.num_edges / net.num_vertices
        assert 4.0 < avg_degree < 7.0  # directed edges => ~2x undirected deg/2

    def test_too_few_points_rejected(self):
        with pytest.raises(GraphConstructionError):
            random_planar_network(2)

    def test_deterministic(self):
        a = random_planar_network(30, seed=3)
        b = random_planar_network(30, seed=3)
        assert list(a.iter_edges()) == list(b.iter_edges())


class TestRoadLikeNetwork:
    def test_strongly_connected_many_seeds(self):
        for seed in range(5):
            road_like_network(120, seed=seed).require_strongly_connected()

    def test_metric_weights(self):
        net = road_like_network(150, seed=4)
        assert net.min_euclidean_ratio() >= 1.0 - 1e-12

    def test_road_like_degree(self):
        """Average out-degree should resemble road networks (~2-3.5)."""
        net = road_like_network(400, seed=5)
        avg = net.num_edges / net.num_vertices
        assert 2.0 <= avg <= 4.0

    def test_sparser_than_delaunay(self):
        road = road_like_network(300, seed=6)
        dela = random_planar_network(300, seed=6)
        assert road.num_edges < dela.num_edges

    def test_arterials_are_cheaper_per_length(self):
        net = road_like_network(300, seed=7, arterial_fraction=0.2)
        ratios = sorted(
            w / net.euclidean(u, v) for u, v, w in net.iter_edges()
        )
        # two weight tiers must exist
        assert ratios[0] == pytest.approx(1.0, rel=1e-6)
        assert ratios[-1] > 1.3

    def test_bidirectional(self):
        net = road_like_network(100, seed=8)
        for u, v, w in net.iter_edges():
            assert net.edge_weight(v, u) == pytest.approx(w)

    def test_requested_size(self):
        assert road_like_network(137, seed=0).num_vertices == 137

    def test_parameter_validation(self):
        with pytest.raises(GraphConstructionError):
            road_like_network(2)
        with pytest.raises(GraphConstructionError):
            road_like_network(50, extra_edge_fraction=1.5)
        with pytest.raises(GraphConstructionError):
            road_like_network(50, arterial_fraction=-0.1)
        with pytest.raises(GraphConstructionError):
            road_like_network(50, local_penalty=0.5)

    def test_distinct_positions(self):
        """SILC requires distinct vertex cells; positions must be unique."""
        net = road_like_network(500, seed=9)
        coords = set(zip(net.xs.tolist(), net.ys.tolist()))
        assert len(coords) == 500
