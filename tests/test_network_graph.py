"""Unit tests for repro.network.graph."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.network import (
    DisconnectedNetwork,
    EdgeNotFound,
    GraphConstructionError,
    SpatialNetwork,
    VertexNotFound,
)


def triangle():
    """A strongly connected 3-cycle with distinct weights."""
    return SpatialNetwork(
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)],
    )


class TestConstruction:
    def test_basic_counts(self):
        net = triangle()
        assert net.num_vertices == 3
        assert net.num_edges == 3

    def test_rejects_empty(self):
        with pytest.raises(GraphConstructionError):
            SpatialNetwork([], [], [])

    def test_rejects_mismatched_coords(self):
        with pytest.raises(GraphConstructionError):
            SpatialNetwork([0.0], [0.0, 1.0], [])

    def test_rejects_nonfinite_coords(self):
        with pytest.raises(GraphConstructionError):
            SpatialNetwork([0.0, np.nan], [0.0, 1.0], [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphConstructionError):
            SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 0, 1.0)])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(GraphConstructionError):
            SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, 0.0)])
        with pytest.raises(GraphConstructionError):
            SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, -2.0)])

    def test_rejects_bad_vertex_ids(self):
        with pytest.raises(VertexNotFound):
            SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 5, 1.0)])

    def test_parallel_edges_keep_minimum(self):
        net = SpatialNetwork(
            [0.0, 1.0], [0.0, 0.0], [(0, 1, 5.0), (0, 1, 2.0), (0, 1, 9.0)]
        )
        assert net.num_edges == 1
        assert net.edge_weight(0, 1) == 2.0

    def test_directed_edges_are_independent(self):
        net = SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0), (1, 0, 7.0)])
        assert net.edge_weight(0, 1) == 1.0
        assert net.edge_weight(1, 0) == 7.0


class TestAccess:
    def test_vertex_point(self):
        assert triangle().vertex_point(1) == Point(1.0, 0.0)

    def test_vertex_bounds_checked(self):
        with pytest.raises(VertexNotFound):
            triangle().vertex_point(3)
        with pytest.raises(VertexNotFound):
            triangle().neighbors(-1)

    def test_neighbors_sorted(self):
        net = SpatialNetwork(
            [0.0, 1.0, 2.0],
            [0.0, 0.0, 0.0],
            [(0, 2, 1.0), (0, 1, 1.0)],
        )
        assert [v for v, _ in net.neighbors(0)] == [1, 2]

    def test_in_neighbors(self):
        net = triangle()
        assert net.in_neighbors(0) == ((2, 3.0),)

    def test_missing_edge_raises(self):
        with pytest.raises(EdgeNotFound):
            triangle().edge_weight(1, 0)

    def test_has_edge(self):
        net = triangle()
        assert net.has_edge(0, 1)
        assert not net.has_edge(1, 0)

    def test_euclidean(self):
        assert triangle().euclidean(0, 1) == pytest.approx(1.0)

    def test_iter_edges_complete(self):
        assert sorted(triangle().iter_edges()) == [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 0, 3.0),
        ]

    def test_out_degree(self):
        assert triangle().out_degree(0) == 1


class TestViews:
    def test_csr_matches_edges(self):
        csr = triangle().to_csr()
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 1.0
        assert csr[2, 0] == 3.0
        assert csr[1, 0] == 0.0

    def test_csr_cached(self):
        net = triangle()
        assert net.to_csr() is net.to_csr()

    def test_bounding_box(self):
        bb = triangle().bounding_box()
        assert (bb.xmin, bb.ymin, bb.xmax, bb.ymax) == (0.0, 0.0, 1.0, 1.0)

    def test_min_euclidean_ratio(self):
        # edge 0->1 has length 1 and weight 1 -> ratio 1 is the minimum
        assert triangle().min_euclidean_ratio() == pytest.approx(1.0)

    def test_nearest_vertex(self):
        assert triangle().nearest_vertex(Point(0.9, 0.1)) == 1


class TestConnectivity:
    def test_triangle_strongly_connected(self):
        triangle().require_strongly_connected()

    def test_disconnected_detected(self):
        net = SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        assert net.num_strongly_connected_components() == 2
        with pytest.raises(DisconnectedNetwork):
            net.require_strongly_connected()


class TestDerivation:
    def test_with_edges(self):
        net = triangle().with_edges([(1, 0, 4.0)])
        assert net.edge_weight(1, 0) == 4.0
        assert net.num_edges == 4

    def test_without_edges(self):
        net = triangle().without_edges([(0, 1)])
        assert not net.has_edge(0, 1)
        assert net.num_edges == 2

    def test_derivation_does_not_mutate_original(self):
        net = triangle()
        net.without_edges([(0, 1)])
        assert net.has_edge(0, 1)
