"""Unit tests for repro.network.io."""

import numpy as np
import pytest

from repro.network import (
    GraphConstructionError,
    load_npz,
    load_text,
    road_like_network,
    save_npz,
    save_text,
)


def assert_networks_equal(a, b):
    np.testing.assert_allclose(a.xs, b.xs)
    np.testing.assert_allclose(a.ys, b.ys)
    assert sorted(a.iter_edges()) == sorted(b.iter_edges())


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path, small_net):
        path = tmp_path / "net.npz"
        save_npz(small_net, path)
        assert_networks_equal(small_net, load_npz(path))

    def test_preserves_exact_weights(self, tmp_path):
        net = road_like_network(50, seed=1)
        path = tmp_path / "net.npz"
        save_npz(net, path)
        loaded = load_npz(path)
        for (u1, v1, w1), (u2, v2, w2) in zip(
            sorted(net.iter_edges()), sorted(loaded.iter_edges())
        ):
            assert (u1, v1) == (u2, v2)
            assert w1 == w2  # bit-exact


class TestTextRoundTrip:
    def test_round_trip(self, tmp_path, small_net):
        path = tmp_path / "net.txt"
        save_text(small_net, path)
        assert_networks_equal(small_net, load_text(path))

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text(
            "# a comment\n\nv 0 0.0 0.0\nv 1 1.0 0.0\ne 0 1 1.5\n"
        )
        net = load_text(path)
        assert net.num_vertices == 2
        assert net.edge_weight(0, 1) == 1.5

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("v 0 0.0 0.0\nx nonsense\n")
        with pytest.raises(GraphConstructionError):
            load_text(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphConstructionError):
            load_text(path)

    def test_non_contiguous_ids_rejected(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("v 0 0.0 0.0\nv 2 1.0 0.0\n")
        with pytest.raises(GraphConstructionError):
            load_text(path)
