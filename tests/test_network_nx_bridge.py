"""Tests for the NetworkX bridge."""

import networkx as nx
import numpy as np
import pytest

from repro.network import GraphConstructionError
from repro.network.nx_bridge import from_networkx, to_networkx


class TestExport:
    def test_round_trip(self, small_net):
        graph = to_networkx(small_net)
        back = from_networkx(graph)
        np.testing.assert_allclose(back.xs, small_net.xs)
        np.testing.assert_allclose(back.ys, small_net.ys)
        assert sorted(back.iter_edges()) == sorted(small_net.iter_edges())

    def test_export_shape(self, small_net):
        graph = to_networkx(small_net)
        assert graph.number_of_nodes() == small_net.num_vertices
        assert graph.number_of_edges() == small_net.num_edges
        assert graph.is_directed()

    def test_export_attributes(self, small_net):
        graph = to_networkx(small_net)
        assert graph.nodes[0]["x"] == pytest.approx(float(small_net.xs[0]))
        u, v, w = next(iter(small_net.iter_edges()))
        assert graph[u][v]["weight"] == pytest.approx(w)


class TestImport:
    def test_undirected_is_symmetrized(self):
        graph = nx.Graph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, weight=2.0)
        net = from_networkx(graph)
        assert net.edge_weight(0, 1) == 2.0
        assert net.edge_weight(1, 0) == 2.0

    def test_pos_attribute_accepted(self):
        graph = nx.Graph()
        graph.add_node("a", pos=(0.0, 0.0))
        graph.add_node("b", pos=(3.0, 4.0))
        graph.add_edge("a", "b")
        net = from_networkx(graph)
        # missing weight defaults to Euclidean length
        assert net.edge_weight(0, 1) == pytest.approx(5.0)

    def test_string_nodes_relabeled_sorted(self):
        graph = nx.Graph()
        graph.add_node("z", x=1.0, y=0.0)
        graph.add_node("a", x=0.0, y=0.0)
        graph.add_edge("a", "z", weight=1.0)
        net = from_networkx(graph)
        assert net.vertex_point(0).x == 0.0  # 'a' -> 0
        assert net.vertex_point(1).x == 1.0  # 'z' -> 1

    def test_missing_position_rejected(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(GraphConstructionError):
            from_networkx(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_networkx(nx.Graph())

    def test_custom_weight_key(self):
        graph = nx.DiGraph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, travel_time=7.0)
        net = from_networkx(graph, weight="travel_time")
        assert net.edge_weight(0, 1) == 7.0

    def test_imported_graph_is_indexable(self):
        """End to end: NetworkX in, SILC queries out."""
        graph = nx.grid_2d_graph(5, 5)
        for (gx, gy) in graph.nodes:
            graph.nodes[(gx, gy)]["x"] = float(gx)
            graph.nodes[(gx, gy)]["y"] = float(gy)
        net = from_networkx(graph)
        net.require_strongly_connected()
        from repro.silc import SILCIndex

        index = SILCIndex.build(net)
        assert index.distance(0, net.num_vertices - 1) == pytest.approx(8.0)
