"""Tests for extent objects (the paper's face/extent input type, p.21)."""

import numpy as np
import pytest

from repro.objects import (
    EdgePosition,
    ExtentPosition,
    ObjectIndex,
    ObjectSet,
    VertexPosition,
    position_parts,
    position_point,
)
from repro.query import ier_knn, ine_knn, knn, browse, resolve_location
from repro.query.distances import QueryHandle


def make_extent_set(net, rng, count=8, parts_per=3):
    """Random extent objects made of vertex and edge parts."""
    extents = []
    for _ in range(count):
        parts = []
        for _ in range(parts_per):
            if rng.random() < 0.5:
                parts.append(VertexPosition(int(rng.integers(0, net.num_vertices))))
            else:
                u = int(rng.integers(0, net.num_vertices))
                v, _ = net.neighbors(u)[0]
                parts.append(EdgePosition(u, v, float(rng.uniform(0.1, 0.9))))
        extents.append(parts)
    return ObjectSet.with_extents(net, extents)


def part_distance(net, D, q, part):
    if isinstance(part, VertexPosition):
        return float(D[q, part.vertex])
    d = D[q, part.a] + part.fraction * net.edge_weight(part.a, part.b)
    if net.has_edge(part.b, part.a):
        d = min(
            d,
            D[q, part.b] + (1 - part.fraction) * net.edge_weight(part.b, part.a),
        )
    return float(d)


def extent_truth(net, D, q, objects):
    out = []
    for o in objects:
        d = min(
            part_distance(net, D, q, part) for part in position_parts(o.position)
        )
        out.append((d, o.oid))
    return sorted(out)


class TestModel:
    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError):
            ExtentPosition(())

    def test_nested_extent_rejected(self):
        inner = ExtentPosition((VertexPosition(0),))
        with pytest.raises(TypeError):
            ExtentPosition((inner,))

    def test_position_parts(self):
        ext = ExtentPosition((VertexPosition(0), VertexPosition(1)))
        assert position_parts(ext) == ext.parts
        assert position_parts(VertexPosition(3)) == (VertexPosition(3),)

    def test_centroid_point(self, small_net):
        ext = ExtentPosition((VertexPosition(0), VertexPosition(1)))
        p = position_point(small_net, ext)
        a, b = small_net.vertex_point(0), small_net.vertex_point(1)
        assert p == a.midpoint(b)

    def test_with_extents_validates_parts(self, small_net):
        from repro.network import VertexNotFound

        with pytest.raises(VertexNotFound):
            ObjectSet.with_extents(small_net, [[VertexPosition(10_000)]])

    def test_extent_set_flags_edge_parts(self, small_net):
        u, (v, _) = 0, small_net.neighbors(0)[0]
        objs = ObjectSet.with_extents(
            small_net, [[VertexPosition(3), EdgePosition(u, v, 0.5)]]
        )
        assert objs.has_edge_objects()

    def test_query_location_cannot_be_extent(self, small_net):
        from repro.query import source_anchors

        with pytest.raises(TypeError):
            source_anchors(small_net, ExtentPosition((VertexPosition(0),)))


class TestDistances:
    def test_extent_distance_is_min_over_parts(
        self, small_net, small_index, small_dist, rng
    ):
        objects = make_extent_set(small_net, rng)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        handle = QueryHandle(
            small_index, oi, resolve_location(small_net, 4)
        )
        for o in objects:
            truth = min(
                part_distance(small_net, small_dist, 4, part)
                for part in position_parts(o.position)
            )
            state = handle.object_state(o)
            assert state.interval.lo - 1e-9 <= truth <= state.interval.hi + 1e-9
            assert state.refine_fully() == pytest.approx(truth, rel=1e-9)


class TestQueries:
    def test_knn_with_extents(self, small_net, small_index, small_dist, rng):
        objects = make_extent_set(small_net, rng)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        for q in (0, 55, 120):
            truth = extent_truth(small_net, small_dist, q, objects)[:4]
            result = knn(small_index, oi, q, 4, exact=True)
            got = sorted(n.distance for n in result.neighbors)
            np.testing.assert_allclose(got, [d for d, _ in truth], rtol=1e-9)

    def test_no_duplicate_reports(self, small_net, small_index, rng):
        objects = make_extent_set(small_net, rng)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        result = knn(small_index, oi, 10, len(objects), exact=True)
        assert len(result.ids()) == len(set(result.ids())) == len(objects)

    def test_browse_yields_each_extent_once(self, small_net, small_index, rng):
        objects = make_extent_set(small_net, rng)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        emitted = [n.oid for n in browse(small_index, oi, 33)]
        assert sorted(emitted) == sorted(objects.ids)

    def test_ine_matches_silc(self, small_net, small_index, rng):
        objects = make_extent_set(small_net, rng)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        silc = knn(small_index, oi, 77, 5, exact=True)
        ine = ine_knn(oi, 77, 5)
        np.testing.assert_allclose(
            sorted(n.distance for n in silc.neighbors),
            sorted(n.distance for n in ine.neighbors),
            rtol=1e-9,
        )

    def test_ier_matches_silc(self, small_net, small_index, rng):
        objects = make_extent_set(small_net, rng)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        silc = knn(small_index, oi, 99, 5, exact=True)
        ier = ier_knn(oi, 99, 5)
        np.testing.assert_allclose(
            sorted(n.distance for n in silc.neighbors),
            sorted(n.distance for n in ier.neighbors),
            rtol=1e-9,
        )
