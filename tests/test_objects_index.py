"""Unit tests for the object index (PMR wrapper)."""

import numpy as np

from repro.datasets import random_edge_objects, random_vertex_objects
from repro.objects import ObjectIndex


class TestVertexLookups:
    def test_objects_at_vertex(self, small_net, small_index, small_objects):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        placed = {}
        for o in small_objects:
            placed.setdefault(o.position.vertex, []).append(o.oid)
        for v, oids in placed.items():
            assert sorted(oi.objects_at_vertex(v)) == sorted(oids)

    def test_objects_at_empty_vertex(self, small_net, small_object_index):
        with_objects = set(small_object_index.vertices_with_objects())
        empty = next(
            v for v in range(small_net.num_vertices) if v not in with_objects
        )
        assert small_object_index.objects_at_vertex(empty) == []

    def test_get(self, small_object_index, small_objects):
        for o in small_objects:
            assert small_object_index.get(o.oid) is small_objects[o.oid]


class TestEdgeFlags:
    def test_vertex_only_tree_has_no_edge_flags(self, small_object_index):
        for node in small_object_index.tree.iter_nodes():
            assert not small_object_index.has_edge_objects(node)

    def test_edge_objects_flagged_up_to_root(self, small_net, small_index):
        objs = random_edge_objects(small_net, count=5, seed=1)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        assert oi.has_edge_objects(oi.root)


class TestEuclideanScan:
    def test_yields_in_increasing_distance(self, small_net, small_index):
        objs = random_vertex_objects(small_net, count=30, seed=2)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        origin = small_net.vertex_point(0)
        dists = [d for _, d in oi.iter_euclidean(origin)]
        assert dists == sorted(dists)
        assert len(dists) == 30

    def test_distances_are_correct(self, small_net, small_index):
        objs = random_vertex_objects(small_net, count=10, seed=3)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        origin = small_net.vertex_point(5)
        for oid, d in oi.iter_euclidean(origin):
            assert d == origin.distance_to(objs[oid].point)

    def test_yields_every_object_once(self, small_net, small_index):
        objs = random_vertex_objects(small_net, count=25, seed=4)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        ids = [oid for oid, _ in oi.iter_euclidean(small_net.vertex_point(7))]
        assert sorted(ids) == list(range(25))
