"""Unit tests for the object model."""

import pytest

from repro.geometry import Point
from repro.objects import (
    EdgePosition,
    ObjectSet,
    SpatialObject,
    VertexPosition,
    position_point,
)


class TestPositions:
    def test_vertex_position_point(self, small_net):
        p = position_point(small_net, VertexPosition(5))
        assert p == small_net.vertex_point(5)

    def test_edge_position_point_interpolates(self, small_net):
        u, (v, w) = 0, small_net.neighbors(0)[0]
        pos = EdgePosition(u, v, 0.25)
        p = position_point(small_net, pos)
        pa, pb = small_net.vertex_point(u), small_net.vertex_point(v)
        assert p == pa.lerp(pb, 0.25)

    def test_edge_fraction_validated(self):
        with pytest.raises(ValueError):
            EdgePosition(0, 1, 1.5)
        with pytest.raises(ValueError):
            EdgePosition(0, 1, -0.1)

    def test_edge_fraction_bounds_allowed(self):
        EdgePosition(0, 1, 0.0)
        EdgePosition(0, 1, 1.0)


class TestObjectSet:
    def test_at_vertices(self, small_net):
        objs = ObjectSet.at_vertices(small_net, [3, 7, 3])
        assert len(objs) == 3
        assert objs[0].position.vertex == 3
        assert objs[2].position.vertex == 3  # duplicates allowed
        assert not objs.has_edge_objects()

    def test_on_edges(self, small_net):
        u, (v, _) = 0, small_net.neighbors(0)[0]
        objs = ObjectSet.on_edges(small_net, [(u, v, 0.5)])
        assert len(objs) == 1
        assert objs.has_edge_objects()

    def test_on_edges_validates_edge_exists(self, small_net):
        # find a non-edge
        nbrs = {v for v, _ in small_net.neighbors(0)}
        non = next(v for v in range(1, small_net.num_vertices) if v not in nbrs)
        from repro.network import EdgeNotFound

        with pytest.raises(EdgeNotFound):
            ObjectSet.on_edges(small_net, [(0, non, 0.5)])

    def test_duplicate_ids_rejected(self, small_net):
        p = small_net.vertex_point(0)
        objs = [
            SpatialObject(1, VertexPosition(0), p),
            SpatialObject(1, VertexPosition(1), p),
        ]
        with pytest.raises(ValueError):
            ObjectSet(objs)

    def test_lookup_and_iteration(self, small_net):
        objs = ObjectSet.at_vertices(small_net, [4, 9])
        assert objs[1].position.vertex == 9
        assert 0 in objs and 1 in objs and 2 not in objs
        assert objs.ids == [0, 1]
        assert [o.oid for o in objs] == [0, 1]
