"""Trace propagation across the serve/engine/shard stack.

Satellite-3 coverage: the span tree a traced server produces has the
documented skeleton, worker-side spans rejoin the parent trace (one
``shard:<id>`` span per *visited* worker, pruned shards absent), the
sharded and unsharded skeletons agree on the common stages, tracing
never changes answers or counted ops, and the ``stats`` request kind
returns the live registry snapshot over the wire.
"""

import asyncio

import pytest

from repro.engine import QueryEngine
from repro.obs import Tracer
from repro.serve import AsyncEngine, Request, SILCServer


class ListSink:
    """Capture finished trace records in memory."""

    def __init__(self) -> None:
        self.records = []

    def write(self, record: dict) -> None:
        self.records.append(record)


@pytest.fixture()
def engine(small_index, small_object_index):
    return QueryEngine(small_index, small_object_index, cache_fraction=0.05)


def knn_req(query, rid=0, k=3, client="web"):
    return Request(id=rid, client=client, kind="knn", queries=(query,), k=k,
                   exact=False)


def serve(requests, engine, shards=1, tracer=None):
    """Run requests through a fresh (optionally sharded) server."""

    async def go():
        async with AsyncEngine(engine, shards=shards) as ae:
            kwargs = {} if tracer is None else {"tracer": tracer}
            async with SILCServer(ae, **kwargs) as server:
                responses = await asyncio.gather(
                    *(server.submit(r) for r in requests)
                )
            return responses, server.snapshot()

    return asyncio.run(go())


def traced(requests, engine, shards=1):
    sink = ListSink()
    responses, snapshot = serve(
        requests, engine, shards=shards, tracer=Tracer(sink=sink)
    )
    return responses, snapshot, sink.records


def span_names(record):
    return [s["name"] for s in record["spans"]]


_WALL_CLOCK = {"l_time", "io_time", "elapsed"}


def counted_ops(stats):
    """QueryStats minus its wall-clock fields: the parity contract
    covers counted operations, not timings."""
    return {
        k: v for k, v in vars(stats).items() if k not in _WALL_CLOCK
    }


def by_name(record):
    return {s["name"]: s for s in record["spans"]}


class TestUnshardedSkeleton:
    def test_knn_trace_has_the_documented_spans(self, engine):
        [resp], _, records = traced([knn_req(7, rid=1)], engine)
        assert resp.status == "ok"
        [record] = records
        names = by_name(record)
        assert {"request", "admission", "sched_wait", "execute", "plan"} <= set(
            names
        )
        oracle = [n for n in span_names(record) if n.startswith("oracle:")]
        assert len(oracle) == 1
        # parenting: request is the root; execute hangs off it; the
        # plan and oracle spans nest under execute.
        root = names["request"]
        assert root["parent"] is None
        assert names["admission"]["parent"] == root["sid"]
        assert names["sched_wait"]["parent"] == root["sid"]
        assert names["execute"]["parent"] == root["sid"]
        assert names["plan"]["parent"] == names["execute"]["sid"]
        assert names[oracle[0]]["parent"] == names["execute"]["sid"]

    def test_oracle_span_carries_counted_ops(self, engine):
        _, snapshot, records = traced([knn_req(7)], engine)
        oracle = next(
            s for s in records[0]["spans"] if s["name"].startswith("oracle:")
        )
        counters = oracle.get("counters") or {}
        assert counters, "oracle span should carry nonzero QueryStats"
        # the span's counted ops are the server's counted ops
        for op, value in counters.items():
            assert getattr(snapshot.stats, op) == value

    def test_sched_wait_span_counts_the_scheduling_delay(self, engine):
        _, _, records = traced([knn_req(3)], engine)
        wait = by_name(records[0])["sched_wait"]
        assert "sched_delay" in (wait.get("counters") or {})


class TestParity:
    def test_tracing_changes_no_answers_and_no_counted_ops(self, engine):
        requests = [knn_req(q, rid=i, k=3) for i, q in enumerate((0, 7, 21))]
        plain, plain_snap = serve(requests, engine)
        engine2 = QueryEngine(
            engine.index, engine.object_index, cache_fraction=0.05
        )
        traced_resp, traced_snap, _ = traced(requests, engine2)
        for a, b in zip(plain, traced_resp):
            assert a.status == b.status == "ok"
            assert a.result["ids"] == b.result["ids"]
        assert counted_ops(plain_snap.stats) == counted_ops(traced_snap.stats)

    def test_sharded_parity_with_tracing_on(self, small_index, small_object_index):
        requests = [knn_req(q, rid=i) for i, q in enumerate((5, 40))]
        plain, plain_snap = serve(
            requests,
            QueryEngine(small_index, small_object_index),
            shards=2,
        )
        traced_resp, traced_snap, _ = traced(
            requests,
            QueryEngine(small_index, small_object_index),
            shards=2,
        )
        for a, b in zip(plain, traced_resp):
            assert a.result["ids"] == b.result["ids"]
        assert counted_ops(plain_snap.stats) == counted_ops(traced_snap.stats)


class TestShardedSkeleton:
    def test_one_shard_span_per_visited_worker(self, small_index, small_object_index):
        eng = QueryEngine(small_index, small_object_index)
        _, _, records = traced([knn_req(9)], eng, shards=2)
        [record] = records
        # two plan spans exist here (router's and the worker's); the
        # router's is the one carrying the scatter accounting.
        plan = next(
            s for s in record["spans"]
            if s["name"] == "plan"
            and "shards_visited" in (s.get("counters") or {})
        )
        counters = plan["counters"]
        shard_spans = [
            s for s in record["spans"] if s["name"].startswith("shard:")
        ]
        assert len(shard_spans) == counters["shards_visited"]
        assert len({s["name"] for s in shard_spans}) == len(shard_spans)
        # pruned shards leave no span behind
        assert (
            counters["shards_considered"]
            == len(shard_spans) + counters["shards_pruned"]
        )

    def test_worker_spans_rejoin_the_parent_trace(self, small_index, small_object_index):
        eng = QueryEngine(small_index, small_object_index)
        _, _, records = traced([knn_req(9)], eng, shards=2)
        [record] = records
        spans = record["spans"]
        shard_sids = {
            s["sid"]: s for s in spans if s["name"].startswith("shard:")
        }
        workers = [s for s in spans if s["name"] == "worker"]
        assert workers, "worker-side spans must rejoin the trace"
        for worker in workers:
            assert worker["parent"] in shard_sids
            parent = shard_sids[worker["parent"]]
            assert parent["labels"]["shard"] == worker["labels"]["shard"]
        # the worker ran its own engine spans, adopted beneath it
        worker_children = [
            s["name"] for s in spans
            if s["parent"] in {w["sid"] for w in workers}
        ]
        assert any(n.startswith("oracle:") for n in worker_children)
        # sids stayed unique through adoption
        sids = [s["sid"] for s in spans]
        assert len(sids) == len(set(sids))

    def test_stage_skeleton_matches_unsharded(self, small_index, small_object_index):
        from repro.obs import stage_of

        _, _, flat = traced(
            [knn_req(9)], QueryEngine(small_index, small_object_index)
        )
        _, _, sharded = traced(
            [knn_req(9)],
            QueryEngine(small_index, small_object_index),
            shards=2,
        )
        flat_stages = {stage_of(s["name"]) for s in flat[0]["spans"]}
        sharded_stages = {stage_of(s["name"]) for s in sharded[0]["spans"]}
        # the sharded tree is the unsharded tree plus the scatter layer
        assert flat_stages <= sharded_stages
        assert sharded_stages - flat_stages <= {"shard", "worker"}


class TestStatsRequestKind:
    def test_stats_returns_the_registry_snapshot_over_the_wire(self, engine):
        requests = [
            knn_req(7, rid=1),
            Request(id=2, client="ops", kind="stats"),
        ]
        responses, _, _ = traced(requests, engine)
        stats_resp = next(r for r in responses if r.id == 2)
        assert stats_resp.status == "ok"
        metrics = stats_resp.result["metrics"]
        assert set(metrics) == {"counters", "gauges", "histograms"}
        names = {c["name"] for c in metrics["counters"]}
        assert "requests_total" in names

    def test_stats_works_with_tracing_off(self, engine):
        responses, _ = serve(
            [Request(id=1, client="ops", kind="stats")], engine
        )
        [resp] = responses
        assert resp.status == "ok"
        assert "gauges" in resp.result["metrics"]
