"""MetricsRegistry: feeding semantics, labels, absorption, snapshots."""

import pytest

from repro.obs import MetricsRegistry, percentiles
from repro.oracle.planner import PlannerStats
from repro.query.stats import QueryStats
from repro.serve.metrics import ServerMetrics
from repro.shard.router import RouterStats


class TestPercentiles:
    def test_empty_returns_zero_per_point(self):
        assert percentiles([], (50.0, 95.0)) == [0.0, 0.0]

    def test_many_points_from_one_sample(self):
        p50, p95, p100 = percentiles(list(range(101)), (50.0, 95.0, 100.0))
        assert p50 == pytest.approx(50.0)
        assert p95 == pytest.approx(95.0)
        assert p100 == pytest.approx(100.0)

    def test_interpolates_between_samples(self):
        assert percentiles([0.0, 10.0], (50.0,))[0] == pytest.approx(5.0)

    def test_single_sample_answers_every_point(self):
        assert percentiles([7.0], (0.0, 50.0, 100.0)) == [7.0, 7.0, 7.0]

    def test_validates_every_point(self):
        with pytest.raises(ValueError):
            percentiles([1.0], (50.0, 101.0))

    def test_consumes_an_iterator_once(self):
        """The single-sort contract: one pass over a one-shot iterable."""
        values = (float(x) for x in (5.0, 1.0, 3.0))
        assert percentiles(values, (0.0, 100.0)) == [1.0, 5.0]


class TestFeeding:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2, stage="serve")
        reg.inc("hits", 3, stage="serve")
        assert reg.counter_value("hits", stage="serve") == 5

    def test_set_counter_assigns_absolutely(self):
        """Absorption may poll any number of times without double count."""
        reg = MetricsRegistry()
        for _ in range(3):
            reg.set_counter("requests_total", 7, stage="serve")
        assert reg.counter_value("requests_total", stage="serve") == 7

    def test_labels_distinguish_samples_order_insensitively(self):
        reg = MetricsRegistry()
        reg.inc("ops", 1, stage="plan", oracle="silc")
        reg.inc("ops", 1, oracle="silc", stage="plan")  # same sample
        reg.inc("ops", 1, stage="plan", oracle="labels")
        assert reg.counter_value("ops", stage="plan", oracle="silc") == 2
        assert reg.counter_value("ops", stage="plan", oracle="labels") == 1

    def test_histogram_window_is_bounded_but_count_exact(self):
        reg = MetricsRegistry(window=8)
        for i in range(100):
            reg.observe("lat", float(i), stage="serve")
        snap = reg.snapshot()["histograms"][0]
        assert snap["count"] == 100
        assert snap["p50"] == pytest.approx(95.5)  # window = last 8

    def test_window_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(window=0)


class TestSnapshotShape:
    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.inc("b_total", 1, stage="x")
        reg.inc("a_total", 1, stage="x")
        reg.set_gauge("depth", 4, stage="x", client="web")
        reg.observe("lat", 0.5, stage="x")
        snap = reg.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["a_total", "b_total"]
        assert snap["gauges"][0]["labels"] == {"client": "web", "stage": "x"}
        hist = snap["histograms"][0]
        assert hist["mean"] == hist["max"] == hist["p99"] == 0.5


class TestAbsorption:
    def test_absorb_server_snapshot(self):
        metrics = ServerMetrics()
        metrics.record_completed("web", 0.010, 2, QueryStats(refinements=5))
        metrics.record_shed()
        reg = MetricsRegistry()
        reg.absorb_server(metrics.snapshot(queue_depths={"web": 3}, in_flight=1))
        assert (
            reg.counter_value("requests_total", stage="serve", outcome="completed")
            == 1
        )
        assert (
            reg.counter_value("requests_total", stage="serve", outcome="shed") == 1
        )
        assert (
            reg.counter_value("engine_ops_total", stage="engine", op="refinements")
            == 5
        )
        gauges = {
            (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
            for g in reg.snapshot()["gauges"]
        }
        assert gauges[("in_flight", (("stage", "serve"),))] == 1
        assert (
            gauges[("queue_depth", (("client", "web"), ("stage", "sched")))] == 3
        )

    def test_absorb_planner_and_router(self):
        reg = MetricsRegistry()
        planner = PlannerStats()
        planner.decisions["silc"] = 4
        planner.forced = 1
        reg.absorb_planner(planner)
        reg.absorb_router(
            RouterStats(
                queries=2, shards_considered=4, shards_visited=3,
                shards_pruned_euclid=1, bound_probes=6, candidates=5,
                duplicates_merged=1,
            )
        )
        assert (
            reg.counter_value(
                "planner_decisions_total", stage="plan", oracle="silc"
            )
            == 4
        )
        assert (
            reg.counter_value("router_shards_total", stage="route", event="visited")
            == 3
        )
        assert (
            reg.counter_value(
                "router_shards_total", stage="route", event="pruned_euclid"
            )
            == 1
        )
