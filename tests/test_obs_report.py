"""trace-report: strict loading, per-stage aggregation, rendering."""

import json

import pytest

from repro.obs import (
    JsonlTraceSink,
    Tracer,
    aggregate_stages,
    format_trace_report,
    load_trace_file,
    request_percentiles,
    stage_of,
)


def write_lines(path, records):
    with open(path, "w") as f:
        for record in records:
            f.write(json.dumps(record) + "\n")


def trace_record(trace_id="t-1", status="ok", duration=0.01, spans=None):
    if spans is None:
        spans = [
            {"sid": 0, "parent": None, "name": "request", "start": 0.0,
             "end": duration},
            {"sid": 1, "parent": 0, "name": "oracle:silc", "start": 0.001,
             "end": 0.004, "counters": {"refinements": 2}},
        ]
    return {"trace": trace_id, "status": status, "duration": duration,
            "spans": spans}


class TestStageOf:
    def test_strips_qualifier(self):
        assert stage_of("oracle:silc") == "oracle"
        assert stage_of("shard:3") == "shard"
        assert stage_of("plan") == "plan"


class TestLoadTraceFile:
    def test_round_trips_real_tracer_output(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            tracer = Tracer(sink=sink)
            for i in range(3):
                trace = tracer.start_trace(id=i, client="web", kind="knn")
                with trace.span("execute", kind="knn"):
                    with trace.span("oracle:silc", oracle="silc") as span:
                        span.count(refinements=i)
                trace.finish("ok")
        traces = load_trace_file(path)
        assert len(traces) == 3
        stages = aggregate_stages(traces)
        assert stages["oracle"]["count"] == 3
        assert stages["oracle"]["counters"]["refinements"] == 3  # 0+1+2

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(trace_record()) + "\n\n\n")
        assert len(load_trace_file(path)) == 1

    @pytest.mark.parametrize(
        "mutate,message",
        [
            (lambda r: r.pop("spans"), "missing key"),
            (lambda r: r.__setitem__("spans", []), "no spans"),
            (lambda r: r["spans"][0].pop("name"), "missing key"),
            (lambda r: r["spans"][0].__setitem__("name", ""), "empty name"),
            (lambda r: r["spans"][1].__setitem__("sid", 0), "duplicated"),
            (lambda r: r["spans"][1].__setitem__("parent", 99), "unresolvable"),
            (lambda r: r["spans"][1].__setitem__("start", -0.5), "bad times"),
            (lambda r: r["spans"][1].__setitem__("end", 0.0), "bad times"),
        ],
    )
    def test_malformed_spans_raise_naming_the_line(self, tmp_path, mutate, message):
        record = trace_record()
        mutate(record)
        path = tmp_path / "trace.jsonl"
        write_lines(path, [trace_record(), record])
        with pytest.raises(ValueError, match=message) as err:
            load_trace_file(path)
        assert ":2" in str(err.value)  # the offending line is named

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace_file(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_trace_file(path)


class TestAggregation:
    def test_root_request_span_is_excluded_from_stages(self):
        stages = aggregate_stages([trace_record()])
        assert "request" not in stages
        assert set(stages) == {"oracle"}

    def test_request_percentiles_over_durations(self):
        traces = [trace_record(duration=d) for d in (0.010, 0.020, 0.030)]
        p50, p95, p99 = request_percentiles(traces)
        assert p50 == pytest.approx(0.020)
        assert p95 == pytest.approx(0.029)
        assert p99 == pytest.approx(0.0298)


class TestFormatting:
    def test_report_renders_stages_and_counted_ops(self):
        text = format_trace_report([trace_record(), trace_record("t-2")])
        assert "traces: 2 (ok=2)" in text
        assert "oracle" in text
        assert "refinements=4" in text
        assert "p95_ms" in text

    def test_empty_input(self):
        assert format_trace_report([]) == "no traces"
