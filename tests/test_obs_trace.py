"""Tracer/Trace/Span: span trees, counters, null no-ops, and sinks."""

import io
import json

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACE,
    JsonlTraceSink,
    MetricsRegistry,
    NullTracer,
    SlowQueryLog,
    Tracer,
)
from repro.query.stats import QueryStats


class FakeClock:
    """Deterministic, strictly advancing time source."""

    def __init__(self, step: float = 0.010) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpanTree:
    def test_stack_parenting_nests_spans(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace(id=1)
        with trace.span("execute") as outer:
            with trace.span("plan") as inner:
                pass
        trace.finish("ok")
        by_name = {s.name: s for s in trace.spans}
        assert by_name["execute"].parent == by_name["request"].sid
        assert by_name["plan"].parent == outer.sid
        assert inner.end is not None and inner.end >= inner.start

    def test_begin_parents_to_root_and_needs_explicit_close(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        wait = trace.begin("sched_wait")
        with trace.span("execute"):
            pass  # open `wait` must not capture stack children
        wait.close()
        trace.finish("ok")
        by_name = {s.name: s for s in trace.spans}
        assert by_name["sched_wait"].parent == by_name["request"].sid
        assert by_name["execute"].parent == by_name["request"].sid

    def test_counters_merge_and_survive_close(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        with trace.span("plan") as span:
            span.count(probes=3)
        span.count(probes=2, visits=1)  # post-close: totals known late
        trace.finish("ok")
        assert span.counters == {"probes": 5, "visits": 1}

    def test_add_stats_copies_nonzero_counters_only(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        with trace.span("oracle:silc") as span:
            span.add_stats(QueryStats(refinements=4, l_ops=9))
        assert span.counters == {"refinements": 4, "l_ops": 9}

    def test_exception_marks_error_label(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        with pytest.raises(RuntimeError):
            with trace.span("execute"):
                raise RuntimeError("boom")
        trace.finish("error")
        by_name = {s.name: s for s in trace.spans}
        assert by_name["execute"].labels["error"] == "RuntimeError"

    def test_finish_is_idempotent_and_closes_stragglers(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        open_span = trace.begin("sched_wait")  # never closed by hand
        trace.finish("cancelled")
        end = trace.t_end
        trace.finish("ok")  # no-op: status and t_end keep first values
        assert trace.status == "cancelled"
        assert trace.t_end == end
        assert open_span.end is not None
        assert tracer.finished == 1

    def test_to_dict_times_are_relative_and_clamped(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace(id=7, client="web", kind="knn")
        with trace.span("execute"):
            pass
        trace.finish("ok")
        record = trace.to_dict()
        assert record["status"] == "ok"
        assert record["client"] == "web"
        for span in record["spans"]:
            assert 0.0 <= span["start"] <= span["end"]

    def test_adopt_remaps_sids_and_reparents_foreign_root(self):
        clock = FakeClock()
        worker_tracer = Tracer(clock=clock)
        wtrace = worker_tracer.start_trace()
        wtrace.spans[0].name = "worker"
        with wtrace.span("oracle:silc") as wspan:
            wspan.count(refinements=2)
        wtrace.finish("ok")

        tracer = Tracer(clock=clock)
        trace = tracer.start_trace()
        with trace.span("shard:1", shard=1) as shard_span:
            trace.adopt(wtrace.spans_absolute(), parent=shard_span)
        trace.finish("ok")

        by_name = {s.name: s for s in trace.spans}
        worker = by_name["worker"]
        oracle = by_name["oracle:silc"]
        assert worker.parent == shard_span.sid
        assert oracle.parent == worker.sid
        assert oracle.counters == {"refinements": 2}
        sids = [s.sid for s in trace.spans]
        assert len(sids) == len(set(sids))  # remapping avoided collisions

    def test_trace_ids_are_unique(self):
        tracer = Tracer(clock=FakeClock())
        a, b = tracer.start_trace(), tracer.start_trace()
        assert a.trace_id != b.trace_id


class TestTracerFeedsRegistry:
    def test_finished_trace_populates_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, clock=FakeClock())
        trace = tracer.start_trace()
        with trace.span("oracle:silc", oracle="silc") as span:
            span.count(refinements=3)
        trace.finish("ok")
        assert registry.counter_value("traces_total", status="ok") == 1
        assert (
            registry.counter_value(
                "span_ops_total", stage="oracle", op="refinements"
            )
            == 3
        )
        snapshot = registry.snapshot()
        hist_names = {h["name"] for h in snapshot["histograms"]}
        assert {"request_seconds", "span_seconds"} <= hist_names


class TestNullObjects:
    def test_null_trace_is_disabled_and_shares_the_span(self):
        assert NULL_TRACE.enabled is False
        assert NULL_TRACE.span("anything", label=1) is NULL_SPAN
        assert NULL_TRACE.begin("sched_wait") is NULL_SPAN
        NULL_TRACE.adopt([], parent=NULL_SPAN)
        NULL_TRACE.finish("ok")  # all no-ops, nothing raised

    def test_null_span_accepts_every_operation(self):
        with NULL_SPAN as span:
            span.count(x=1)
            span.add_stats(QueryStats(refinements=1))
            span.annotate(oracle="silc")
            span.close()

    def test_null_tracer_still_owns_a_registry(self):
        tracer = NullTracer()
        assert tracer.trace_request(object()) is NULL_TRACE
        tracer.registry.set_gauge("in_flight", 2, stage="serve")
        assert tracer.registry.snapshot()["gauges"]


class TestSinks:
    def test_jsonl_sink_writes_one_line_per_record(self):
        stream = io.StringIO()
        sink = JsonlTraceSink(stream)
        sink.write({"trace": "t-1", "spans": []})
        sink.write({"trace": "t-2", "spans": []})
        lines = stream.getvalue().splitlines()
        assert [json.loads(x)["trace"] for x in lines] == ["t-1", "t-2"]
        assert sink.written == 2

    def test_jsonl_sink_appends_to_a_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"trace": "t-1", "spans": []})
        with JsonlTraceSink(path) as sink:
            sink.write({"trace": "t-2", "spans": []})
        assert len(path.read_text().splitlines()) == 2

    def test_slow_log_keeps_only_crossers(self):
        log = SlowQueryLog(threshold=0.5, capacity=2)
        assert log.offer({"trace": "fast", "duration": 0.1}) is False
        assert log.offer({"trace": "slow1", "duration": 0.6}) is True
        log.offer({"trace": "slow2", "duration": 0.7})
        log.offer({"trace": "slow3", "duration": 0.8})
        assert [r["trace"] for r in log.records()] == ["slow2", "slow3"]
        assert log.captured == 3  # lifetime count outlives the ring

    def test_slow_log_tees_to_sink(self):
        stream = io.StringIO()
        log = SlowQueryLog(threshold=0.0, sink=JsonlTraceSink(stream))
        log.offer({"trace": "t-1", "duration": 0.2})
        assert json.loads(stream.getvalue())["trace"] == "t-1"

    def test_slow_log_validates_arguments(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=0.1, capacity=0)

    def test_tracer_routes_finished_traces_to_sink_and_slow_log(self):
        stream = io.StringIO()
        slow = SlowQueryLog(threshold=0.0)
        tracer = Tracer(
            sink=JsonlTraceSink(stream), slow_log=slow, clock=FakeClock()
        )
        trace = tracer.start_trace(id=1)
        trace.finish("ok")
        assert json.loads(stream.getvalue())["status"] == "ok"
        assert slow.captured == 1
