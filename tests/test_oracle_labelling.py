"""Property tests for the pruned-landmark labelling oracle.

The contract under test: label intersection answers *exactly* the
same point-to-point distances as Dijkstra on every network we can
throw at it -- including disconnected pairs (no common hub -> inf)
and directed asymmetry -- and the flat-column persistence round-trips
byte-identically, memory-mapped or not.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.network import SpatialNetwork, road_like_network
from repro.oracle import DijkstraOracle, PrunedLabellingOracle
from repro.query.ier import ier_knn
from repro.query.stats import QueryStats


@pytest.fixture(scope="module")
def small_labelling(small_net):
    return PrunedLabellingOracle.build(small_net)


@pytest.fixture(scope="module")
def grid_labelling(grid_net):
    return PrunedLabellingOracle.build(grid_net)


class TestExactness:
    def test_matches_ground_truth_all_pairs_grid(self, grid_net, grid_dist,
                                                 grid_labelling):
        n = grid_net.num_vertices
        got = np.array(
            [[grid_labelling.distance(u, v) for v in range(n)] for u in range(n)]
        )
        np.testing.assert_allclose(got, grid_dist, rtol=1e-9, atol=1e-12)

    def test_matches_ground_truth_sampled_small(self, small_net, small_dist,
                                                small_labelling, rng):
        n = small_net.num_vertices
        for u, v in rng.integers(0, n, size=(300, 2)):
            assert small_labelling.distance(int(u), int(v)) == pytest.approx(
                float(small_dist[u, v]), rel=1e-9
            )

    @pytest.mark.parametrize("seed", [1, 17, 99])
    def test_matches_dijkstra_random_networks(self, seed):
        net = road_like_network(80, seed=seed)
        labels = PrunedLabellingOracle.build(net)
        dijkstra = DijkstraOracle(net)
        rng = np.random.default_rng(seed)
        for u, v in rng.integers(0, net.num_vertices, size=(120, 2)):
            assert labels.distance(int(u), int(v)) == pytest.approx(
                dijkstra.distance(int(u), int(v)), rel=1e-9
            )

    def test_self_distance_zero(self, small_labelling):
        assert small_labelling.distance(42, 42) == 0.0

    def test_vertex_validation(self, small_net, small_labelling):
        with pytest.raises(Exception):
            small_labelling.distance(0, small_net.num_vertices + 5)


class TestDisconnectedAndDirected:
    def test_disconnected_pairs_are_inf(self):
        # Two strongly connected triangles with no edge between them.
        net = SpatialNetwork(
            [0.0, 1.0, 0.0, 10.0, 11.0, 10.0],
            [0.0, 0.0, 1.0, 10.0, 10.0, 11.0],
            [(0, 1, 1.5), (1, 2, 1.5), (2, 0, 1.5),
             (3, 4, 2.0), (4, 5, 2.0), (5, 3, 2.0)],
        )
        labels = PrunedLabellingOracle.build(net)
        dijkstra = DijkstraOracle(net)
        for u in range(3):
            for v in range(3, 6):
                assert math.isinf(labels.distance(u, v))
                assert math.isinf(labels.distance(v, u))
        for u in range(6):
            for v in range(6):
                assert labels.distance(u, v) == pytest.approx(
                    dijkstra.distance(u, v), rel=1e-9
                )

    def test_directed_asymmetry(self):
        # One-way chain 0 -> 1 -> 2: reachable forward, inf backward.
        net = SpatialNetwork(
            [0.0, 1.0, 2.0],
            [0.0, 0.0, 0.0],
            [(0, 1, 1.0), (1, 2, 3.0)],
        )
        labels = PrunedLabellingOracle.build(net)
        assert labels.distance(0, 2) == pytest.approx(4.0)
        assert math.isinf(labels.distance(2, 0))


class TestAnchoredAndKNN:
    def test_anchored_distance_matches_dijkstra(self, small_net,
                                                small_labelling, rng):
        dijkstra = DijkstraOracle(small_net)
        n = small_net.num_vertices
        for _ in range(40):
            s = [(int(rng.integers(n)), float(rng.uniform(0, 2)))
                 for _ in range(2)]
            t = [(int(rng.integers(n)), float(rng.uniform(0, 2)))
                 for _ in range(2)]
            stats = QueryStats()
            got = small_labelling.anchored_distance(s, t, stats=stats)
            want = dijkstra.anchored_distance(s, t, stats=QueryStats())
            assert got == pytest.approx(want, rel=1e-9)
            assert stats.label_scans > 0

    def test_ier_through_labelling_matches_default(self, small_object_index,
                                                   small_labelling):
        for q in (0, 23, 77):
            base = ier_knn(small_object_index, q, 5)
            via = ier_knn(small_object_index, q, 5, oracle=small_labelling)
            assert via.ids() == base.ids()
            np.testing.assert_allclose(
                via.distances(), base.distances(), rtol=1e-9
            )
            assert via.stats.label_scans > 0
            assert via.stats.settled == 0  # no Dijkstra ran

    def test_oracle_knn_requires_binding(self, small_labelling,
                                         small_object_index):
        with pytest.raises(RuntimeError, match="bind_objects"):
            PrunedLabellingOracle(
                small_labelling.network, small_labelling.column_arrays()
            ).knn(0, 3)
        bound = small_labelling.bind_objects(small_object_index)
        result = bound.knn(0, 3)
        assert len(result) == 3


class TestPersistence:
    def test_save_load_mmap_round_trip(self, tmp_path, small_net,
                                       small_labelling, rng):
        directory = tmp_path / "labels"
        assert not PrunedLabellingOracle.saved_at(directory)
        small_labelling.save(directory)
        assert PrunedLabellingOracle.saved_at(directory)
        for mmap in (False, True):
            loaded = PrunedLabellingOracle.load(directory, small_net, mmap=mmap)
            for name, original in small_labelling.column_arrays().items():
                restored = loaded.column_arrays()[name]
                assert restored.dtype == original.dtype
                # byte-identical, not merely allclose
                assert np.asarray(restored).tobytes() == original.tobytes()
            n = small_net.num_vertices
            for u, v in rng.integers(0, n, size=(25, 2)):
                assert loaded.distance(int(u), int(v)) == pytest.approx(
                    small_labelling.distance(int(u), int(v)), rel=1e-12
                )

    def test_load_rejects_wrong_network(self, tmp_path, small_labelling,
                                        grid_net):
        directory = tmp_path / "labels"
        small_labelling.save(directory)
        with pytest.raises(ValueError, match="offsets"):
            PrunedLabellingOracle.load(directory, grid_net)


class TestBuildStats:
    def test_build_stats_recorded(self, small_net, small_labelling):
        bs = small_labelling.build_stats
        assert bs is not None
        assert bs.entries_out > 0 and bs.entries_in > 0
        assert bs.mean_out == pytest.approx(
            bs.entries_out / small_net.num_vertices
        )
        assert small_labelling.mean_label_size() == pytest.approx(
            bs.mean_out + bs.mean_in
        )

    def test_labels_sorted_by_rank(self, small_labelling):
        # The merge relies on per-vertex hub lists sorted by rank.
        for u in range(small_labelling.network.num_vertices):
            for offs, hubs in (
                (small_labelling.out_offsets, small_labelling.out_hubs),
                (small_labelling.in_offsets, small_labelling.in_hubs),
            ):
                row = hubs[int(offs[u]):int(offs[u + 1])]
                assert np.all(np.diff(row) > 0)
