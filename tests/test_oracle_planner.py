"""Tests for the cost-based query planner and engine backend routing.

The load-bearing property: whatever backend the planner picks, the
*answers* are the ones forced SILC would have given -- planning is a
performance decision, never a correctness one.
"""

from __future__ import annotations

import pytest

from repro.engine import QueryEngine
from repro.oracle import (
    CostConstants,
    PrunedLabellingOracle,
    QueryPlanner,
    counted_ops,
)
from repro.query.stats import QueryStats


@pytest.fixture(scope="module")
def labelling(small_net):
    return PrunedLabellingOracle.build(small_net)


@pytest.fixture()
def engine(small_index, small_object_index, labelling):
    return QueryEngine(
        small_index, small_object_index, labelling=labelling, oracle="auto"
    )


class TestPlannerParity:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_auto_matches_forced_silc(self, engine, k):
        queries = [0, 23, 77, 130, 23]
        auto = engine.knn_batch(queries, k, oracle="auto")
        silc = engine.knn_batch(queries, k, exact=True, oracle="silc")
        assert auto.ids() == silc.ids()
        for a, s in zip(auto.results, silc.results):
            assert a.distances() == pytest.approx(s.distances(), rel=1e-9)

    @pytest.mark.parametrize("backend", ["labels", "ine"])
    def test_every_backend_matches_silc(self, engine, backend):
        for q in (0, 42, 101):
            got = engine.knn(q, 4, oracle=backend)
            want = engine.knn(q, 4, exact=True, oracle="silc")
            assert got.ids() == want.ids()
            assert got.distances() == pytest.approx(
                want.distances(), rel=1e-9
            )

    def test_planner_decisions_counted(self, engine):
        queries = [0, 23, 77, 130]
        engine.knn_batch(queries, 3, oracle="auto")
        stats = engine.planner.stats
        assert stats.planned == len(queries)
        assert stats.calibrations == 1
        assert stats.calibration_queries > 0
        assert sum(stats.decisions.values()) == len(queries)
        assert set(stats.decisions) <= {"silc", "labels", "ine"}


class TestForcedBackend:
    def test_force_overrides_cost_model(self, small_index, small_object_index,
                                        labelling):
        engine = QueryEngine(
            small_index, small_object_index, labelling=labelling, oracle="auto"
        )
        engine.planner = QueryPlanner(engine.oracles, force="labels")
        result = engine.knn(23, 5, oracle="auto")
        assert result.stats.label_scans > 0
        assert engine.planner.stats.forced == 1
        assert engine.planner.stats.planned == 0

    def test_force_unavailable_backend_rejected(self, small_index,
                                                small_object_index):
        engine = QueryEngine(small_index, small_object_index)
        with pytest.raises(ValueError, match="force"):
            QueryPlanner(engine.oracles, force="labels")


class TestBackendValidation:
    def test_unknown_oracle_rejected(self, small_index, small_object_index):
        engine = QueryEngine(small_index, small_object_index)
        with pytest.raises(ValueError, match="unknown oracle"):
            engine.knn(0, 3, oracle="quantum")
        with pytest.raises(ValueError, match="unknown oracle"):
            QueryEngine(small_index, small_object_index, oracle="quantum")

    def test_labels_without_labelling_rejected(self, small_index,
                                               small_object_index):
        engine = QueryEngine(small_index, small_object_index)
        with pytest.raises(ValueError, match="not loaded"):
            engine.knn(0, 3, oracle="labels")

    def test_auto_without_labelling_still_answers(self, small_index,
                                                  small_object_index):
        engine = QueryEngine(small_index, small_object_index, oracle="auto")
        got = engine.knn(23, 4)
        want = engine.knn(23, 4, exact=True, oracle="silc")
        assert got.ids() == want.ids()


class TestCostModel:
    def test_constants_round_trip(self, tmp_path):
        constants = CostConstants(
            op_model={"silc": (3.0, 1.5), "labels": (40.0, 20.0)},
            op_seconds={"silc": 2e-5, "labels": 3e-7},
            miss_rate=0.25,
        )
        constants.save(tmp_path)
        loaded = CostConstants.load(tmp_path)
        assert loaded == constants
        assert CostConstants.load(tmp_path / "nope") is None

    def test_predicted_cost_linear_in_k(self):
        constants = CostConstants(
            op_model={"silc": (2.0, 3.0)}, op_seconds={"silc": 1.0}
        )
        assert constants.predicted_ops("silc", 4) == pytest.approx(14.0)
        assert constants.predicted_cost("silc", 4) == pytest.approx(14.0)

    def test_counted_ops_units(self):
        stats = QueryStats(refinements=7, label_scans=11, settled=13)
        stats.extras["post_refinements"] = 2
        assert counted_ops("silc", stats) == 9
        assert counted_ops("labels", stats) == 11
        assert counted_ops("ine", stats) == 13
        with pytest.raises(ValueError):
            counted_ops("quantum", stats)

    def test_preloaded_constants_skip_calibration(self, engine):
        constants = CostConstants(
            op_model={"silc": (1.0, 1.0), "labels": (1.0, 1.0),
                      "ine": (1.0, 1.0)},
            op_seconds={"silc": 1.0, "labels": 1e-9, "ine": 1.0},
        )
        engine.planner = QueryPlanner(engine.oracles, constants=constants)
        result = engine.knn(23, 3, oracle="auto")
        assert engine.planner.stats.calibrations == 0
        assert engine.planner.stats.decisions == {"labels": 1}
        assert result.stats.label_scans > 0

    def test_explain_names_winner(self, engine):
        planner = engine.ensure_planner()
        line = planner.explain(4)
        assert "k=4" in line and "->" in line


class TestEpsilonParity:
    def test_epsilon_zero_identical_to_exact(self, engine):
        queries = [0, 23, 77]
        base = engine.knn_batch(queries, 5, exact=True, oracle="silc")
        eps = engine.knn_batch(queries, 5, exact=True, epsilon=0.0,
                               oracle="silc")
        assert eps.ids() == base.ids()
        for a, b in zip(eps.results, base.results):
            assert a.distances() == pytest.approx(b.distances(), rel=1e-12)

    def test_epsilon_bounds_error(self, engine, small_dist, small_objects):
        epsilon = 0.5
        batch = engine.knn_batch([23], 5, epsilon=epsilon, oracle="silc")
        truth = sorted(
            float(small_dist[23, o.position.vertex]) for o in small_objects
        )
        kth = truth[4]
        for n in batch.results[0].neighbors:
            true_d = float(small_dist[23, small_objects[n.oid].position.vertex])
            assert true_d <= (1 + epsilon) * kth + 1e-9

    def test_epsilon_requires_silc(self, engine):
        with pytest.raises(ValueError, match="SILC"):
            engine.knn_batch([0], 3, epsilon=0.1, oracle="labels")
        with pytest.raises(ValueError, match="non-negative"):
            engine.knn_batch([0], 3, epsilon=-0.1)
