"""Whole-pipeline property-based tests on small random networks.

These are the paper's invariants run against freshly generated
networks, object sets, queries and k -- the strongest correctness
evidence in the suite.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ObjectIndex, SILCIndex, ine_knn, knn, knn_m, road_like_network
from repro.datasets import random_vertex_objects
from repro.network import distance_matrix

# Cache of built indexes, keyed by seed: hypothesis re-runs bodies many
# times and SILC builds are the expensive part.
_CACHE: dict[int, tuple] = {}


def setup(seed: int):
    if seed not in _CACHE:
        net = road_like_network(60, seed=seed)
        _CACHE[seed] = (net, SILCIndex.build(net), distance_matrix(net))
        if len(_CACHE) > 8:
            _CACHE.pop(next(iter(_CACHE)))
    return _CACHE[seed]


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
@given(
    seed=st.integers(0, 3),
    query=st.integers(0, 59),
    k=st.integers(1, 12),
    obj_seed=st.integers(0, 5),
    obj_count=st.integers(5, 30),
)
def test_knn_matches_brute_force_everywhere(seed, query, k, obj_seed, obj_count):
    net, index, D = setup(seed)
    objects = random_vertex_objects(net, count=obj_count, seed=obj_seed)
    oi = ObjectIndex(net, objects, index.embedding)
    truth = sorted(float(D[query, o.position.vertex]) for o in objects)
    expected = truth[: min(k, len(objects))]
    result = knn(index, oi, query, k, exact=True)
    got = sorted(n.distance for n in result.neighbors)
    np.testing.assert_allclose(got, expected, rtol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 3),
    query=st.integers(0, 59),
    k=st.integers(1, 10),
    obj_seed=st.integers(0, 5),
)
def test_knn_m_set_equals_ine_set(seed, query, k, obj_seed):
    """kNN-M returns the same k-set as exact INE (order may differ)."""
    net, index, D = setup(seed)
    objects = random_vertex_objects(net, count=20, seed=obj_seed)
    oi = ObjectIndex(net, objects, index.embedding)
    a = knn_m(index, oi, query, k, exact=True)
    b = ine_knn(oi, query, k)
    np.testing.assert_allclose(
        sorted(n.distance for n in a.neighbors),
        sorted(n.distance for n in b.neighbors),
        rtol=1e-6,
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 3),
    u=st.integers(0, 59),
    v=st.integers(0, 59),
)
def test_interval_refinement_invariants(seed, u, v):
    """Containment + monotonicity + exact termination for any pair."""
    net, index, D = setup(seed)
    r = index.refinable(u, v)
    truth = float(D[u, v])
    prev = r.interval
    assert prev.lo - 1e-9 <= truth <= prev.hi + 1e-9
    steps = 0
    while r.refine():
        cur = r.interval
        assert cur.lo >= prev.lo - 1e-12
        assert cur.hi <= prev.hi + 1e-12
        assert cur.lo - 1e-9 <= truth <= cur.hi + 1e-9
        prev = cur
        steps += 1
        assert steps <= net.num_vertices
    assert r.acc == pytest.approx(truth, rel=1e-9, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 3), source=st.integers(0, 59))
def test_quadtree_encodes_true_first_hops(seed, source):
    """Every vertex lookup in every shortest-path quadtree is correct."""
    net, index, D = setup(seed)
    from repro.network import shortest_path_tree

    tree = shortest_path_tree(net, source)
    for v in range(net.num_vertices):
        if v == source:
            continue
        hop = index.next_hop(source, v)
        assert hop == tree.path_to(v)[1]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 3),
    query=st.integers(0, 59),
    k=st.integers(1, 8),
    obj_seed=st.integers(0, 3),
)
def test_neighbor_intervals_always_contain_truth(seed, query, k, obj_seed):
    """Without exact resolution, reported intervals still bound truth."""
    net, index, D = setup(seed)
    objects = random_vertex_objects(net, count=15, seed=obj_seed)
    oi = ObjectIndex(net, objects, index.embedding)
    result = knn(index, oi, query, k)  # exact=False
    lookup = {o.oid: float(D[query, o.position.vertex]) for o in objects}
    for n in result.neighbors:
        assert n.interval.lo - 1e-9 <= lookup[n.oid] <= n.interval.hi + 1e-9
