"""Unit tests for repro.quadtree.blocks."""

import numpy as np
import pytest

from repro.quadtree import BlockTable


def make_table():
    """Blocks: [0,4) level1, [4,5) level0, [8,12) level1 -- gap at [5,8)."""
    return BlockTable(
        codes=np.array([0, 4, 8]),
        levels=np.array([1, 0, 1]),
        colors=np.array([10, 20, 30]),
        lam_min=np.array([1.0, 1.1, 1.2]),
        lam_max=np.array([2.0, 1.1, 1.9]),
    )


class TestConstruction:
    def test_length(self):
        assert len(make_table()) == 3

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BlockTable(
                np.array([0, 4]),
                np.array([1]),
                np.array([1, 2]),
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
            )

    def test_unsorted_codes_rejected(self):
        with pytest.raises(ValueError):
            BlockTable(
                np.array([4, 0]),
                np.array([0, 0]),
                np.array([1, 2]),
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
            )

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError):
            BlockTable(
                np.array([0, 2]),  # level-1 block [0,4) overlaps [2,3)
                np.array([1, 0]),
                np.array([1, 2]),
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
            )

    def test_empty_table(self):
        t = BlockTable(
            np.empty(0), np.empty(0), np.empty(0), np.empty(0), np.empty(0)
        )
        assert len(t) == 0
        assert t.locate(5) == -1


class TestLocate:
    def test_hit_inside_block(self):
        t = make_table()
        assert t.locate(0) == 0
        assert t.locate(3) == 0
        assert t.locate(4) == 1
        assert t.locate(9) == 2

    def test_miss_in_gap(self):
        assert make_table().locate(6) == -1

    def test_miss_past_end(self):
        assert make_table().locate(12) == -1

    def test_lookup_returns_scalars(self):
        t = make_table()
        color, lam_lo, lam_hi, row = t.lookup(9)
        assert (color, lam_lo, lam_hi, row) == (30, 1.2, 1.9, 2)
        assert isinstance(color, int)
        assert isinstance(lam_lo, float)

    def test_lookup_miss(self):
        assert make_table().lookup(7) is None


class TestOverlapping:
    def test_full_range(self):
        assert list(make_table().overlapping(0, 16)) == [0, 1, 2]

    def test_partial_overlap_from_left(self):
        # [3, 5) clips block 0 and block 1
        assert list(make_table().overlapping(3, 5)) == [0, 1]

    def test_gap_only(self):
        assert list(make_table().overlapping(5, 8)) == []

    def test_empty_range(self):
        assert list(make_table().overlapping(5, 5)) == []

    def test_range_starting_inside_block(self):
        assert list(make_table().overlapping(9, 10)) == [2]


class TestInspection:
    def test_block_decode(self):
        b = make_table().block(0)
        assert (b.code, b.level, b.color) == (0, 1, 10)
        assert b.cells == 4
        assert b.code_end == 4

    def test_iter_blocks(self):
        assert [b.color for b in make_table().iter_blocks()] == [10, 20, 30]

    def test_total_cells(self):
        assert make_table().total_cells() == 4 + 1 + 4

    def test_storage_bytes(self):
        assert make_table().storage_bytes(record_bytes=16) == 48
