"""Unit tests for the PMR-style object quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import GridEmbedding, Point, Rect
from repro.quadtree import PMRQuadtree


def embedding(order=4):
    return GridEmbedding(Rect(0, 0, 16, 16), order)


class TestInsertAndSplit:
    def test_empty_tree(self):
        t = PMRQuadtree(embedding(), capacity=2)
        assert len(t) == 0
        assert t.root.is_leaf

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PMRQuadtree(embedding(), capacity=0)

    def test_insert_below_capacity_no_split(self):
        t = PMRQuadtree(embedding(), capacity=4)
        for i in range(4):
            t.insert(i, Point(i + 0.5, 0.5))
        assert t.root.is_leaf
        assert len(t) == 4

    def test_overflow_splits(self):
        t = PMRQuadtree(embedding(), capacity=2)
        for i in range(5):
            t.insert(i, Point(i + 0.5, i + 0.5))
        assert not t.root.is_leaf
        assert len(t) == 5

    def test_all_entries_preserved_after_splits(self):
        t = PMRQuadtree(embedding(), capacity=1)
        points = [Point(x + 0.5, y + 0.5) for x in range(4) for y in range(4)]
        for i, p in enumerate(points):
            t.insert(i, p)
        got = sorted(oid for oid, _, _ in t.all_entries())
        assert got == list(range(16))

    def test_clustered_points_split_deep(self):
        t = PMRQuadtree(embedding(), capacity=2)
        pts = [Point(0.1, 0.1), Point(0.2, 0.2), Point(0.3, 0.3), Point(15.5, 15.5)]
        for i, p in enumerate(pts):
            t.insert(i, p)
        assert t.depth() >= 2

    def test_coincident_points_tolerated_at_cell_level(self):
        """Points in one cell cannot split further; overflow is allowed."""
        t = PMRQuadtree(embedding(), capacity=2)
        for i in range(5):
            t.insert(i, Point(3.25, 3.25))
        assert len(t) == 5
        leaves = [n for n in t.iter_nodes() if n.is_leaf and n.entries]
        assert len(leaves) == 1
        assert leaves[0].level == 0

    def test_duplicate_ids_allowed(self):
        t = PMRQuadtree(embedding(), capacity=4)
        t.insert(7, Point(1, 1))
        t.insert(7, Point(2, 2))
        assert len(t) == 2


class TestStructure:
    def test_children_partition_parent(self):
        t = PMRQuadtree(embedding(), capacity=1)
        for i in range(8):
            t.insert(i, Point(2 * i + 0.5, (3 * i) % 16 + 0.5))
        for node in t.iter_nodes():
            if not node.is_leaf:
                child_codes = sorted(c.code for c in node.children)
                assert child_codes[0] == node.code
                assert len(child_codes) == 4
                assert all(c.level == node.level - 1 for c in node.children)

    def test_node_rect_contains_entries(self):
        t = PMRQuadtree(embedding(), capacity=2)
        rng = np.random.default_rng(1)
        for i in range(30):
            t.insert(i, Point(*rng.uniform(0, 16, 2)))
        for node in t.iter_nodes():
            rect = t.node_rect(node)
            for _, _, p in node.entries:
                assert rect.contains_point(p)

    def test_num_nodes_counts_all(self):
        t = PMRQuadtree(embedding(), capacity=1)
        assert t.num_nodes() == 1
        t.insert(0, Point(1, 1))
        t.insert(1, Point(9, 9))
        assert t.num_nodes() >= 1


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 15.99), st.floats(0, 15.99)),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 8),
    )
    def test_every_point_findable_in_containing_leaf(self, coords, capacity):
        t = PMRQuadtree(embedding(), capacity=capacity)
        for i, (x, y) in enumerate(coords):
            t.insert(i, Point(x, y))
        assert len(t) == len(coords)
        # each object id appears exactly once across leaves
        ids = [oid for oid, _, _ in t.all_entries()]
        assert sorted(ids) == list(range(len(coords)))
        # leaf buckets respect capacity unless at cell resolution
        for node in t.iter_nodes():
            if node.is_leaf and len(node.entries) > capacity:
                assert node.level == 0
