"""Unit tests for the region-quadtree builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.morton import block_cells, morton_encode
from repro.quadtree import build_region_blocks, next_different


class TestNextDifferent:
    def test_empty(self):
        assert next_different(np.array([])).size == 0

    def test_all_same(self):
        np.testing.assert_array_equal(
            next_different(np.array([7, 7, 7])), [3, 3, 3]
        )

    def test_alternating(self):
        np.testing.assert_array_equal(
            next_different(np.array([1, 2, 1])), [1, 2, 3]
        )

    def test_runs(self):
        np.testing.assert_array_equal(
            next_different(np.array([5, 5, 9, 9, 9, 2])), [2, 2, 5, 5, 5, 6]
        )

    def test_purity_check_semantics(self):
        labels = np.array([1, 1, 2, 2])
        nd = next_different(labels)
        # slice [0,2) pure, [0,3) not
        assert nd[0] >= 2
        assert nd[0] < 3


def build_from_cells(cells, colors, values, order=3):
    """Helper: cells as (x, y) pairs -> sorted build inputs."""
    codes = np.array([morton_encode(x, y) for x, y in cells], dtype=np.int64)
    perm = np.argsort(codes)
    return build_region_blocks(
        codes[perm],
        np.asarray(colors)[perm],
        np.asarray(values, dtype=float)[perm],
        order,
    )


class TestBuilder:
    def test_single_point_gives_root_block(self):
        t = build_from_cells([(3, 3)], [1], [1.5], order=3)
        assert len(t) == 1
        b = t.block(0)
        assert b.level == 3 and b.code == 0 and b.color == 1
        assert b.lam_min == b.lam_max == 1.5

    def test_uniform_colors_collapse_to_root(self):
        cells = [(x, y) for x in range(4) for y in range(4)]
        t = build_from_cells(cells, [9] * 16, list(range(16)), order=2)
        assert len(t) == 1
        assert t.block(0).lam_min == 0.0
        assert t.block(0).lam_max == 15.0

    def test_quadrant_colors_split_once(self):
        # Color by quadrant of a 4x4 grid -> exactly 4 level-1 blocks.
        cells = [(x, y) for x in range(4) for y in range(4)]
        colors = [(x // 2) + 2 * (y // 2) for x, y in cells]
        t = build_from_cells(cells, colors, [1.0] * 16, order=2)
        assert len(t) == 4
        assert sorted(t.levels.tolist()) == [1, 1, 1, 1]

    def test_blocks_cover_every_point(self):
        rng = np.random.default_rng(0)
        cells = [(int(x), int(y)) for x, y in rng.integers(0, 16, (40, 2))]
        cells = list(dict.fromkeys(cells))
        colors = [int(c) for c in rng.integers(0, 3, len(cells))]
        t = build_from_cells(cells, colors, [1.0] * len(cells), order=4)
        for (x, y), color in zip(cells, colors):
            row = t.locate(morton_encode(x, y))
            assert row >= 0
            assert t.colors[row] == color

    def test_lambda_annotations_are_slice_extrema(self):
        cells = [(0, 0), (1, 0), (0, 1), (1, 1)]
        t = build_from_cells(cells, [5, 5, 5, 5], [3.0, 1.0, 4.0, 2.0], order=1)
        assert len(t) == 1
        assert t.block(0).lam_min == 1.0
        assert t.block(0).lam_max == 4.0

    def test_rejects_duplicate_codes(self):
        codes = np.array([3, 3])
        with pytest.raises(ValueError):
            build_region_blocks(codes, np.array([1, 2]), np.array([1.0, 1.0]), 2)

    def test_rejects_code_outside_grid(self):
        codes = np.array([block_cells(2)])  # = 16, outside a 4x4 grid
        with pytest.raises(ValueError):
            build_region_blocks(codes, np.array([1]), np.array([1.0]), 2)

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            build_region_blocks(
                np.array([0, 1]), np.array([1]), np.array([1.0, 2.0]), 2
            )

    def test_empty_input(self):
        t = build_region_blocks(np.empty(0), np.empty(0), np.empty(0), 3)
        assert len(t) == 0


@st.composite
def colored_grids(draw):
    order = draw(st.integers(2, 4))
    side = 1 << order
    n = draw(st.integers(1, min(30, side * side)))
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, side - 1), st.integers(0, side - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    colors = draw(
        st.lists(st.integers(0, 4), min_size=len(cells), max_size=len(cells))
    )
    values = draw(
        st.lists(
            st.floats(0.5, 10, allow_nan=False),
            min_size=len(cells),
            max_size=len(cells),
        )
    )
    return order, cells, colors, values


class TestBuilderProperties:
    @settings(max_examples=60, deadline=None)
    @given(colored_grids())
    def test_invariants(self, data):
        """Coverage, purity, disjointness, and lambda containment."""
        order, cells, colors, values = data
        codes = np.array([morton_encode(x, y) for x, y in cells], dtype=np.int64)
        perm = np.argsort(codes)
        table = build_region_blocks(
            codes[perm],
            np.asarray(colors)[perm],
            np.asarray(values)[perm],
            order,
        )
        # every point is covered by a block of its color, with its
        # value inside the lambda interval
        for (x, y), color, value in zip(cells, colors, values):
            row = table.locate(morton_encode(x, y))
            assert row >= 0
            assert table.colors[row] == color
            assert table.lam_min[row] <= value <= table.lam_max[row]
        # blocks are disjoint and sorted (enforced by BlockTable) and
        # every block contains at least one point (no empty blocks)
        covered = 0
        code_set = set(codes.tolist())
        for b in table.iter_blocks():
            assert any(b.code <= c < b.code_end for c in code_set)
            covered += 1
        assert covered == len(table)
