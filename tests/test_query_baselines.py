"""Correctness tests for the INE and IER baselines."""

import numpy as np
import pytest

from repro.datasets import random_edge_objects, random_vertex_objects
from repro.objects import EdgePosition, ObjectIndex
from repro.query import ier_knn, ine_knn
from repro.storage import NetworkStorageModel


def truth(dist_matrix, objects, q):
    return sorted(
        (float(dist_matrix[q, o.position.vertex]), o.oid) for o in objects
    )


class TestINE:
    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_matches_brute_force(
        self, k, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        expected = truth(small_dist, small_objects, 23)[:k]
        result = ine_knn(oi, 23, k)
        got = [(n.distance, n.oid) for n in result.neighbors]
        np.testing.assert_allclose(
            [d for d, _ in got], [d for d, _ in expected], rtol=1e-9
        )

    def test_sorted_output(self, small_object_index):
        result = ine_knn(small_object_index, 0, 8)
        dists = [n.distance for n in result.neighbors]
        assert dists == sorted(dists)

    def test_settles_vertices(self, small_object_index):
        result = ine_knn(small_object_index, 0, 5)
        assert result.stats.settled > 0
        assert result.stats.index_probes == result.stats.settled

    def test_edge_objects(self, small_net, small_index, small_dist):
        objs = random_edge_objects(small_net, count=20, seed=31)
        oi = ObjectIndex(small_net, objs, small_index.embedding)

        def edge_truth(q):
            out = []
            for o in objs:
                pos = o.position
                d = small_dist[q, pos.a] + pos.fraction * small_net.edge_weight(
                    pos.a, pos.b
                )
                if small_net.has_edge(pos.b, pos.a):
                    d = min(
                        d,
                        small_dist[q, pos.b]
                        + (1 - pos.fraction) * small_net.edge_weight(pos.b, pos.a),
                    )
                out.append(float(d))
            return sorted(out)

        result = ine_knn(oi, 7, 6)
        np.testing.assert_allclose(
            [n.distance for n in result.neighbors], edge_truth(7)[:6], rtol=1e-9
        )

    def test_query_on_edge(self, small_net, small_index, small_objects, small_dist):
        a, (b, w) = 0, small_net.neighbors(0)[0]
        result = ine_knn(
            ObjectIndex(small_net, small_objects, small_index.embedding),
            EdgePosition(a, b, 0.5),
            3,
        )
        assert len(result) == 3
        # verify against anchors
        w_rev = small_net.edge_weight(b, a) if small_net.has_edge(b, a) else None
        expected = []
        for o in small_objects:
            t = o.position.vertex
            d = 0.5 * w + small_dist[b, t]
            if w_rev is not None:
                d = min(d, 0.5 * w_rev + small_dist[a, t])
            expected.append(float(d))
        expected.sort()
        np.testing.assert_allclose(
            [n.distance for n in result.neighbors], expected[:3], rtol=1e-9
        )

    def test_k_validation(self, small_object_index):
        with pytest.raises(ValueError):
            ine_knn(small_object_index, 0, 0)

    def test_storage_accounting(self, small_net, small_object_index):
        storage = NetworkStorageModel(small_net)
        result = ine_knn(small_object_index, 0, 5, storage=storage)
        assert result.stats.io_accesses == result.stats.settled
        assert result.stats.io_time >= 0


class TestIER:
    @pytest.mark.parametrize("engine", ["dijkstra", "astar"])
    @pytest.mark.parametrize("k", [1, 5])
    def test_matches_brute_force(
        self, engine, k, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        expected = truth(small_dist, small_objects, 31)[:k]
        result = ier_knn(oi, 31, k, engine=engine)
        np.testing.assert_allclose(
            [n.distance for n in result.neighbors],
            [d for d, _ in expected],
            rtol=1e-9,
        )

    def test_counts_nd_computations(self, small_object_index):
        result = ier_knn(small_object_index, 0, 3)
        assert result.stats.nd_computations >= 3
        assert result.stats.settled > 0

    def test_engine_validation(self, small_object_index):
        with pytest.raises(ValueError):
            ier_knn(small_object_index, 0, 3, engine="bfs")

    def test_k_validation(self, small_object_index):
        with pytest.raises(ValueError):
            ier_knn(small_object_index, 0, 0)

    def test_rejects_non_metric_network(self, small_index):
        from repro.network import SpatialNetwork

        # weight < Euclidean length breaks the Euclidean filter
        net = SpatialNetwork(
            [0.0, 10.0, 5.0],
            [0.0, 0.0, 1.0],
            [
                (0, 1, 0.5),
                (1, 0, 0.5),
                (0, 2, 6.0),
                (2, 0, 6.0),
                (1, 2, 6.0),
                (2, 1, 6.0),
            ],
        )
        from repro.datasets import random_vertex_objects
        from repro.silc import SILCIndex

        idx = SILCIndex.build(net)
        objs = random_vertex_objects(net, count=2, seed=0)
        oi = ObjectIndex(net, objs, idx.embedding)
        with pytest.raises(ValueError):
            ier_knn(oi, 0, 1)

    def test_edge_objects(self, small_net, small_index, small_dist):
        objs = random_edge_objects(small_net, count=15, seed=32)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        ine_result = ine_knn(oi, 11, 5)
        ier_result = ier_knn(oi, 11, 5)
        np.testing.assert_allclose(
            [n.distance for n in ier_result.neighbors],
            [n.distance for n in ine_result.neighbors],
            rtol=1e-9,
        )

    def test_storage_accounting(self, small_net, small_object_index):
        storage = NetworkStorageModel(small_net)
        result = ier_knn(small_object_index, 0, 3, storage=storage)
        assert result.stats.io_accesses > 0
