"""Correctness tests for the extended query operators."""

import itertools
import math

import numpy as np
import pytest

from repro.datasets import random_vertex_objects
from repro.objects import ObjectIndex
from repro.query import (
    aggregate_nn,
    approximate_knn,
    browse,
    distance_join,
    range_query,
)


def truth(dist_matrix, objects, q):
    return sorted(
        (float(dist_matrix[q, o.position.vertex]), o.oid) for o in objects
    )


class TestBrowse:
    def test_yields_all_objects_in_order(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        expected = truth(small_dist, small_objects, 12)
        emitted = list(browse(small_index, oi, 12))
        assert len(emitted) == len(small_objects)
        # emitted order matches true distance order
        emitted_truth = [
            float(small_dist[12, small_objects[n.oid].position.vertex])
            for n in emitted
        ]
        assert emitted_truth == sorted(emitted_truth)

    def test_intervals_bound_truth(self, small_net, small_index, small_objects, small_dist):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        for n in browse(small_index, oi, 30):
            d = float(small_dist[30, small_objects[n.oid].position.vertex])
            assert n.interval.lo - 1e-9 <= d <= n.interval.hi + 1e-9

    def test_lazy_consumption(self, small_net, small_index, small_objects, small_dist):
        """Taking one neighbor must not resolve the whole set."""
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        first = next(browse(small_index, oi, 5))
        best = truth(small_dist, small_objects, 5)[0]
        assert first.oid == best[1] or first.interval.lo <= best[0] + 1e-9

    def test_successive_emissions_separated(
        self, small_net, small_index, small_objects
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        emitted = list(itertools.islice(browse(small_index, oi, 7), 8))
        for a, b in zip(emitted, emitted[1:]):
            assert a.interval.hi <= b.interval.hi + 1e-9


class TestRangeQuery:
    def test_matches_brute_force(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        all_d = truth(small_dist, small_objects, 40)
        radius = all_d[len(all_d) // 2][0] + 1e-9  # include half the objects
        result = range_query(small_index, oi, 40, radius)
        expected_ids = sorted(oid for d, oid in all_d if d <= radius)
        assert sorted(result.ids()) == expected_ids

    def test_zero_radius(self, small_net, small_index, small_objects, small_dist):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        # query placed exactly on an object's vertex -> distance 0 hit
        target = small_objects[0].position.vertex
        result = range_query(small_index, oi, target, 0.0)
        assert 0 in result.ids()

    def test_huge_radius_returns_everything(
        self, small_net, small_index, small_objects
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = range_query(small_index, oi, 3, 1e9)
        assert len(result) == len(small_objects)

    def test_results_sorted(self, small_net, small_index, small_objects, small_dist):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = range_query(small_index, oi, 9, 30.0)
        los = [n.interval.lo for n in result.neighbors]
        assert los == sorted(los)

    def test_negative_radius_rejected(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            range_query(small_index, small_object_index, 0, -1.0)

    def test_interval_hits_within_radius(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        radius = 25.0
        result = range_query(small_index, oi, 22, radius)
        for n in result.neighbors:
            d = float(small_dist[22, small_objects[n.oid].position.vertex])
            assert d <= radius + 1e-9


class TestApproximateKNN:
    def test_epsilon_zero_is_exact(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        expected = [d for d, _ in truth(small_dist, small_objects, 15)[:5]]
        result = approximate_knn(small_index, oi, 15, 5, epsilon=0.0)
        got = sorted(
            float(small_dist[15, small_objects[n.oid].position.vertex])
            for n in result.neighbors
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    @pytest.mark.parametrize("epsilon", [0.05, 0.25, 1.0])
    def test_approximation_guarantee(
        self, epsilon, small_net, small_index, small_objects, small_dist, rng
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        k = 6
        for _ in range(8):
            q = int(rng.integers(0, small_net.num_vertices))
            exact = [d for d, _ in truth(small_dist, small_objects, q)[:k]]
            result = approximate_knn(small_index, oi, q, k, epsilon=epsilon)
            got = sorted(
                float(small_dist[q, small_objects[n.oid].position.vertex])
                for n in result.neighbors
            )
            for got_d, true_d in zip(got, exact):
                assert got_d <= (1.0 + epsilon) * true_d + 1e-9

    def test_larger_epsilon_never_more_refinements(
        self, small_net, small_index, small_objects
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        tight = approximate_knn(small_index, oi, 8, 5, epsilon=0.0)
        loose = approximate_knn(small_index, oi, 8, 5, epsilon=0.5)
        assert loose.stats.refinements <= tight.stats.refinements

    def test_validation(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            approximate_knn(small_index, small_object_index, 0, 5, epsilon=-0.1)
        with pytest.raises(ValueError):
            approximate_knn(small_index, small_object_index, 0, 0, epsilon=0.1)


class TestAggregateNN:
    @pytest.mark.parametrize("agg,fold", [("sum", sum), ("max", max)])
    def test_matches_brute_force(
        self, agg, fold, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        sources = [3, 61, 120]
        expected = sorted(
            (
                fold(float(small_dist[s, o.position.vertex]) for s in sources),
                o.oid,
            )
            for o in small_objects
        )[:4]
        result = aggregate_nn(small_index, oi, sources, 4, agg=agg)
        np.testing.assert_allclose(
            sorted(n.distance for n in result.neighbors),
            [d for d, _ in expected],
            rtol=1e-9,
        )

    def test_single_source_equals_knn(
        self, small_net, small_index, small_objects, small_dist
    ):
        from repro.query import knn

        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        agg = aggregate_nn(small_index, oi, [9], 5, agg="sum")
        base = knn(small_index, oi, 9, 5, exact=True)
        np.testing.assert_allclose(
            sorted(n.distance for n in agg.neighbors),
            sorted(n.distance for n in base.neighbors),
            rtol=1e-9,
        )

    def test_validation(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            aggregate_nn(small_index, small_object_index, [], 3)
        with pytest.raises(ValueError):
            aggregate_nn(small_index, small_object_index, [0], 0)
        with pytest.raises(ValueError):
            aggregate_nn(small_index, small_object_index, [0], 3, agg="median")


class TestDistanceJoin:
    def test_matches_brute_force(self, small_net, small_index, small_dist):
        left = random_vertex_objects(small_net, count=6, seed=51)
        right = random_vertex_objects(small_net, count=9, seed=52)
        li = ObjectIndex(small_net, left, small_index.embedding)
        ri = ObjectIndex(small_net, right, small_index.embedding)
        expected = sorted(
            (
                float(small_dist[a.position.vertex, b.position.vertex]),
                a.oid,
                b.oid,
            )
            for a in left
            for b in right
        )[:7]
        got = distance_join(small_index, li, ri, 7)
        np.testing.assert_allclose(
            [d for _, _, d in got], [d for d, _, _ in expected], rtol=1e-9
        )

    def test_results_sorted(self, small_net, small_index):
        left = random_vertex_objects(small_net, count=5, seed=53)
        right = random_vertex_objects(small_net, count=5, seed=54)
        li = ObjectIndex(small_net, left, small_index.embedding)
        ri = ObjectIndex(small_net, right, small_index.embedding)
        got = distance_join(small_index, li, ri, 10)
        dists = [d for _, _, d in got]
        assert dists == sorted(dists)

    def test_k_larger_than_pairs(self, small_net, small_index):
        left = random_vertex_objects(small_net, count=2, seed=55)
        right = random_vertex_objects(small_net, count=2, seed=56)
        li = ObjectIndex(small_net, left, small_index.embedding)
        ri = ObjectIndex(small_net, right, small_index.embedding)
        got = distance_join(small_index, li, ri, 100)
        assert len(got) == 4

    def test_k_validation(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            distance_join(small_index, small_object_index, small_object_index, 0)
